//! Interactive SQL shell over the simulated co-processor machine.
//!
//! ```text
//! cargo run --release --bin robustq-cli
//! ```
//!
//! Meta-commands start with `\`; anything else is parsed as SQL and
//! executed on the current database under the selected placement
//! strategy. The co-processor cache persists across queries, so repeated
//! queries demonstrate the cold→hot transition interactively. Reads from
//! stdin, so scripts pipe in:
//!
//! ```text
//! echo '\gen ssb 1
//! select count(*) as n from lineorder' | cargo run --release --bin robustq-cli
//! ```

use robustq::core::Strategy;
use robustq::engine::{ExecOptions, Executor, PlacementPolicy};
use robustq::sim::{CacheSet, SimConfig};
use robustq::sql::plan_sql;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::gen::tpch::TpchGenerator;
use robustq::storage::Database;
use std::io::{BufRead, Write};

struct Session {
    db: Option<Database>,
    sim: SimConfig,
    strategy: Strategy,
    policy: Box<dyn PlacementPolicy>,
    cache: CacheSet,
    queries_run: usize,
}

impl Session {
    fn new() -> Self {
        let sim = SimConfig::default();
        let cache = CacheSet::for_topology(&sim.topology, sim.cache_policy);
        Session {
            db: None,
            sim,
            strategy: Strategy::DataDrivenChopping,
            policy: Strategy::DataDrivenChopping.build(),
            cache,
            queries_run: 0,
        }
    }

    fn reset_machine(&mut self) {
        self.policy = self.strategy.build();
        self.cache = CacheSet::for_topology(&self.sim.topology, self.sim.cache_policy);
    }

    fn command(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        match cmd {
            "\\help" | "\\h" | "\\?" => Ok(HELP.to_string()),
            "\\gen" => {
                let kind = parts.next().ok_or("usage: \\gen ssb|tpch <sf> [rows_per_sf]")?;
                let sf: u32 = parts
                    .next()
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "scale factor must be an integer".to_string())?;
                let rows: usize = parts
                    .next()
                    .map(|r| r.parse().map_err(|_| "rows_per_sf must be an integer"))
                    .transpose()?
                    .unwrap_or(10_000);
                let db = match kind {
                    "ssb" => SsbGenerator::new(sf).with_rows_per_sf(rows).generate(),
                    "tpch" => TpchGenerator::new(sf).with_rows_per_sf(rows).generate(),
                    other => return Err(format!("unknown benchmark {other}")),
                };
                let summary = format!(
                    "generated {kind} SF{sf}: {} tables, {} KiB",
                    db.tables().len(),
                    db.byte_size() / 1024
                );
                self.db = Some(db);
                self.reset_machine();
                Ok(summary)
            }
            "\\strategy" => {
                let name = parts.next().ok_or(STRATEGY_USAGE)?;
                self.strategy = match name {
                    "cpu" => Strategy::CpuOnly,
                    "gpu" => Strategy::GpuPreferred,
                    "critical-path" | "critical" => Strategy::CriticalPath,
                    "data-driven" | "dd" => Strategy::DataDriven,
                    "runtime" | "rt" => Strategy::RuntimePlacement,
                    "chopping" | "chop" => Strategy::Chopping,
                    "ddc" | "data-driven-chopping" => Strategy::DataDrivenChopping,
                    other => return Err(format!("unknown strategy {other}\n{STRATEGY_USAGE}")),
                };
                self.reset_machine();
                Ok(format!("strategy set to {}", self.strategy.name()))
            }
            "\\gpu" => {
                let mem_kib: u64 = parts
                    .next()
                    .ok_or("usage: \\gpu <memory KiB> <cache KiB>")?
                    .parse()
                    .map_err(|_| "memory must be an integer (KiB)".to_string())?;
                let cache_kib: u64 = parts
                    .next()
                    .ok_or("usage: \\gpu <memory KiB> <cache KiB>")?
                    .parse()
                    .map_err(|_| "cache must be an integer (KiB)".to_string())?;
                if cache_kib > mem_kib {
                    return Err("cache cannot exceed device memory".into());
                }
                self.sim = self
                    .sim
                    .clone()
                    .with_gpu_memory(mem_kib * 1024)
                    .with_gpu_cache(cache_kib * 1024);
                self.reset_machine();
                Ok(format!("co-processor: {mem_kib} KiB memory, {cache_kib} KiB cache"))
            }
            "\\compress" => {
                let db = self.db.as_mut().ok_or("no database; run \\gen first")?;
                match parts.next() {
                    Some("on") => {
                        let ratio = db.apply_compression();
                        Ok(format!("transparent compression on (ratio {ratio:.2}x)"))
                    }
                    Some("off") => {
                        db.clear_compression();
                        Ok("transparent compression off".to_string())
                    }
                    _ => Err("usage: \\compress on|off".into()),
                }
            }
            "\\tables" => {
                let db = self.db.as_ref().ok_or("no database; run \\gen first")?;
                let mut out = String::new();
                for t in db.tables() {
                    out.push_str(&format!(
                        "{}: {} rows, {} columns, {} KiB\n",
                        t.name(),
                        t.num_rows(),
                        t.num_columns(),
                        t.byte_size() / 1024
                    ));
                }
                Ok(out.trim_end().to_string())
            }
            "\\schema" => {
                let db = self.db.as_ref().ok_or("no database; run \\gen first")?;
                let name = parts.next().ok_or("usage: \\schema <table>")?;
                let t = db.table(name).ok_or_else(|| format!("no table {name}"))?;
                let mut out = String::new();
                for f in t.schema().fields() {
                    out.push_str(&format!("{} {}\n", f.name, f.data_type));
                }
                Ok(out.trim_end().to_string())
            }
            other => Err(format!("unknown command {other}; try \\help")),
        }
    }

    fn query(&mut self, sql: &str) -> Result<String, String> {
        let db = self.db.as_ref().ok_or("no database; run \\gen first")?;
        let plan = plan_sql(sql, db).map_err(|e| e.to_string())?;
        let executor = Executor::new(db, self.sim.clone());
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = executor.run_with_cache(
            vec![vec![plan]],
            self.policy.as_mut(),
            &opts,
            &mut self.cache,
        )?;
        self.queries_run += 1;
        let outcome = &out.outcomes[0];
        let result = outcome.result.as_ref().expect("captured");

        let mut text = String::new();
        let names: Vec<&str> = result.fields().iter().map(|f| f.name.as_str()).collect();
        text.push_str(&names.join(" | "));
        text.push('\n');
        let shown = result.num_rows().min(20);
        for i in 0..shown {
            let row: Vec<String> = result.row(i).iter().map(|v| v.to_string()).collect();
            text.push_str(&row.join(" | "));
            text.push('\n');
        }
        if result.num_rows() > shown {
            text.push_str(&format!("... ({} rows total)\n", result.num_rows()));
        }
        text.push_str(&format!(
            "-- {} under {}: {} virtual (CPU ops {}, GPU ops {}, \
             CPU→GPU {}, aborts {})",
            if result.num_rows() == 1 { "1 row" } else { "rows" },
            self.policy.name(),
            outcome.latency,
            out.metrics.ops_completed[robustq_sim::DeviceId::Cpu],
            out.metrics.ops_completed[robustq_sim::DeviceId::Gpu],
            out.metrics.h2d_time,
            out.metrics.aborts,
        ));
        Ok(text)
    }

    fn handle(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            return Ok(String::new());
        }
        if line.starts_with('\\') {
            self.command(line)
        } else {
            self.query(line)
        }
    }
}

const HELP: &str = "\
\\gen ssb|tpch <sf> [rows_per_sf]   generate a benchmark database
\\strategy <name>                   cpu | gpu | critical | dd | rt | chop | ddc
\\gpu <memory KiB> <cache KiB>      resize the simulated co-processor
\\compress on|off                   transparent column compression (Sec 6.3)
\\tables                            list tables
\\schema <table>                    show a table's columns
\\quit                              exit
anything else                      executed as SQL";

const STRATEGY_USAGE: &str =
    "usage: \\strategy cpu|gpu|critical|dd|rt|chop|ddc";

fn main() {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::args().all(|a| a != "--no-banner");
    if interactive {
        println!("robustq shell — \\help for commands, \\quit to exit");
    }
    let mut session = Session::new();
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("robustq> ");
            let _ = stdout.flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        if line.trim() == "\\quit" || line.trim() == "\\q" {
            break;
        }
        match session.handle(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
