//! Umbrella crate re-exporting the full `robustq` workspace.
//!
//! Most users should depend on this crate and use the re-exported modules:
//!
//! ```
//! use robustq::storage::gen::ssb::SsbGenerator;
//! let db = SsbGenerator::new(1).with_rows_per_sf(100).generate();
//! assert!(db.table("lineorder").is_some());
//! ```
pub use robustq_core as core;
pub use robustq_engine as engine;
pub use robustq_sim as sim;
pub use robustq_sql as sql;
pub use robustq_storage as storage;
pub use robustq_trace as trace;
pub use robustq_serve as serve;
pub use robustq_workloads as workloads;
