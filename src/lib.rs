//! Umbrella crate re-exporting the full `robustq` workspace.
//!
//! Most users should depend on this crate and use the re-exported modules:
//!
//! ```
//! use robustq::storage::gen::ssb::SsbGenerator;
//! let db = SsbGenerator::new(1).with_rows_per_sf(100).generate();
//! assert!(db.table("lineorder").is_some());
//! ```
pub mod prelude {
    //! The one-stop import for driving the engine.
    //!
    //! Re-exports the types almost every harness, example and bench
    //! binary touches: the executor surface (`Executor`, `ExecOptions`,
    //! `Placement`, the `CostModel` trait and its `CostModelKind`
    //! selector), the runners (`WorkloadRunner`/`RunnerConfig`,
    //! `ServingRunner`/`ServeConfig`), the placement strategies, and the
    //! simulated-machine configuration (`SimConfig`, `Topology`).
    //!
    //! ```
    //! use robustq::prelude::*;
    //! let cfg = RunnerConfig::default()
    //!     .with_users(2)
    //!     .with_cost_model(CostModelKind::Adaptive { seed: 42 });
    //! assert!(!cfg.chunked_staging);
    //! ```
    pub use robustq_core::{
        Chopping, CriticalPath, DataDrivenChopping, DataPlacementManager, Strategy,
    };
    pub use robustq_engine::plan::PlanNode;
    pub use robustq_engine::{
        CostModel, CostModelKind, EngineError, ExecOptions, Executor, FeedEvent,
        FeedSchedule, ModelUpdate, Placement, PlacementPolicy, RunMetrics, RunOutcome,
        StagingStats, StandingQuery, WindowKind,
    };
    pub use robustq_serve::{
        ArrivalProcess, QueryMix, ServeConfig, ServingReport, ServingRunner,
        StreamingReport,
    };
    pub use robustq_sim::{
        DeviceId, FaultPlan, RetryPolicy, SimConfig, Topology, VirtualTime,
    };
    pub use robustq_storage::Database;
    pub use robustq_workloads::{RunReport, RunnerConfig, WorkloadRunner};
}

pub use robustq_core as core;
pub use robustq_engine as engine;
pub use robustq_sim as sim;
pub use robustq_sql as sql;
pub use robustq_storage as storage;
pub use robustq_trace as trace;
pub use robustq_serve as serve;
pub use robustq_workloads as workloads;
