//! Streaming acceptance pins (DESIGN.md §16).
//!
//! The tentpole invariant: a standing query's per-window results are
//! *value-identical* (sorted row sets) to a one-shot execution against a
//! static database holding exactly the window's rows — under every
//! placement strategy, fleet size K ∈ {1, 2, 4}, real-CPU worker counts
//! 1 vs 8, and seeded fault plans. Placement, sharding, retries and
//! faults shift virtual time; they must never change what a window
//! returns.
//!
//! Alongside the identity matrix:
//!
//! * appends invalidate only the fed table's staged columns — dimension
//!   residency (and its bytes) survives every batch;
//! * ad-hoc open-loop arrivals interleave with window ticks through one
//!   admission path, with conserved offered/completed/shed accounting
//!   and `Append`/`WindowFire` visible in the trace registry.

use std::collections::BTreeMap;

use robustq::core::Strategy;
use robustq::engine::ops::execute_plan;
use robustq::engine::{ExecOptions, Executor, ParallelCtx, StandingQuery, WindowKind};
use robustq::serve::{ArrivalProcess, QueryMix, ServeConfig, ServingRunner};
use robustq::sim::{CacheSet, FaultPlan, FaultSpec, SimConfig, VirtualTime};
use robustq::storage::Value;
use robustq::workloads::ssb_stream::{SsbStreamData, SsbStreamGen};
use robustq::workloads::SsbQuery;

const PERIOD: VirtualTime = VirtualTime::from_millis(2);
const TICKS: u32 = 4;
const BATCHES: usize = 4;

fn stream() -> SsbStreamData {
    SsbStreamGen::new(1)
        .with_rows_per_sf(800)
        .with_batches(BATCHES)
        .with_seal_rows(250)
        .build()
        .expect("stream build")
}

fn sim_k(k: usize) -> SimConfig {
    SimConfig::default()
        .with_gpu_memory(2 * 1024 * 1024)
        .with_gpu_cache(1024 * 1024)
        .with_coprocessors(k)
}

/// The two standing queries of the matrix: a flight-1 aggregate
/// (tumbling) and a multi-join group-by (sliding, two periods long).
fn standing(data: &SsbStreamData) -> Vec<StandingQuery> {
    let mut tumbling = data
        .standing_query(SsbQuery::Q1_1, WindowKind::Tumbling, PERIOD, TICKS)
        .expect("Q1.1 plan");
    tumbling.session = 1_000;
    let mut sliding = data
        .standing_query(
            SsbQuery::Q3_3,
            WindowKind::Sliding { length: VirtualTime::from_nanos(2 * PERIOD.as_nanos()) },
            PERIOD,
            TICKS,
        )
        .expect("Q3.3 plan");
    sliding.session = 1_001;
    vec![tumbling, sliding]
}

/// Expected `[lo, hi)` lineorder rows of standing query `s`'s tick `k`
/// under the batch-per-period feed: batch `j` commits exactly when tick
/// `j` closes, so tick `k` sees batches `0..=k`.
fn expected_window(data: &SsbStreamData, s: usize, k: usize) -> (usize, usize) {
    let hi = data.visible_after(k + 1);
    let lo = match s {
        0 => data.visible_after(k),           // tumbling: one period back
        _ => data.visible_after(k.saturating_sub(1)), // sliding 2·period
    };
    (lo.min(hi), hi)
}

/// One-shot oracle: the standing query executed against a static
/// database holding exactly the window's rows, as sorted row values.
fn oracle(data: &SsbStreamData, s: usize, k: usize) -> Vec<Vec<Value>> {
    let q = [SsbQuery::Q1_1, SsbQuery::Q3_3][s];
    let (lo, hi) = expected_window(data, s, k);
    let snap = data.window_db(lo, hi);
    let plan = q.plan(&snap).expect("window plan");
    execute_plan(&plan, &snap).expect("window oracle").sorted_rows()
}

/// All `(standing, tick) -> sorted rows` of one streaming run.
fn run_windows(
    data: &SsbStreamData,
    strategy: Strategy,
    k: usize,
    workers: usize,
    fault: FaultPlan,
) -> BTreeMap<(usize, usize), Vec<Vec<Value>>> {
    let executor = Executor::new(&data.db, sim_k(k));
    let mut policy = strategy.build();
    let opts = ExecOptions {
        capture_results: true,
        parallel: ParallelCtx::serial().with_workers(workers),
        fault,
        shard_ways: if k >= 2 { k } else { 0 },
        ..ExecOptions::default()
    };
    let out = executor
        .run_streaming(
            Vec::new(),
            data.feed_schedule(PERIOD, PERIOD),
            standing(data),
            policy.as_mut(),
            &opts,
        )
        .expect("streaming run");
    let expected: usize = 2 * TICKS as usize;
    assert_eq!(out.outcomes.len(), expected, "{}: tick went missing", strategy.name());
    out.outcomes
        .into_iter()
        .map(|o| {
            let rows =
                o.result.as_ref().expect("captured window result").sorted_rows();
            ((o.session - 1_000, o.seq), rows)
        })
        .collect()
}

/// The tentpole matrix: every strategy × K ∈ {1, 2, 4} reproduces the
/// static-snapshot oracle for every window of both standing queries.
#[test]
fn window_results_match_static_snapshots_under_all_strategies_and_k() {
    let data = stream();
    let oracles: BTreeMap<(usize, usize), Vec<Vec<Value>>> = (0..2usize)
        .flat_map(|s| (0..TICKS as usize).map(move |k| ((s, k), ())))
        .map(|((s, k), ())| ((s, k), oracle(&data, s, k)))
        .collect();
    // Windows must not be degenerate: every tick scans a non-empty,
    // strictly growing prefix range.
    for k in 0..TICKS as usize {
        let (lo, hi) = expected_window(&data, 0, k);
        assert!(hi > lo, "tick {k}: empty tumbling window");
    }
    for strategy in Strategy::ALL {
        for k in [1usize, 2, 4] {
            let got = run_windows(&data, strategy, k, 1, FaultPlan::disabled());
            for ((s, tick), rows) in &got {
                assert_eq!(
                    rows,
                    &oracles[&(*s, *tick)],
                    "{} K={k}: standing {s} tick {tick} drifted from its \
                     static-snapshot oracle",
                    strategy.name()
                );
            }
        }
    }
}

/// Virtual time and window results are independent of real-CPU worker
/// counts.
#[test]
fn streaming_runs_are_deterministic_across_worker_counts() {
    let data = stream();
    let one = run_windows(&data, Strategy::DataDrivenChopping, 2, 1, FaultPlan::disabled());
    let eight =
        run_windows(&data, Strategy::DataDrivenChopping, 2, 8, FaultPlan::disabled());
    assert_eq!(one, eight, "worker count changed a window result");
}

/// Seeded fault plans (allocation failures, transfer faults, kernel
/// aborts, mixed) perturb placement and retries, never window contents.
#[test]
fn window_results_survive_seeded_faults() {
    let data = stream();
    let baseline = run_windows(&data, Strategy::DataDrivenChopping, 2, 1, FaultPlan::disabled());
    for seed in [1u64, 2, 3] {
        let mut spec = FaultSpec::default();
        match seed % 3 {
            0 => spec.alloc_fail_prob = 0.2,
            1 => {
                spec.transfer_transient_prob = 0.1;
                spec.kernel_abort_prob = 0.1;
            }
            _ => {
                spec.alloc_fail_prob = 0.05;
                spec.transfer_transient_prob = 0.05;
                spec.kernel_abort_prob = 0.05;
            }
        }
        let faulty =
            run_windows(&data, Strategy::DataDrivenChopping, 2, 1, FaultPlan::new(seed, spec));
        assert_eq!(baseline, faulty, "seed {seed}: faults changed a window result");
    }
}

/// Appends drop only the fed table's staged columns: after the run every
/// resident lineorder key carries the final epoch (stale copies are
/// gone), and dimension residency — hence surviving resident bytes —
/// outlives every batch.
#[test]
fn appends_invalidate_only_feed_columns() {
    let data = stream();
    let lineorder = data.db.table_position("lineorder").expect("lineorder registered");
    let final_epoch = data.epochs.last().expect("at least one batch").0;
    let executor = Executor::new(&data.db, sim_k(1));
    let mut policy = Strategy::DataDrivenChopping.build();
    let mut caches = CacheSet::for_topology(&sim_k(1).topology, sim_k(1).cache_policy);
    let opts = ExecOptions { capture_results: false, ..ExecOptions::default() };
    executor
        .run_streaming_with_cache(
            Vec::new(),
            data.feed_schedule(PERIOD, PERIOD),
            standing(&data),
            policy.as_mut(),
            &opts,
            &mut caches,
        )
        .expect("streaming run");
    let gpu = robustq::sim::DeviceId::Gpu;
    let cache = caches.device(gpu);
    assert!(cache.used() > 0, "nothing resident after the run");
    let mut dim_resident = 0u64;
    for key in cache.resident_keys() {
        let id = robustq::storage::ColumnId(key.column_id());
        if data.db.table_of(id) == lineorder {
            assert_eq!(
                key.epoch(),
                final_epoch,
                "stale lineorder copy (column {}, epoch {}) survived invalidation",
                key.column_id(),
                key.epoch()
            );
        } else {
            assert_eq!(key.epoch(), 0, "never-appended column got a non-zero epoch");
            dim_resident += 1;
        }
    }
    assert!(
        dim_resident > 0,
        "append invalidation wiped dimension residency — it must only touch \
         the fed table's columns"
    );
}

/// Ad-hoc arrivals and window ticks share one admission path: offered
/// accounting conserves, every tick completes, and the trace registry
/// sees the feed (`appends`, `window_fires`, epoch-keyed evictions).
#[test]
fn streaming_interleaves_arrivals_and_window_ticks() {
    let data = stream();
    let queries: Vec<_> = [SsbQuery::Q1_2, SsbQuery::Q2_3]
        .iter()
        .map(|q| q.plan(&data.db).expect("plan"))
        .collect();
    let runner = ServingRunner::new(&data.db, sim_k(2));
    let horizon = VirtualTime::from_nanos(PERIOD.as_nanos() * (TICKS as u64 + 1));
    let cfg = ServeConfig::new(ArrivalProcess::Poisson { rate_qps: 2_000.0 }, horizon)
        .with_sessions(8)
        .with_seed(11)
        .with_trace();
    let report = runner
        .run_streaming(
            &QueryMix::uniform(queries),
            data.feed_schedule(PERIOD, PERIOD),
            standing(&data),
            Strategy::DataDrivenChopping,
            &cfg,
        )
        .expect("streaming serve");
    assert!(report.offered_arrivals > 0, "horizon produced no arrivals");
    assert_eq!(report.offered_ticks, 2 * TICKS as usize);
    assert_eq!(
        report.offered_arrivals + report.offered_ticks,
        report.completed() + report.shed as usize,
        "offered/completed/shed accounting drifted"
    );
    assert_eq!(report.window_outcomes.len(), 2 * TICKS as usize, "a tick was shed");
    assert!(report.tick_p99() > VirtualTime::ZERO);
    let registry = report.metrics_registry().expect("traced run");
    assert_eq!(registry.counter("appends"), BATCHES as u64);
    assert_eq!(registry.counter("window_fires"), 2 * TICKS as u64);
    assert!(
        registry.counter("cache_evictions") > 0,
        "appends never invalidated a staged column"
    );
}

/// A streaming run with an empty feed and no standing queries is the
/// plain open-loop path — entry points must agree bit-for-bit.
#[test]
fn empty_feed_degenerates_to_open_loop() {
    let data = stream();
    let queries: Vec<_> =
        [SsbQuery::Q1_1].iter().map(|q| q.plan(&data.db).expect("plan")).collect();
    let mix = QueryMix::uniform(queries);
    let cfg = ServeConfig::new(
        ArrivalProcess::Uniform { rate_qps: 1_000.0 },
        VirtualTime::from_millis(4),
    )
    .with_sessions(4);
    let runner = ServingRunner::new(&data.db, sim_k(1));
    let open = runner.run(&mix, Strategy::GpuPreferred, &cfg).expect("open loop");
    let streaming = runner
        .run_streaming(
            &mix,
            robustq::engine::FeedSchedule::default(),
            Vec::new(),
            Strategy::GpuPreferred,
            &cfg,
        )
        .expect("degenerate streaming");
    assert_eq!(open.metrics, streaming.metrics, "degenerate metrics drifted");
    assert_eq!(
        format!("{:?}", open.outcomes),
        format!("{:?}", streaming.arrival_outcomes),
        "degenerate outcomes drifted"
    );
    assert!(streaming.window_outcomes.is_empty());
}
