//! End-to-end tests of the `robustq-cli` shell, driven through stdin.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_robustq-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cli starts");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("cli exits");
    assert!(out.status.success(), "cli failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn generate_and_query() {
    let out = run_script(
        "\\gen ssb 1 1000\n\
         select count(*) as n from lineorder\n\
         \\quit\n",
    );
    assert!(out.contains("generated ssb SF1"));
    assert!(out.contains("\n1000\n"), "count(*) result missing: {out}");
    assert!(out.contains("Data-Driven Chopping"), "default strategy shown");
}

#[test]
fn strategy_switch_and_machine_resize() {
    let out = run_script(
        "\\gen ssb 1 500\n\
         \\strategy cpu\n\
         select count(*) as n from customer\n\
         \\gpu 64 32\n\
         \\strategy gpu\n\
         select count(*) as n from customer\n\
         \\quit\n",
    );
    assert!(out.contains("strategy set to CPU Only"));
    assert!(out.contains("co-processor: 64 KiB memory, 32 KiB cache"));
    assert!(out.contains("strategy set to GPU Only"));
}

#[test]
fn errors_are_reported_not_fatal() {
    let out = run_script(
        "select 1 from nowhere\n\
         \\gen ssb 1 500\n\
         select zz from lineorder\n\
         \\nonsense\n\
         select count(*) as n from part\n\
         \\quit\n",
    );
    assert!(out.contains("error: no database"));
    assert!(out.contains("error: planning error"));
    assert!(out.contains("error: unknown command"));
    // The session survived all of it.
    assert!(out.contains("GPU ops") || out.contains("CPU ops"));
}

#[test]
fn compression_command() {
    let out = run_script(
        "\\gen ssb 1 1000\n\
         \\compress on\n\
         \\compress off\n\
         \\quit\n",
    );
    assert!(out.contains("transparent compression on (ratio"));
    assert!(out.contains("transparent compression off"));
}

#[test]
fn schema_listing() {
    let out = run_script(
        "\\gen tpch 1 500\n\
         \\schema nation\n\
         \\quit\n",
    );
    assert!(out.contains("n_nationkey INT32"));
    assert!(out.contains("n_name STR"));
}
