//! Property-based tests for epoch-versioned storage (DESIGN.md §16):
//! incrementally maintained segment statistics match a from-scratch
//! recomputation after any append/seal history, and snapshots are
//! isolated — data visible at an epoch never changes as later batches
//! commit.

use proptest::prelude::*;
use robustq::storage::{
    ColumnData, Database, DataType, DbEpoch, Field, Schema, Table,
};

/// A database with one two-column table built from the first batch, plus
/// the seal threshold under test.
fn seeded_db(first: &[(i32, i64)], seal_rows: usize) -> Database {
    let mut db = Database::new();
    db.set_seal_rows(seal_rows);
    let (a, b): (Vec<i32>, Vec<i64>) = first.iter().copied().unzip();
    db.add_table(
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Int64),
            ]),
            vec![ColumnData::Int32(a), ColumnData::Int64(b)],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn batch(rows: &[(i32, i64)]) -> Vec<ColumnData> {
    let (a, b): (Vec<i32>, Vec<i64>) = rows.iter().copied().unzip();
    vec![ColumnData::Int32(a), ColumnData::Int64(b)]
}

proptest! {
    /// After any append history (arbitrary batch sizes and seal
    /// thresholds), every segment's incrementally maintained per-column
    /// stats equal a from-scratch recomputation over its rows.
    #[test]
    fn segment_stats_match_recomputation(
        first in prop::collection::vec((-1000i32..1000, -1000i64..1000), 1..40),
        batches in prop::collection::vec(
            prop::collection::vec((-1000i32..1000, -1000i64..1000), 0..30),
            0..6,
        ),
        seal_rows in 1usize..50,
    ) {
        let mut db = seeded_db(&first, seal_rows);
        for rows in &batches {
            db.append_batch("t", batch(rows)).unwrap();
        }
        let table = db.table("t").unwrap();
        let mut covered = 0usize;
        for (i, seg) in table.segments().iter().enumerate() {
            let recomputed = table.recompute_segment_stats(i);
            for (c, want) in recomputed.iter().enumerate() {
                prop_assert_eq!(
                    seg.stats(c),
                    want.clone(),
                    "segment {} column {} stats drifted from recomputation",
                    i, c
                );
            }
            prop_assert_eq!(seg.rows().start, covered, "segment {} not contiguous", i);
            covered = seg.rows().end;
        }
        prop_assert_eq!(covered, table.num_rows(), "segments must tile the table");
    }

    /// Snapshot isolation: the rows visible at any epoch are immutable.
    /// A reader that captured (visible rows, column prefix) at epoch `e`
    /// sees the identical bytes after every later append, and
    /// `snapshot_at(e)` keeps reporting the same visible count.
    #[test]
    fn snapshots_are_isolated_from_later_appends(
        first in prop::collection::vec((-100i32..100, -100i64..100), 1..30),
        before in prop::collection::vec(
            prop::collection::vec((-100i32..100, -100i64..100), 1..20),
            0..4,
        ),
        after in prop::collection::vec(
            prop::collection::vec((-100i32..100, -100i64..100), 1..20),
            1..4,
        ),
        seal_rows in 1usize..40,
    ) {
        let mut db = seeded_db(&first, seal_rows);
        for rows in &before {
            db.append_batch("t", batch(rows)).unwrap();
        }
        let epoch = db.epoch();
        let snap = db.snapshot();
        let t = db.table_position("t").unwrap();
        let visible = snap.visible_rows(t);
        let frozen: Vec<ColumnData> = (0..db.tables()[t].num_columns())
            .map(|c| db.tables()[t].column_slice(c, 0, visible))
            .collect();

        for rows in &after {
            db.append_batch("t", batch(rows)).unwrap();
        }

        // The snapshot's view is bit-identical after every later commit.
        prop_assert_eq!(db.snapshot_at(epoch).visible_rows(t), visible);
        prop_assert_eq!(db.snapshot_at(epoch).epoch(), epoch);
        for (c, want) in frozen.iter().enumerate() {
            let got = db.tables()[t].column_slice(c, 0, visible);
            prop_assert_eq!(
                &got, want,
                "column {} prefix changed under later appends", c
            );
        }
        // And the database itself did advance.
        let appended: usize = after.iter().map(Vec::len).sum();
        prop_assert_eq!(db.tables()[t].num_rows(), visible + appended);
        prop_assert!(db.epoch() > epoch);
    }

    /// The append log is a faithful journal: epochs are dense and
    /// increasing, base rows chain batch to batch, and replaying the log
    /// reproduces every intermediate snapshot's visible count.
    #[test]
    fn append_log_replays_every_snapshot(
        first in prop::collection::vec((-10i32..10, -10i64..10), 1..20),
        batches in prop::collection::vec(
            prop::collection::vec((-10i32..10, -10i64..10), 1..15),
            1..6,
        ),
    ) {
        let mut db = seeded_db(&first, 25);
        for rows in &batches {
            db.append_batch("t", batch(rows)).unwrap();
        }
        let t = db.table_position("t").unwrap();
        let mut visible = first.len();
        for (i, rec) in db.append_log().iter().enumerate() {
            prop_assert_eq!(rec.epoch, i as u64 + 1, "epochs must be dense");
            prop_assert_eq!(rec.table, t);
            prop_assert_eq!(rec.base_rows, visible, "base rows must chain");
            visible += rec.rows;
            prop_assert_eq!(
                db.snapshot_at(DbEpoch(rec.epoch)).visible_rows(t),
                visible
            );
        }
        prop_assert_eq!(visible, db.tables()[t].num_rows());
    }
}
