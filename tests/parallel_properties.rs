//! Property tests: the morsel-parallel kernels are **bit-identical** to
//! the serial reference kernels.
//!
//! Every test compares `robustq::engine::parallel::{select, hash_join,
//! aggregate}` against the corresponding `ops` kernel via `Chunk`
//! equality (fields, column data, dictionary codes — everything), across
//! all column `DataType`s, morsel sizes {1, 7, 1024} and worker counts
//! {1, 2, 8}, including empty and single-row chunks. Any divergence —
//! group numbering, float association order, dictionary rebuilds — fails
//! these tests.

use proptest::prelude::*;
use robustq::engine::ops;
use robustq::engine::parallel::{self, ParallelCtx};
use robustq::engine::plan::{AggFunc, AggSpec, JoinKind};
use robustq::engine::predicate::{CmpOp, Predicate};
use robustq::engine::Chunk;
use robustq::engine::expr::Expr;
use robustq::storage::{ColumnData, DataType, DictColumn, Field};

const WORKER_GRID: [usize; 3] = [1, 2, 8];
const MORSEL_GRID: [usize; 3] = [1, 7, 1024];

const STR_POOL: [&str; 7] =
    ["ASIA", "EUROPE", "AMERICA", "AFRICA", "MIDDLE EAST", "x", ""];

/// One generated row: (i32, i64, float-source, string-pool index).
type Row = (i32, i64, i32, usize);

/// Build a chunk with one column of every `DataType` from generated rows.
/// Each call interns its own dictionary, so two chunks never share one.
fn chunk_of(rows: &[Row]) -> Chunk {
    Chunk::new(
        vec![
            Field::new("i32", DataType::Int32),
            Field::new("i64", DataType::Int64),
            Field::new("f64", DataType::Float64),
            Field::new("str", DataType::Str),
        ],
        vec![
            ColumnData::Int32(rows.iter().map(|r| r.0).collect()),
            ColumnData::Int64(rows.iter().map(|r| r.1).collect()),
            ColumnData::Float64(rows.iter().map(|r| r.2 as f64 / 3.0).collect()),
            ColumnData::Str(DictColumn::from_strings(
                rows.iter().map(|r| STR_POOL[r.3 % STR_POOL.len()].to_string()),
            )),
        ],
    )
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((-40i32..40, -9i64..9, -60i32..60, 0usize..7), 0..max)
}

fn predicate_for(which: usize) -> Predicate {
    match which % 6 {
        0 => Predicate::cmp("i32", CmpOp::Lt, 5),
        1 => Predicate::between("f64", -5.0, 8.0),
        2 => Predicate::in_list("str", ["ASIA", "x"]),
        3 => Predicate::StrPrefix { column: "str".into(), prefix: "A".into() },
        4 => Predicate::and([
            Predicate::cmp("i64", CmpOp::Ge, -3),
            Predicate::Not(Box::new(Predicate::eq("str", "EUROPE"))),
        ]),
        _ => Predicate::or([
            Predicate::eq("i32", 0),
            Predicate::cmp("f64", CmpOp::Gt, 10.0),
        ]),
    }
}

fn key_column(which: usize) -> &'static str {
    ["i32", "i64", "f64", "str"][which % 4]
}

fn join_kind(which: usize) -> JoinKind {
    [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti][which % 3]
}

/// Assert a parallel kernel equals its serial reference over the whole
/// worker × morsel grid.
fn assert_grid(serial: &Chunk, run: impl Fn(ParallelCtx) -> Chunk) {
    for workers in WORKER_GRID {
        for morsel in MORSEL_GRID {
            let ctx = ParallelCtx::serial()
                .with_workers(workers)
                .with_morsel_rows(morsel)
                .with_min_rows_per_worker(0); // fan out even tiny chunks
            assert_eq!(
                &run(ctx),
                serial,
                "parallel result diverged at workers={workers} morsel={morsel}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_select_is_bit_identical(
        rows in rows_strategy(200),
        which in 0usize..6,
    ) {
        let chunk = chunk_of(&rows);
        let pred = predicate_for(which);
        let serial = ops::select::select(&chunk, &pred).unwrap();
        assert_grid(&serial, |ctx| parallel::select(&chunk, &pred, ctx).unwrap());
    }

    #[test]
    fn parallel_join_is_bit_identical(
        build_rows in rows_strategy(60),
        probe_rows in rows_strategy(200),
        key in 0usize..4,
        kind in 0usize..3,
    ) {
        let build = chunk_of(&build_rows);
        let probe = chunk_of(&probe_rows);
        let (k, kind) = (key_column(key), join_kind(kind));
        let serial = ops::join::hash_join(&build, &probe, k, k, kind).unwrap();
        assert_grid(&serial, |ctx| {
            parallel::hash_join(&build, &probe, k, k, kind, ctx).unwrap()
        });
    }

    #[test]
    fn parallel_aggregate_is_bit_identical(
        rows in rows_strategy(200),
        num_keys in 0usize..4,
    ) {
        let chunk = chunk_of(&rows);
        // 0 keys = global aggregate (serial delegate), 1/2 = specialized
        // paths, 3 = the generic composite-key path.
        let group_by: Vec<String> = ["str", "i32", "i64"][..num_keys]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let aggs = vec![
            AggSpec::sum(Expr::col("f64"), "sum"),
            AggSpec::count("cnt"),
            AggSpec::new(AggFunc::Min, Expr::col("f64"), "lo"),
            AggSpec::new(AggFunc::Max, Expr::col("i32"), "hi"),
            AggSpec::new(AggFunc::Avg, Expr::col("f64"), "avg"),
        ];
        let serial = ops::agg::aggregate(&chunk, &group_by, &aggs).unwrap();
        assert_grid(&serial, |ctx| {
            parallel::aggregate(&chunk, &group_by, &aggs, ctx).unwrap()
        });
    }

    #[test]
    fn parallel_join_with_shared_dictionary_is_bit_identical(
        base_rows in rows_strategy(120),
        kind in 0usize..3,
    ) {
        // Gathers of one chunk share the dictionary Arc: exercises the
        // code-reuse fast path of the string-key join.
        let base = chunk_of(&base_rows);
        let n = base.num_rows();
        let build = base.gather(&(0..(n / 2) as u32).collect::<Vec<u32>>());
        let probe = base.gather(&((n / 4) as u32..n as u32).collect::<Vec<u32>>());
        let kind = join_kind(kind);
        let serial =
            ops::join::hash_join(&build, &probe, "str", "str", kind).unwrap();
        assert_grid(&serial, |ctx| {
            parallel::hash_join(&build, &probe, "str", "str", kind, ctx).unwrap()
        });
    }
}

/// Deterministic edge cases the random sizes may not hit in a given run.
#[test]
fn empty_and_single_row_chunks() {
    for rows in [vec![], vec![(3, -2, 10, 1)]] {
        let chunk = chunk_of(&rows);
        let pred = predicate_for(0);
        let serial_sel = ops::select::select(&chunk, &pred).unwrap();
        assert_grid(&serial_sel, |ctx| {
            parallel::select(&chunk, &pred, ctx).unwrap()
        });

        for key in 0..4 {
            let k = key_column(key);
            for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
                let serial =
                    ops::join::hash_join(&chunk, &chunk, k, k, kind).unwrap();
                assert_grid(&serial, |ctx| {
                    parallel::hash_join(&chunk, &chunk, k, k, kind, ctx).unwrap()
                });
            }
        }

        for num_keys in 0..4 {
            let group_by: Vec<String> = ["str", "i32", "i64"][..num_keys]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let aggs = vec![
                AggSpec::sum(Expr::col("f64"), "sum"),
                AggSpec::count("cnt"),
            ];
            let serial = ops::agg::aggregate(&chunk, &group_by, &aggs).unwrap();
            assert_grid(&serial, |ctx| {
                parallel::aggregate(&chunk, &group_by, &aggs, ctx).unwrap()
            });
        }
    }
}

/// Whole plans give identical results (rows and checksums) serial vs
/// parallel — the executor-level guarantee behind byte-identical figures.
#[test]
fn full_ssb_plans_are_identical_serial_vs_parallel() {
    use robustq::storage::gen::ssb::SsbGenerator;
    use robustq::workloads::SsbQuery;

    let db = SsbGenerator::new(1).with_rows_per_sf(1_000).generate();
    let ctx = ParallelCtx::serial()
        .with_workers(4)
        .with_morsel_rows(128)
        .with_min_rows_per_worker(0);
    for q in SsbQuery::ALL {
        let plan = q.plan(&db).expect("plans");
        let serial = ops::execute_plan(&plan, &db).expect("serial runs");
        let par = ops::execute_plan_ctx(&plan, &db, ctx).expect("parallel runs");
        assert_eq!(serial, par, "{} diverged", q.name());
        assert_eq!(serial.checksum(), par.checksum());
    }
}
