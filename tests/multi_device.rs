//! Multi-device (1 CPU + K co-processor) invariants, swept over
//! K ∈ {1, 2, 4}.
//!
//! The N-device topology generalises the paper's {CPU, GPU} pair; these
//! tests pin what that generalisation must preserve:
//!
//!  1. **Result invariance** — adding co-processors changes where
//!     operators run, never what a query returns, under every strategy;
//!  2. **Conservation** — per-fleet heap bytes drain, and the executor's
//!     transfer metrics agree with the interconnect's own per-link
//!     statistics summed over the fleet, at every K;
//!  3. **Determinism** — virtual time is independent of real-CPU worker
//!     counts: the same run at workers ∈ {1, 2, 8} is byte-identical;
//!  4. **Chaos differential** — seeded fault plans at K > 1 still yield
//!     bit-identical results to that K's fault-free baseline;
//!  5. **Tracing** — a traced K-device run exports one kernel lane per
//!     device in the Chrome trace;
//!  6. **Sharding** — intra-operator sharding (DESIGN.md §12) is purely
//!     a placement concern: sharded runs reproduce the unsharded result
//!     fingerprints byte for byte under every strategy and K, conserve
//!     heap and link bytes across the shard transfers, and stay
//!     bit-identical under seeded faults on the shards' devices.
//!
//! (Byte-identity of the K = 1 default against the pre-topology executor
//! is pinned separately by `tests/topology_golden.rs`.)

use std::collections::BTreeMap;

use robustq::core::Strategy;
use robustq::engine::parallel::ParallelCtx;
use robustq::sim::{FaultPlan, FaultSpec, SimConfig, VirtualTime};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::Database;
use robustq::workloads::{ssb, RunReport, RunnerConfig, WorkloadRunner};

const KS: [usize; 3] = [1, 2, 4];

fn db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(1_000).generate()
}

/// A tight machine so placement has real heap/cache pressure, scaled out
/// to `k` identical co-processors.
fn sim_k(k: usize) -> SimConfig {
    SimConfig::default()
        .with_gpu_memory(512 * 1024)
        .with_gpu_cache(256 * 1024)
        .with_coprocessors(k)
}

type ResultMap = BTreeMap<(usize, usize), (usize, u64)>;

fn result_map(report: &RunReport) -> ResultMap {
    report
        .outcomes
        .iter()
        .map(|o| ((o.session, o.seq), (o.rows, o.checksum)))
        .collect()
}

/// Heap/link conservation at any K: the fleet heap drained and the
/// executor's transfer accounting matches the interconnect's totals.
fn assert_conservation(report: &RunReport, k: usize, label: &str) {
    let m = &report.metrics;
    assert_eq!(m.gpu_heap_leaked, 0, "{label}: fleet heap leaked bytes");
    assert_eq!(m.h2d_bytes, m.link_h2d.bytes, "{label}: H2D byte accounting split");
    assert_eq!(m.d2h_bytes, m.link_d2h.bytes, "{label}: D2H byte accounting split");
    assert_eq!(m.h2d_time, m.link_h2d.busy_time, "{label}: H2D time accounting split");
    assert_eq!(m.d2h_time, m.link_d2h.busy_time, "{label}: D2H time accounting split");
    assert_eq!(m.device_busy.len(), k + 1, "{label}: device table is not CPU + K");
    assert_eq!(m.ops_completed.len(), k + 1, "{label}: op table is not CPU + K");
    let total_ops: u64 = m.ops_completed.iter().map(|(_, n)| *n).sum();
    assert!(total_ops > 0, "{label}: no operator ever completed");
}

/// (1) + (2): every strategy returns identical results at every K, and
/// every run conserves heap and link bytes.
#[test]
fn results_are_invariant_in_the_coprocessor_count() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let cfg = RunnerConfig::default().with_users(2);
    for strategy in Strategy::ALL {
        let mut baseline: Option<ResultMap> = None;
        for k in KS {
            let runner = WorkloadRunner::new(&db, sim_k(k));
            let report = runner.run(&queries, strategy, &cfg).expect("sweep run");
            let label = format!("{} K={k}", strategy.name());
            assert_conservation(&report, k, &label);
            match &baseline {
                None => baseline = Some(result_map(&report)),
                Some(want) => assert_eq!(
                    want,
                    &result_map(&report),
                    "{label}: results drifted from the K=1 baseline"
                ),
            }
        }
    }
}

/// (3): virtual-time behaviour is independent of real-CPU parallelism —
/// the whole run (metrics and outcomes, down to the debug repr) is
/// byte-identical at workers ∈ {1, 2, 8}, for every K.
#[test]
fn runs_are_deterministic_across_worker_counts() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    for k in KS {
        let runner = WorkloadRunner::new(&db, sim_k(k));
        let mut baseline: Option<(String, String)> = None;
        for workers in [1usize, 2, 8] {
            let cfg = RunnerConfig::default()
                .with_users(2)
                .with_parallel(ParallelCtx::serial().with_workers(workers));
            let report =
                runner.run(&queries, Strategy::DataDrivenChopping, &cfg).expect("runs");
            let snap =
                (format!("{:?}", report.metrics), format!("{:?}", report.outcomes));
            match &baseline {
                None => baseline = Some(snap),
                Some(want) => assert_eq!(
                    want, &snap,
                    "K={k}: run not byte-identical at workers={workers}"
                ),
            }
        }
    }
}

/// (4): the chaos differential holds on a fleet — seeded fault plans at
/// every K keep results bit-identical to that K's fault-free baseline,
/// with conservation intact. At least one sweep point must actually
/// inject (vacuity guard).
#[test]
fn chaos_differential_holds_on_a_fleet() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let mut injected_total = 0;
    for k in KS {
        let runner = WorkloadRunner::new(&db, sim_k(k));
        let cfg = RunnerConfig::default().with_users(2);
        let baseline = runner
            .run(&queries, Strategy::Chopping, &cfg)
            .expect("fault-free baseline");
        let want = result_map(&baseline);
        let horizon = baseline.metrics.makespan.max(VirtualTime::from_micros(1));
        for seed in 0..10u64 {
            let spec = FaultSpec {
                alloc_fail_prob: 0.10,
                transfer_transient_prob: 0.10,
                transfer_spike_prob: 0.05,
                transfer_spike_factor: 3.0,
                kernel_abort_prob: 0.10,
                random_stalls: 1,
                stall_horizon: horizon,
                stall_len: (
                    VirtualTime::from_nanos(1 + horizon.as_nanos() / 20),
                    VirtualTime::ZERO,
                ),
                ..Default::default()
            };
            let plan = FaultPlan::new(seed, spec);
            let cfg = RunnerConfig::default().with_users(2).with_fault_plan(plan);
            let report = runner
                .run(&queries, Strategy::Chopping, &cfg)
                .unwrap_or_else(|e| panic!("K={k} seed {seed} failed: {e}"));
            let label = format!("K={k} seed {seed}");
            assert_conservation(&report, k, &label);
            assert_eq!(
                want,
                result_map(&report),
                "{label}: results drifted under faults"
            );
            injected_total += report.metrics.faults.injected;
        }
    }
    assert!(injected_total > 0, "the fleet chaos sweep never injected — vacuous");
}

/// (6), invariance: sharded runs return byte-identical results to the
/// unsharded K = 1 reference, per query, for every strategy and every K
/// — and conserve heap/link bytes across the extra shard transfers.
#[test]
fn sharded_results_are_byte_identical_to_unsharded() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    for strategy in Strategy::ALL {
        let want = result_map(
            &WorkloadRunner::new(&db, sim_k(1))
                .run(&queries, strategy, &RunnerConfig::default().with_users(2))
                .expect("unsharded baseline"),
        );
        for k in KS {
            let runner = WorkloadRunner::new(&db, sim_k(k));
            let cfg = RunnerConfig::default().with_users(2).with_sharding(k, 0.0);
            let report = runner.run(&queries, strategy, &cfg).expect("sharded run");
            let label = format!("{} K={k} sharded", strategy.name());
            assert_conservation(&report, k, &label);
            assert_eq!(
                want,
                result_map(&report),
                "{label}: drifted from the unsharded results"
            );
        }
    }
}

/// (6), invariance under the learned shard-aware policy: the data
/// placement manager that partitions/replicates tables across the fleet
/// must not change results either. A traced K = 4 run must actually
/// contain shard spans (vacuity guard: `with_sharding` did shard).
#[test]
fn sharded_placement_manager_matches_unsharded() {
    use robustq::core::{DataDrivenChopping, DataPlacementManager};
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let want = result_map(
        &WorkloadRunner::new(&db, sim_k(1))
            .run(&queries, Strategy::DataDrivenChopping, &RunnerConfig::default().with_users(2))
            .expect("unsharded baseline"),
    );
    for k in KS {
        let runner = WorkloadRunner::new(&db, sim_k(k));
        let mut policy = DataDrivenChopping::with_manager(
            DataPlacementManager::lfu().with_sharding(k, 64 * 1024),
        );
        let cfg = RunnerConfig::default()
            .with_users(2)
            .with_sharding(k, 0.0)
            .with_trace();
        let report = runner
            .run_with_policy(&queries, &mut policy, "Data-Driven Chopping + Shard", &cfg)
            .expect("sharded managed run");
        let label = format!("managed K={k} sharded");
        assert_conservation(&report, k, &label);
        assert_eq!(want, result_map(&report), "{label}: drifted from unsharded");
        if k >= 2 {
            let chrome = report.chrome_trace().expect("traced run exports");
            assert!(
                chrome.contains("shard"),
                "{label}: no shard spans in the trace — sharding never engaged"
            );
        }
    }
}

/// (6), chaos: seeded faults on a sharded fleet — allocation failures,
/// transfer faults and kernel aborts landing on individual shards'
/// devices — must recover without corrupting the merge: results stay
/// bit-identical to the sharded fault-free baseline at the same K.
#[test]
fn chaos_differential_holds_under_sharding() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let mut injected_total = 0;
    for k in [2usize, 4] {
        let runner = WorkloadRunner::new(&db, sim_k(k));
        let cfg = RunnerConfig::default().with_users(2).with_sharding(k, 0.0);
        let baseline = runner
            .run(&queries, Strategy::Chopping, &cfg)
            .expect("sharded fault-free baseline");
        let want = result_map(&baseline);
        let horizon = baseline.metrics.makespan.max(VirtualTime::from_micros(1));
        for seed in 0..6u64 {
            let spec = FaultSpec {
                alloc_fail_prob: 0.10,
                transfer_transient_prob: 0.10,
                transfer_spike_prob: 0.05,
                transfer_spike_factor: 3.0,
                kernel_abort_prob: 0.10,
                random_stalls: 1,
                stall_horizon: horizon,
                stall_len: (
                    VirtualTime::from_nanos(1 + horizon.as_nanos() / 20),
                    VirtualTime::ZERO,
                ),
                ..Default::default()
            };
            let cfg = RunnerConfig::default()
                .with_users(2)
                .with_sharding(k, 0.0)
                .with_fault_plan(FaultPlan::new(seed, spec));
            let report = runner
                .run(&queries, Strategy::Chopping, &cfg)
                .unwrap_or_else(|e| panic!("sharded K={k} seed {seed} failed: {e}"));
            let label = format!("sharded K={k} seed {seed}");
            assert_conservation(&report, k, &label);
            assert_eq!(
                want,
                result_map(&report),
                "{label}: faults corrupted the shard merge"
            );
            injected_total += report.metrics.faults.injected;
        }
    }
    assert!(injected_total > 0, "the sharded chaos sweep never injected — vacuous");
}

/// (5): a traced fleet run exports one kernel lane per device, and the
/// extra co-processors actually appear in the busy table.
#[test]
fn traced_fleet_run_has_one_lane_per_device() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    for k in [2usize, 4] {
        let runner = WorkloadRunner::new(&db, sim_k(k));
        let cfg = RunnerConfig::default().with_users(2).with_trace();
        let report =
            runner.run(&queries, Strategy::Chopping, &cfg).expect("traced run");
        let chrome = report.chrome_trace().expect("traced run exports chrome JSON");
        assert_eq!(report.metrics.device_busy.len(), k + 1);
        for (d, _) in report.metrics.device_busy.iter() {
            let lane = format!("{d} kernels");
            assert!(chrome.contains(&lane), "K={k}: trace missing lane {lane:?}");
        }
    }
}
