//! Serving-layer integration pins (DESIGN.md §13).
//!
//! Three suites:
//!
//! * **Differential** — a closed-loop `N`-user run expressed as the
//!   degenerate [`ArrivalProcess::Closed`] process must reproduce the
//!   classic `WorkloadRunner` results *bit-identically*: same
//!   `RunMetrics` (makespan included), same per-query outcomes.
//! * **Golden percentiles** — a fixed `(seed, workload, machine)`
//!   triple pins p50/p95/p99 and the outcome stream against a fixture
//!   (FNV-1a fingerprint, `ROBUSTQ_BLESS=1` to re-capture), and the
//!   same run repeated under different real-CPU worker counts must
//!   yield identical percentiles — virtual time never depends on host
//!   parallelism.
//! * **Overload** — at an arrival rate past GPU Only's capacity but
//!   within Data-Driven Chopping's, the learned strategy completes the
//!   whole schedule while GPU Only sheds, and the learned p99 stays at
//!   or below GPU Only's — graceful degradation instead of collapse.

use robustq::core::Strategy;
use robustq::engine::ParallelCtx;
use robustq::serve::{ArrivalProcess, QueryMix, ServeConfig, ServingRunner};
use robustq::sim::{SimConfig, VirtualTime};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::Database;
use robustq::workloads::{ssb, RunnerConfig, WorkloadRunner};

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/serving_golden.txt");

/// FNV-1a over the raw bytes.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn small_db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(1_000).generate()
}

/// The tight-cache machine of the loadgen sweep: the SSB working set
/// overflows a single co-processor cache, so placement quality decides
/// the tail.
fn tight_sim() -> SimConfig {
    SimConfig::default().with_gpu_memory(2 * 1024 * 1024).with_gpu_cache(256 * 1024)
}

#[test]
fn closed_arrival_process_is_bit_identical_to_workload_runner() {
    let db = small_db();
    let queries = ssb::workload(&db).expect("SSB plans");
    for strategy in [Strategy::GpuPreferred, Strategy::DataDrivenChopping] {
        for users in [1usize, 3] {
            let classic = WorkloadRunner::new(&db, tight_sim())
                .run(&queries, strategy, &RunnerConfig::default().with_users(users))
                .expect("closed-loop run");
            let serving = ServingRunner::new(&db, tight_sim())
                .run(
                    &QueryMix::uniform(queries.clone()),
                    strategy,
                    &ServeConfig::new(
                        ArrivalProcess::Closed { users },
                        VirtualTime::ZERO,
                    ),
                )
                .expect("serving run");
            assert_eq!(
                classic.metrics, serving.metrics,
                "{} users={users}: metrics must be bit-identical",
                strategy.name()
            );
            assert_eq!(
                format!("{:?}", classic.outcomes),
                format!("{:?}", serving.outcomes),
                "{} users={users}: outcomes must be bit-identical",
                strategy.name()
            );
            assert_eq!(serving.shed, 0);
            assert_eq!(serving.offered, queries.len());
        }
    }
}

/// The golden serving run: one open-loop sweep point, fully pinned.
fn fingerprint() -> String {
    let db = small_db();
    let mix = QueryMix::zipf(ssb::workload(&db).expect("SSB plans"), 0.8);
    let runner = ServingRunner::new(&db, tight_sim());
    let mut out = String::new();
    for strategy in [Strategy::GpuPreferred, Strategy::DataDrivenChopping] {
        let cfg = ServeConfig::new(
            ArrivalProcess::Poisson { rate_qps: 20_000.0 },
            VirtualTime::from_millis(20),
        )
        .with_sessions(64)
        .with_seed(7)
        .with_admission_limit(4)
        .with_queue_cap(16);
        let report = runner.run(&mix, strategy, &cfg).expect("golden serving run");
        out.push_str(&format!("strategy: {}\n", report.strategy));
        out.push_str(&format!(
            "offered: {} completed: {} shed: {}\n",
            report.offered,
            report.completed(),
            report.shed
        ));
        out.push_str(&format!(
            "p50: {:?} p95: {:?} p99: {:?} p999: {:?}\n",
            report.p50(),
            report.p95(),
            report.p99(),
            report.p999()
        ));
        out.push_str(&format!(
            "outcomes: {:#018x}\n",
            fnv64(format!("{:?}", report.outcomes).as_bytes())
        ));
    }
    out
}

#[test]
fn golden_percentiles_are_pinned() {
    let got = fingerprint();
    if std::env::var("ROBUSTQ_BLESS").is_ok() {
        std::fs::create_dir_all(
            std::path::Path::new(FIXTURE).parent().expect("fixture dir"),
        )
        .expect("create fixture dir");
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("serving fixture missing — run with ROBUSTQ_BLESS=1 to capture");
    assert_eq!(got, want, "serving percentiles drifted from the golden fixture");
}

#[test]
fn percentiles_are_identical_across_worker_counts() {
    let db = small_db();
    let mix = QueryMix::zipf(ssb::workload(&db).expect("SSB plans"), 0.8);
    let runner = ServingRunner::new(&db, tight_sim());
    let run = |workers: usize| {
        let cfg = ServeConfig::new(
            ArrivalProcess::Poisson { rate_qps: 10_000.0 },
            VirtualTime::from_millis(10),
        )
        .with_seed(3)
        .with_parallel(ParallelCtx::serial().with_workers(workers));
        let report = runner
            .run(&mix, Strategy::DataDrivenChopping, &cfg)
            .expect("worker-count run");
        (
            report.p50(),
            report.p95(),
            report.p99(),
            report.shed,
            fnv64(format!("{:?}", report.outcomes).as_bytes()),
        )
    };
    let base = run(1);
    for workers in [2usize, 8] {
        assert_eq!(
            run(workers),
            base,
            "virtual-time percentiles must not depend on host workers={workers}"
        );
    }
}

#[test]
fn overload_sheds_gracefully_under_learned_placement() {
    let db = SsbGenerator::new(1).with_rows_per_sf(8_000).generate();
    let mix = QueryMix::zipf(ssb::workload(&db).expect("SSB plans"), 0.8);
    let runner = ServingRunner::new(&db, tight_sim());
    // 25k qps: past GPU Only's thrashing capacity (~8k qps on this
    // machine), comfortably inside Data-Driven Chopping's (~25k+).
    let cfg = ServeConfig::new(
        ArrivalProcess::Poisson { rate_qps: 25_000.0 },
        VirtualTime::from_millis(20),
    )
    .with_seed(42)
    .with_admission_limit(4)
    .with_queue_cap(32);
    let gpu = runner.run(&mix, Strategy::GpuPreferred, &cfg).expect("gpu run");
    let learned =
        runner.run(&mix, Strategy::DataDrivenChopping, &cfg).expect("learned run");

    assert!(gpu.shed > 0, "GPU Only should shed past its capacity");
    assert_eq!(gpu.offered, gpu.completed() + gpu.shed as usize);
    assert_eq!(
        learned.shed, 0,
        "Data-Driven Chopping should absorb the same offered load"
    );
    assert_eq!(learned.completed(), learned.offered);
    assert!(
        learned.p99() <= gpu.p99(),
        "learned p99 {:?} must not exceed GPU Only p99 {:?}",
        learned.p99(),
        gpu.p99()
    );
    // The queue cap bounds the tail even for the overloaded strategy:
    // no query waits behind more than queue_cap + in-flight queries.
    assert!(
        gpu.p99() < VirtualTime::from_millis(300),
        "shedding must keep the overloaded tail bounded, got {:?}",
        gpu.p99()
    );
}
