//! Fuzz-style property tests of the SQL front end: the lexer, parser and
//! planner must never panic, and generated well-formed queries must plan
//! and execute against the generated schema.

use proptest::prelude::*;
use robustq::core::Strategy as PlacementStrategy;
use robustq::engine::ops;
use robustq::sim::SimConfig;
use robustq::sql::{plan_sql, SqlError};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::Database;
use robustq::workloads::{RunnerConfig, WorkloadRunner};
use std::sync::OnceLock;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| SsbGenerator::new(1).with_rows_per_sf(300).generate())
}

proptest! {
    /// Arbitrary byte soup: lexing/parsing/planning return errors, never
    /// panic.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = plan_sql(&input, db());
    }

    /// SQL-shaped token soup exercises deeper parser paths.
    #[test]
    fn sqlish_token_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "select", "from", "where", "group", "by", "order", "and",
                "or", "not", "between", "in", "like", "limit", "as", "sum",
                "count", "(", ")", ",", "*", "+", "-", "=", "<", ">=",
                "lineorder", "date", "lo_revenue", "d_year", "lo_discount",
                "1", "3.5", "'ASIA'", "''",
            ]),
            0..40,
        )
    ) {
        let sql = tokens.join(" ");
        let _ = plan_sql(&sql, db());
    }
}

/// Generator for well-formed single-table queries over lineorder.
fn well_formed_query() -> impl Strategy<Value = String> {
    let num_col = prop::sample::select(vec![
        "lo_quantity",
        "lo_discount",
        "lo_tax",
        "lo_revenue",
        "lo_extendedprice",
    ]);
    let op = prop::sample::select(vec!["<", "<=", ">", ">=", "=", "<>"]);
    (num_col, op, 0i32..60, prop::bool::ANY).prop_map(|(col, op, v, agg)| {
        if agg {
            format!(
                "select lo_discount, count(*) as n, sum(lo_revenue) as r \
                 from lineorder where {col} {op} {v} \
                 group by lo_discount order by lo_discount"
            )
        } else {
            format!(
                "select lo_orderkey, {col} from lineorder where {col} {op} {v} \
                 order by {col} desc limit 7"
            )
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed queries always plan and execute, and the WHERE clause
    /// is actually enforced.
    #[test]
    fn well_formed_queries_plan_and_execute(sql in well_formed_query()) {
        let plan = plan_sql(&sql, db()).expect("well-formed query plans");
        let out = ops::execute_plan(&plan, db()).expect("plans execute");
        // Either an aggregate (>=0 groups) or a top-7.
        prop_assert!(out.num_rows() <= 300);
        prop_assert!(out.num_columns() >= 2);
    }

    /// Differential fuzz: the simulated executor (device placement, heap
    /// pressure, transfers, aborts and all) returns exactly the rows and
    /// checksum of direct host execution for every generated query.
    #[test]
    fn executor_matches_direct_execution(sql in well_formed_query()) {
        let db = db();
        let plan = plan_sql(&sql, db).expect("well-formed query plans");
        let direct = ops::execute_plan(&plan, db).expect("direct execution");

        // A tight machine so placement decisions and aborts actually
        // happen; warm-up off to keep each case cheap.
        let sim = SimConfig::default()
            .with_gpu_memory(256 * 1024)
            .with_gpu_cache(128 * 1024);
        let runner = WorkloadRunner::new(db, sim);
        let cfg = RunnerConfig::default().cold_cache();
        let report = runner
            .run(std::slice::from_ref(&plan), PlacementStrategy::GpuPreferred, &cfg)
            .expect("executor runs");
        prop_assert_eq!(report.outcomes.len(), 1);
        let outcome = &report.outcomes[0];
        prop_assert_eq!(outcome.rows, direct.num_rows(), "row count diverged");
        prop_assert_eq!(outcome.checksum, direct.checksum(), "checksum diverged");
    }
}

#[test]
fn error_messages_name_the_problem() {
    let e = plan_sql("select zzz from lineorder", db()).unwrap_err();
    assert!(matches!(e, SqlError::Plan(_)));
    assert!(e.to_string().contains("zzz"));

    let e = plan_sql("select * from", db()).unwrap_err();
    assert!(matches!(e, SqlError::Parse(_)));

    let e = plan_sql("select * from t 'unterminated", db()).unwrap_err();
    assert!(matches!(e, SqlError::Lex { .. }));
}
