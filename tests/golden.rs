//! Golden regression tests: the benchmark generators and every operator
//! kernel are deterministic, so full-query results are locked by checksum.
//! A change to any kernel, the planner, the SQL front end or a generator
//! that alters results shows up here immediately.
//!
//! (Some highly selective queries return zero rows at this test scale —
//! a documented artifact of the linear downscale, not of the queries.)

use robustq::engine::ops;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::gen::tpch::TpchGenerator;
use robustq::workloads::{SsbQuery, TpchQuery};

#[test]
fn ssb_results_are_stable() {
    let db = SsbGenerator::new(2).with_rows_per_sf(2_500).generate();
    let golden: [(&str, usize, u64); 13] = [
        ("Q1.1", 1, 0xa0030593053babfb),
        ("Q1.2", 1, 0x9fd94f9ef20878c9),
        ("Q1.3", 1, 0x9fbb44ac4ba21263),
        ("Q2.1", 41, 0x37bc41bf6e773ab7),
        ("Q2.2", 2, 0x8b31ba2cc8799db0),
        ("Q2.3", 0, 0x0000000000000000),
        ("Q3.1", 59, 0x684316f088fbfefe),
        ("Q3.2", 0, 0x0000000000000000),
        ("Q3.3", 0, 0x0000000000000000),
        ("Q3.4", 0, 0x0000000000000000),
        ("Q4.1", 30, 0xea938a253ac43938),
        ("Q4.2", 23, 0x9b92aa382a026c94),
        ("Q4.3", 0, 0x0000000000000000),
    ];
    for (q, (name, rows, checksum)) in SsbQuery::ALL.iter().zip(golden) {
        assert_eq!(q.name(), name);
        let out = ops::execute_plan(&q.plan(&db).expect("plans"), &db).expect("runs");
        assert_eq!(out.num_rows(), rows, "{name}: row count drifted");
        assert_eq!(out.checksum(), checksum, "{name}: result drifted");
    }
}

#[test]
fn tpch_results_are_stable() {
    let db = TpchGenerator::new(2).with_rows_per_sf(2_500).generate();
    let golden: [(&str, usize, u64); 6] = [
        ("Q2", 0, 0x0000000000000000),
        ("Q3", 8, 0xa37b1f2ef1fc30c5),
        ("Q4", 5, 0xb9d4d2bf4800fe5d),
        ("Q5", 3, 0xa9b308a13e18fcc1),
        ("Q6", 1, 0x9fb184e7fdcf20b9),
        ("Q7", 0, 0x0000000000000000),
    ];
    for (q, (name, rows, checksum)) in TpchQuery::ALL.iter().zip(golden) {
        assert_eq!(q.name(), name);
        let out = ops::execute_plan(&q.plan(), &db).expect("runs");
        assert_eq!(out.num_rows(), rows, "{name}: row count drifted");
        assert_eq!(out.checksum(), checksum, "{name}: result drifted");
    }
}

#[test]
fn nonzero_queries_cover_every_operator_kind() {
    // The golden set must not be vacuous: the non-empty queries span
    // selections, inner and semi joins, grouped and global aggregation,
    // sorting and top-k.
    let db = SsbGenerator::new(2).with_rows_per_sf(2_500).generate();
    let nonzero = SsbQuery::ALL
        .iter()
        .filter(|q| {
            ops::execute_plan(&q.plan(&db).expect("plans"), &db)
                .expect("runs")
                .num_rows()
                > 0
        })
        .count();
    assert!(nonzero >= 7, "only {nonzero} SSB queries non-empty at test scale");
}
