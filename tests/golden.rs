//! Golden regression tests: the benchmark generators and every operator
//! kernel are deterministic, so full-query results are locked by checksum.
//! A change to any kernel, the planner, the SQL front end or a generator
//! that alters results shows up here immediately.
//!
//! (Some highly selective queries return zero rows at this test scale —
//! a documented artifact of the linear downscale, not of the queries.)

use robustq::core::Strategy;
use robustq::engine::ops;
use robustq::engine::ParallelCtx;
use robustq::sim::{FaultPlan, FaultSpec, SimConfig, VirtualTime};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::gen::tpch::TpchGenerator;
use robustq::workloads::{ssb, RunnerConfig, SsbQuery, TpchQuery, WorkloadRunner};

#[test]
fn ssb_results_are_stable() {
    let db = SsbGenerator::new(2).with_rows_per_sf(2_500).generate();
    let golden: [(&str, usize, u64); 13] = [
        ("Q1.1", 1, 0xa000a9423d8d9780),
        ("Q1.2", 1, 0x9fd16fbb4ba21260),
        ("Q1.3", 1, 0x5ea170c03727311b),
        ("Q2.1", 23, 0x2511636749a8375e),
        ("Q2.2", 1, 0x87748cda88cb93e5),
        ("Q2.3", 0, 0x0000000000000000),
        ("Q3.1", 32, 0x70fac327673ea06a),
        ("Q3.2", 0, 0x0000000000000000),
        ("Q3.3", 0, 0x0000000000000000),
        ("Q3.4", 0, 0x0000000000000000),
        ("Q4.1", 33, 0x6173633c80f99d8b),
        ("Q4.2", 30, 0xeb3246a1cd96b2f8),
        ("Q4.3", 0, 0x0000000000000000),
    ];
    for (q, (name, rows, checksum)) in SsbQuery::ALL.iter().zip(golden) {
        assert_eq!(q.name(), name);
        let out = ops::execute_plan(&q.plan(&db).expect("plans"), &db).expect("runs");
        assert_eq!(out.num_rows(), rows, "{name}: row count drifted");
        assert_eq!(out.checksum(), checksum, "{name}: result drifted");
    }
}

#[test]
fn tpch_results_are_stable() {
    let db = TpchGenerator::new(2).with_rows_per_sf(2_500).generate();
    let golden: [(&str, usize, u64); 6] = [
        ("Q2", 1, 0x2f1a607dc73d16cb),
        ("Q3", 5, 0xe5b7f8b15baab692),
        ("Q4", 5, 0xb9d4d2bf4800fe60),
        ("Q5", 2, 0xcf0db2c71ed99a8c),
        ("Q6", 1, 0x9fb1607f07d82395),
        ("Q7", 4, 0xe7517de8b08e8175),
    ];
    for (q, (name, rows, checksum)) in TpchQuery::ALL.iter().zip(golden) {
        assert_eq!(q.name(), name);
        let out = ops::execute_plan(&q.plan(), &db).expect("runs");
        assert_eq!(out.num_rows(), rows, "{name}: row count drifted");
        assert_eq!(out.checksum(), checksum, "{name}: result drifted");
    }
}

/// Identical seeds produce *byte-identical* runner metrics — across
/// repeated invocations and across kernel worker counts (real-CPU
/// parallelism must never leak into virtual time), with fault
/// injection active so the fault path is covered by the guarantee.
#[test]
fn seeded_runs_are_byte_identical_across_invocations_and_workers() {
    let db = SsbGenerator::new(1).with_rows_per_sf(1_500).generate();
    let queries = ssb::workload(&db).expect("SSB plans");
    let sim = SimConfig::default().with_gpu_memory(512 * 1024).with_gpu_cache(256 * 1024);
    let runner = WorkloadRunner::new(&db, sim);

    let spec = FaultSpec {
        alloc_fail_prob: 0.05,
        transfer_transient_prob: 0.05,
        transfer_spike_prob: 0.05,
        transfer_spike_factor: 3.0,
        kernel_abort_prob: 0.05,
        random_stalls: 2,
        stall_horizon: VirtualTime::from_millis(10),
        stall_len: (VirtualTime::from_micros(10), VirtualTime::from_micros(500)),
        ..FaultSpec::default()
    };
    let cfg = |workers: usize| {
        RunnerConfig::default()
            .with_users(4)
            .with_fault_plan(FaultPlan::new(7, spec.clone()))
            .with_parallel(
                ParallelCtx::serial().with_workers(workers).with_min_rows_per_worker(0),
            )
    };

    let fingerprint = |cfg: &RunnerConfig| {
        let report =
            runner.run(&queries, Strategy::GpuPreferred, cfg).expect("workload runs");
        format!("{:?}\n{:?}", report.metrics, report.outcomes)
    };

    let first = fingerprint(&cfg(1));
    let again = fingerprint(&cfg(1));
    assert_eq!(first, again, "same seed, same config: metrics drifted between runs");
    let parallel8 = fingerprint(&cfg(8));
    assert_eq!(first, parallel8, "worker count leaked into virtual-time metrics");
}

#[test]
fn nonzero_queries_cover_every_operator_kind() {
    // The golden set must not be vacuous: the non-empty queries span
    // selections, inner and semi joins, grouped and global aggregation,
    // sorting and top-k.
    let db = SsbGenerator::new(2).with_rows_per_sf(2_500).generate();
    let nonzero = SsbQuery::ALL
        .iter()
        .filter(|q| {
            ops::execute_plan(&q.plan(&db).expect("plans"), &db)
                .expect("runs")
                .num_rows()
                > 0
        })
        .count();
    assert!(nonzero >= 7, "only {nonzero} SSB queries non-empty at test scale");
}
