//! Property-based tests on core invariants (proptest).

use proptest::prelude::*;
use robustq::engine::ops;
use robustq::engine::plan::{AggSpec, PlanNode, SortKey};
use robustq::engine::predicate::Predicate;
use robustq::engine::expr::Expr;
use robustq::engine::Chunk;
use robustq::sim::{CacheKey, CachePolicy, DataCache, HeapAllocator, VirtualTime};
use robustq::storage::{ColumnData, DataType, Field};

fn int_chunk(a: Vec<i32>, b: Vec<i32>) -> Chunk {
    Chunk::new(
        vec![Field::new("a", DataType::Int32), Field::new("b", DataType::Int32)],
        vec![ColumnData::Int32(a), ColumnData::Int32(b)],
    )
}

proptest! {
    /// Selection keeps exactly the rows a naive scan would keep, in order.
    #[test]
    fn selection_matches_naive_filter(
        rows in prop::collection::vec((-50i32..50, -50i32..50), 0..200),
        lo in -60i32..60,
        len in 0i32..40,
    ) {
        let hi = lo + len;
        let (a, b): (Vec<i32>, Vec<i32>) = rows.iter().copied().unzip();
        let chunk = int_chunk(a.clone(), b);
        let pred = Predicate::between("a", lo, hi);
        let out = ops::select::select(&chunk, &pred).unwrap();
        let expected: Vec<i32> =
            a.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
        let got: Vec<i64> =
            (0..out.num_rows()).map(|i| out.row(i)[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected.iter().map(|&x| x as i64).collect::<Vec<_>>());
    }

    /// Inner hash join row count equals the nested-loop count, and
    /// semi + anti partition the probe side.
    #[test]
    fn join_counts_match_nested_loop(
        build in prop::collection::vec(0i32..20, 0..60),
        probe in prop::collection::vec(0i32..20, 0..60),
    ) {
        let b = int_chunk(build.clone(), build.clone());
        let p = int_chunk(probe.clone(), probe.clone());
        let inner = ops::join::hash_join(&b, &p, "a", "a", robustq::engine::JoinKind::Inner).unwrap();
        let semi = ops::join::hash_join(&b, &p, "a", "a", robustq::engine::JoinKind::Semi).unwrap();
        let anti = ops::join::hash_join(&b, &p, "a", "a", robustq::engine::JoinKind::Anti).unwrap();
        let expected: usize = probe
            .iter()
            .map(|x| build.iter().filter(|y| *y == x).count())
            .sum();
        prop_assert_eq!(inner.num_rows(), expected);
        prop_assert_eq!(semi.num_rows() + anti.num_rows(), probe.len());
    }

    /// Group-by sums are conserved: the sum over groups equals the total.
    #[test]
    fn aggregation_conserves_sums(
        rows in prop::collection::vec((0i32..8, -1000i32..1000), 0..300),
    ) {
        let (keys, vals): (Vec<i32>, Vec<i32>) = rows.iter().copied().unzip();
        let chunk = int_chunk(keys, vals.clone());
        let grouped = ops::agg::aggregate(
            &chunk,
            &["a".to_string()],
            &[AggSpec::sum(Expr::col("b"), "s")],
        )
        .unwrap();
        let total: f64 = (0..grouped.num_rows())
            .map(|i| grouped.row(i)[1].as_f64().unwrap())
            .sum();
        let expected: f64 = vals.iter().map(|&v| v as f64).sum();
        prop_assert!((total - expected).abs() < 1e-6);
    }

    /// Sorting is a permutation and respects the order.
    #[test]
    fn sort_is_an_ordered_permutation(
        rows in prop::collection::vec(-1000i32..1000, 0..200),
    ) {
        let chunk = int_chunk(rows.clone(), rows.clone());
        let sorted = ops::sort::sort(&chunk, &[SortKey::asc("a")], None).unwrap();
        prop_assert_eq!(sorted.num_rows(), rows.len());
        prop_assert_eq!(sorted.checksum(), chunk.checksum());
        let got: Vec<i64> =
            (0..sorted.num_rows()).map(|i| sorted.row(i)[0].as_i64().unwrap()).collect();
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The device cache never exceeds capacity and never loses pinned
    /// entries, under arbitrary interleavings of inserts and pins.
    #[test]
    fn cache_capacity_and_pin_invariants(
        ops in prop::collection::vec((0u64..30, 1u64..40, prop::bool::ANY), 1..120),
    ) {
        let mut cache = DataCache::new(100, CachePolicy::Lru);
        let mut pinned: Vec<(CacheKey, u64)> = Vec::new();
        for (key, bytes, pin) in ops {
            if pin {
                // Keep the pinned set within capacity.
                let used: u64 = pinned.iter().map(|&(_, b)| b).sum();
                if used + bytes <= cache.capacity()
                    && !pinned.iter().any(|&(k, _)| k == CacheKey(key))
                {
                    pinned.push((CacheKey(key), bytes));
                    cache.set_pinned(&pinned);
                }
            } else {
                let _ = cache.insert(CacheKey(key + 100), bytes);
            }
            prop_assert!(cache.used() <= cache.capacity());
            for &(k, _) in &pinned {
                prop_assert!(cache.contains(k), "pinned entry evicted");
            }
        }
    }

    /// Heap accounting: used bytes equal the sum of live allocations.
    #[test]
    fn heap_accounting_is_exact(
        ops in prop::collection::vec((0u64..8, 0u64..50, prop::bool::ANY), 1..150),
    ) {
        let mut heap = HeapAllocator::new(200);
        let mut live: std::collections::HashMap<u64, u64> = Default::default();
        for (tag, bytes, free) in ops {
            if free {
                heap.free_tag(tag);
                live.remove(&tag);
            } else if heap.try_alloc(tag, bytes) {
                if bytes > 0 {
                    *live.entry(tag).or_default() += bytes;
                }
            } else {
                // Failed allocations must not change accounting.
            }
            let expected: u64 = live.values().sum();
            prop_assert_eq!(heap.used(), expected);
            prop_assert!(heap.used() <= heap.capacity());
        }
    }

    /// Virtual time arithmetic: from/as second conversions roundtrip
    /// within a nanosecond.
    #[test]
    fn virtual_time_roundtrip(ns in 0u64..10_000_000_000_000) {
        let t = VirtualTime::from_nanos(ns);
        let back = VirtualTime::from_secs_f64(t.as_secs_f64());
        let diff = back.as_nanos().abs_diff(ns);
        prop_assert!(diff <= 2_000, "{ns} -> {} (diff {diff})", back.as_nanos());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized SPJA plans over a generated table return the same
    /// results whether run directly or through the simulated executor
    /// under any strategy.
    #[test]
    fn executor_preserves_results_for_random_predicates(
        lo in 0i32..8,
        len in 0i32..5,
        strategy_idx in 0usize..7,
    ) {
        use robustq::core::Strategy;
        use robustq::sim::SimConfig;
        use robustq::workloads::{RunnerConfig, WorkloadRunner};
        use robustq::storage::gen::ssb::SsbGenerator;

        let db = SsbGenerator::new(1).with_rows_per_sf(1_000).generate();
        let plan = PlanNode::scan("lineorder", ["lo_discount", "lo_revenue"])
            .filter(Predicate::between("lo_discount", lo, lo + len))
            .aggregate(
                ["lo_discount"],
                vec![AggSpec::sum(Expr::col("lo_revenue"), "r")],
            )
            .sort(vec![SortKey::asc("lo_discount")]);
        let expected = ops::execute_plan(&plan, &db).unwrap().checksum();

        let strategy = Strategy::ALL[strategy_idx];
        let runner = WorkloadRunner::new(&db, SimConfig::default());
        let report = runner
            .run(std::slice::from_ref(&plan), strategy, &RunnerConfig::default())
            .unwrap();
        prop_assert_eq!(report.outcomes[0].checksum, expected);
    }
}
