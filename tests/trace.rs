//! Integration tests for the virtual-time tracing subsystem
//! (DESIGN.md §10): determinism of the event stream across worker
//! counts and fault plans, the observer-effect-free contract, metric
//! re-derivation from events on SSB and TPC-H, and Chrome-export
//! validity under `trace-lint`'s rules.

use robustq::core::Strategy;
use robustq::engine::{ParallelCtx, RunMetrics};
use robustq::sim::{DeviceId, FaultPlan, FaultSpec, SimConfig};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::Database;
use robustq::trace::lint_chrome_trace;
use robustq::workloads::{ssb, tpch, RunReport, RunnerConfig, WorkloadRunner};

fn db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(1_000).generate()
}

/// A tight machine so co-processor aborts and cache evictions occur
/// organically and the trace covers every event kind.
fn tight_sim() -> SimConfig {
    SimConfig::default().with_gpu_memory(512 * 1024).with_gpu_cache(256 * 1024)
}

/// A mixed fault plan touching every injection path.
fn fault_plan() -> FaultPlan {
    let spec = FaultSpec {
        alloc_fail_prob: 0.1,
        transfer_transient_prob: 0.1,
        transfer_spike_prob: 0.05,
        transfer_spike_factor: 4.0,
        kernel_abort_prob: 0.1,
        ..Default::default()
    };
    FaultPlan::new(42, spec)
}

fn ssb_run(workers: usize, trace: bool, fault: Option<FaultPlan>) -> RunReport {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, tight_sim());
    let mut cfg = RunnerConfig::default()
        .with_users(2)
        .with_parallel(ParallelCtx::serial().with_workers(workers));
    if trace {
        cfg = cfg.with_trace();
    }
    if let Some(f) = fault {
        cfg = cfg.with_fault_plan(f);
    }
    runner.run(&queries, Strategy::GpuPreferred, &cfg).expect("SSB run")
}

#[test]
fn event_stream_identical_across_worker_counts() {
    let a = ssb_run(1, true, None);
    let b = ssb_run(8, true, None);
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.dropped, 0);
    assert_eq!(ta, tb, "worker count must not perturb the event stream");
}

#[test]
fn event_stream_identical_across_worker_counts_under_faults() {
    let a = ssb_run(1, true, Some(fault_plan()));
    let b = ssb_run(8, true, Some(fault_plan()));
    assert!(a.metrics.faults.injected > 0, "fault plan must fire");
    assert_eq!(
        a.trace.unwrap(),
        b.trace.unwrap(),
        "fault replay must be worker-count independent"
    );
}

#[test]
fn tracing_is_observer_effect_free() {
    let traced = ssb_run(1, true, Some(fault_plan()));
    let bare = ssb_run(1, false, Some(fault_plan()));
    assert!(bare.trace.is_none());
    assert_eq!(traced.metrics, bare.metrics, "tracing must not change the run");
    assert_eq!(traced.outcomes.len(), bare.outcomes.len());
    for (t, b) in traced.outcomes.iter().zip(&bare.outcomes) {
        assert_eq!((t.session, t.seq, t.rows, t.checksum), (b.session, b.seq, b.rows, b.checksum));
        assert_eq!(t.latency, b.latency);
    }
}

#[test]
fn metrics_rederive_from_events_on_ssb() {
    for fault in [None, Some(fault_plan())] {
        let report = ssb_run(2, true, fault);
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(trace.dropped, 0, "default ring must hold the run");
        assert_eq!(
            RunMetrics::from_events(&trace.events),
            report.metrics,
            "trace-derived metrics must equal the legacy counters"
        );
    }
}

#[test]
fn metrics_rederive_from_events_on_tpch() {
    let db = robustq::storage::gen::tpch::TpchGenerator::new(1)
        .with_rows_per_sf(1_000)
        .generate();
    let queries = tpch::workload();
    let runner = WorkloadRunner::new(&db, tight_sim());
    let cfg = RunnerConfig::default().with_users(2).with_trace();
    let report = runner
        .run(&queries, Strategy::DataDrivenChopping, &cfg)
        .expect("TPC-H run");
    let trace = report.trace.as_ref().unwrap();
    assert_eq!(RunMetrics::from_events(&trace.events), report.metrics);
}

#[test]
fn chrome_export_passes_lint() {
    for fault in [None, Some(fault_plan())] {
        let report = ssb_run(1, true, fault);
        let json = report.chrome_trace().expect("traced run exports");
        let rep = lint_chrome_trace(&json).expect("exported trace must lint clean");
        assert!(rep.events > 0);
        assert!(rep.lanes >= 3, "device + session lanes expected");
        assert!(rep.span_pairs >= report.metrics.queries, "one B/E pair per query");
    }
}

#[test]
fn registry_counters_match_run_metrics() {
    let report = ssb_run(1, true, Some(fault_plan()));
    let reg = report.metrics_registry().expect("traced run has a registry");
    let m = &report.metrics;
    assert_eq!(reg.counter("queries"), m.queries as u64);
    assert_eq!(reg.counter("ops_completed_cpu"), m.ops_completed[DeviceId::Cpu]);
    assert_eq!(reg.counter("ops_completed_gpu"), m.ops_completed[DeviceId::Gpu]);
    assert_eq!(reg.counter("op_aborts"), m.aborts);
    assert_eq!(reg.counter("cache_hits"), m.cache_hits);
    assert_eq!(reg.counter("cache_misses"), m.cache_misses);
    assert_eq!(reg.counter("faults_injected"), m.faults.injected);
    assert_eq!(reg.counter("transfer_retries"), m.faults.retries);
    let lat = reg.get_histogram("query_latency_ns").expect("latency histogram");
    assert_eq!(lat.count(), m.queries as u64);
    assert!(reg.counter("placement_decisions") > 0);
}

/// A sharded fleet run (DESIGN.md §12) exercises the shard-span lint
/// rule for real: the Chrome export must lint clean with a nonzero
/// `shard_spans` count, the registry's fan-out/merge counters must be
/// consistent, and metric re-derivation must survive the shard events.
#[test]
fn sharded_chrome_export_passes_shard_span_lint() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let k = 4;
    let runner = WorkloadRunner::new(&db, tight_sim().with_coprocessors(k));
    let cfg = RunnerConfig::default()
        .with_users(2)
        .with_sharding(k, 0.0)
        .with_trace();
    let report =
        runner.run(&queries, Strategy::Chopping, &cfg).expect("sharded traced run");
    let trace = report.trace.as_ref().unwrap();
    assert_eq!(trace.dropped, 0);
    assert_eq!(RunMetrics::from_events(&trace.events), report.metrics);

    let json = report.chrome_trace().expect("traced run exports");
    let rep = lint_chrome_trace(&json).expect("sharded trace must lint clean");
    assert!(
        rep.shard_spans > 0,
        "sharded run produced no shard spans — the lint rule never engaged"
    );

    let reg = report.metrics_registry().expect("traced run has a registry");
    let fanouts = reg.counter("shard_fanouts");
    assert!(fanouts > 0, "no shard fan-outs counted");
    assert_eq!(
        reg.counter("shard_merges"),
        fanouts,
        "every fan-out must be closed by exactly one merge"
    );
    assert!(
        reg.counter("shards_spawned") >= 2 * fanouts,
        "a fan-out spawns at least two shards"
    );
    assert_eq!(
        rep.shard_spans as u64, fanouts,
        "lint's span count must agree with the registry's fan-out count"
    );
}

#[test]
fn untraced_report_has_no_trace_artifacts() {
    let report = ssb_run(1, false, None);
    assert!(report.trace.is_none());
    assert!(report.chrome_trace().is_none());
    assert!(report.metrics_registry().is_none());
}
