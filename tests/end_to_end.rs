//! Cross-crate integration: every placement strategy must produce
//! *identical query results* — placement changes timing, never answers —
//! and runs must be deterministic.

use robustq::core::Strategy;
use robustq::engine::ops;
use robustq::sim::SimConfig;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::gen::tpch::TpchGenerator;
use robustq::workloads::{ssb, tpch, RunnerConfig, WorkloadRunner};

#[test]
fn all_strategies_agree_on_every_ssb_query() {
    let db = SsbGenerator::new(1).with_rows_per_sf(3_000).generate();
    let queries = ssb::workload(&db).expect("SSB plans");
    // Reference answers from direct host execution.
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| ops::execute_plan(q, &db).expect("reference execution").checksum())
        .collect();

    // A deliberately tight machine so strategies diverge in placement
    // and some co-processor operators abort.
    let sim = SimConfig::default().with_gpu_memory(512 * 1024).with_gpu_cache(256 * 1024);
    let runner = WorkloadRunner::new(&db, sim);
    for strategy in Strategy::ALL {
        let cfg = RunnerConfig {
            capture_results: false,
            ..RunnerConfig::default()
        };
        let report = runner.run(&queries, strategy, &cfg).expect("workload runs");
        assert_eq!(report.outcomes.len(), queries.len(), "{}", strategy.name());
        for outcome in &report.outcomes {
            // Round-robin with one session: seq is the workload index.
            assert_eq!(
                outcome.checksum,
                expected[outcome.seq],
                "{}: query {} returned a different result",
                strategy.name(),
                outcome.seq
            );
        }
    }
}

#[test]
fn all_strategies_agree_on_tpch_queries() {
    let db = TpchGenerator::new(1).with_rows_per_sf(3_000).generate();
    let queries = tpch::workload();
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| ops::execute_plan(q, &db).expect("reference execution").checksum())
        .collect();
    let runner = WorkloadRunner::new(&db, SimConfig::default());
    for strategy in [Strategy::GpuPreferred, Strategy::CriticalPath, Strategy::DataDrivenChopping]
    {
        let report = runner
            .run(&queries, strategy, &RunnerConfig::default())
            .expect("workload runs");
        for outcome in &report.outcomes {
            assert_eq!(outcome.checksum, expected[outcome.seq], "{}", strategy.name());
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let db = SsbGenerator::new(1).with_rows_per_sf(2_000).generate();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, SimConfig::default());
    let cfg = RunnerConfig::default().with_users(4);
    let a = runner.run(&queries, Strategy::DataDrivenChopping, &cfg).expect("first");
    let b = runner.run(&queries, Strategy::DataDrivenChopping, &cfg).expect("second");
    assert_eq!(a.metrics.makespan, b.metrics.makespan);
    assert_eq!(a.metrics.h2d_bytes, b.metrics.h2d_bytes);
    assert_eq!(a.metrics.aborts, b.metrics.aborts);
    assert_eq!(a.metrics.wasted_time, b.metrics.wasted_time);
}

#[test]
fn multi_user_preserves_results_under_contention() {
    let db = SsbGenerator::new(2).with_rows_per_sf(2_000).generate();
    let queries = ssb::workload(&db).expect("SSB plans");
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| ops::execute_plan(q, &db).expect("reference").checksum())
        .collect();
    // Small heap: heavy contention at 8 users.
    let sim = SimConfig::default().with_gpu_memory(1 << 20).with_gpu_cache(1 << 19);
    let runner = WorkloadRunner::new(&db, sim);
    let cfg = RunnerConfig::default().with_users(8);
    let report = runner.run(&queries, Strategy::GpuPreferred, &cfg).expect("runs");
    for outcome in &report.outcomes {
        let original = (0..queries.len())
            .find(|k| k % 8 == outcome.session && k / 8 == outcome.seq)
            .expect("outcome maps to a workload slot");
        assert_eq!(outcome.checksum, expected[original]);
    }
}
