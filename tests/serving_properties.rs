//! Property tests for the open-loop arrival generators (DESIGN.md §13).
//!
//! Three families of properties:
//!
//! * **Determinism** — a `(process, horizon, seed)` triple fully
//!   determines the schedule: regenerating must reproduce every instant
//!   exactly, and schedules are sorted and strictly inside the horizon.
//! * **Statistics** — the Poisson generator's empirical inter-arrival
//!   mean matches `1/rate` within a tolerance far wider than the
//!   sampling error at the generated counts.
//! * **Phase boundaries** — bursty and ramp processes respect their
//!   phase edges *exactly* in virtual time: a burst-only schedule never
//!   places an arrival outside a burst window, and no process ever
//!   emits at or past the horizon.

use proptest::prelude::*;
use robustq::serve::{ArrivalProcess, QueryMix};
use robustq::sim::VirtualTime;
use robustq::workloads::micro;

/// The process variants under test, sized so every case generates a
/// meaningful number of arrivals without dominating test time.
fn process_for(which: usize, rate: f64, period_ms: u64, burst_ms: u64) -> ArrivalProcess {
    match which % 4 {
        0 => ArrivalProcess::Poisson { rate_qps: rate },
        1 => ArrivalProcess::Bursty {
            base_qps: rate / 4.0,
            burst_qps: rate * 4.0,
            period: VirtualTime::from_millis(period_ms),
            burst_len: VirtualTime::from_millis(burst_ms.min(period_ms)),
        },
        2 => ArrivalProcess::Ramp { start_qps: rate / 2.0, end_qps: rate * 2.0 },
        _ => ArrivalProcess::Uniform { rate_qps: rate },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same `(process, horizon, seed)` ⇒ byte-identical schedule; and
    /// every schedule is sorted with all instants strictly below the
    /// horizon.
    #[test]
    fn schedules_are_seed_deterministic_sorted_and_bounded(
        which in 0usize..4,
        rate_k in 1u64..50,
        period_ms in 1u64..20,
        burst_ms in 1u64..20,
        horizon_ms in 1u64..100,
        seed in 0u64..1_000,
    ) {
        let process = process_for(which, rate_k as f64 * 1_000.0, period_ms, burst_ms);
        let horizon = VirtualTime::from_millis(horizon_ms);
        let a = process.schedule(horizon, seed);
        let b = process.schedule(horizon, seed);
        prop_assert_eq!(&a, &b, "same seed must reproduce the schedule");
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "schedule sorted");
        prop_assert!(a.iter().all(|&t| t < horizon), "arrivals inside [0, horizon)");
    }

    /// The Poisson empirical inter-arrival mean is `1/rate` within 10%.
    /// At `rate >= 5k qps` over one virtual second a schedule holds
    /// thousands of gaps, so the sampling error of the mean is well
    /// under a percent — 10% only trips on a broken generator.
    #[test]
    fn poisson_inter_arrival_mean_matches_rate(
        rate_k in 5u64..50,
        seed in 0u64..1_000,
    ) {
        let rate = rate_k as f64 * 1_000.0;
        let horizon = VirtualTime::from_secs_f64(1.0);
        let s = ArrivalProcess::Poisson { rate_qps: rate }.schedule(horizon, seed);
        prop_assert!(s.len() > 100, "expected a dense schedule, got {}", s.len());
        let span_ns = (s[s.len() - 1] - s[0]).as_nanos() as f64;
        let mean_gap_ns = span_ns / (s.len() - 1) as f64;
        let want_ns = 1e9 / rate;
        let err = (mean_gap_ns - want_ns).abs() / want_ns;
        prop_assert!(
            err < 0.10,
            "mean gap {mean_gap_ns:.1}ns vs expected {want_ns:.1}ns (err {err:.3})"
        );
    }

    /// A burst-only process (zero base rate) never emits outside a
    /// burst window: for every arrival `t`, `t mod period < burst_len`
    /// holds exactly in integer nanoseconds.
    #[test]
    fn burst_windows_are_exact_in_virtual_time(
        rate_k in 5u64..50,
        period_ms in 2u64..20,
        burst_frac in 1u64..9,
        seed in 0u64..1_000,
    ) {
        let period = VirtualTime::from_millis(period_ms);
        let burst_len = VirtualTime::from_nanos(
            period.as_nanos() * burst_frac / 10,
        );
        let process = ArrivalProcess::Bursty {
            base_qps: 0.0,
            burst_qps: rate_k as f64 * 1_000.0,
            period,
            burst_len,
        };
        let s = process.schedule(VirtualTime::from_millis(100), seed);
        for &t in &s {
            let phase = t.as_nanos() % period.as_nanos();
            prop_assert!(
                phase < burst_len.as_nanos(),
                "arrival at {t:?} lies outside the burst window \
                 (phase {phase}ns, burst {}ns)",
                burst_len.as_nanos()
            );
        }
    }

    /// A rising ramp loads the second half of the horizon more heavily
    /// than the first (and both halves split exactly at `horizon/2` in
    /// virtual time). With thousands of arrivals the expected 1:3 split
    /// makes a reversed count astronomically unlikely for a correct
    /// thinning sampler.
    #[test]
    fn ramp_loads_the_late_phase(seed in 0u64..1_000) {
        let horizon = VirtualTime::from_secs_f64(1.0);
        let process = ArrivalProcess::Ramp { start_qps: 0.0, end_qps: 20_000.0 };
        let s = process.schedule(horizon, seed);
        prop_assert!(s.len() > 1_000, "expected a dense schedule, got {}", s.len());
        let mid = VirtualTime::from_nanos(horizon.as_nanos() / 2);
        let early = s.iter().filter(|&&t| t < mid).count();
        let late = s.len() - early;
        prop_assert!(
            late > 2 * early,
            "rising ramp should back-load arrivals: {early} early vs {late} late"
        );
    }

    /// The uniform process is exact: `ceil(horizon · rate)` arrivals at
    /// multiples of the gap, starting from zero.
    #[test]
    fn uniform_count_is_exact(rate in 1u64..2_000, horizon_ms in 1u64..200) {
        let horizon = VirtualTime::from_millis(horizon_ms);
        let s = ArrivalProcess::Uniform { rate_qps: rate as f64 }
            .schedule(horizon, 0);
        // Arrivals at k/rate for k = 0, 1, … strictly below the horizon.
        let span_s = horizon_ms as f64 / 1e3;
        let want = (span_s * rate as f64).ceil() as usize;
        prop_assert!(
            s.len() == want || s.len() == want.saturating_sub(1),
            "uniform count {} vs expected ~{want}",
            s.len()
        );
        prop_assert_eq!(s.first().copied(), Some(VirtualTime::ZERO));
    }

    /// Mix sampling is deterministic under a fixed seed and always
    /// yields a valid template index.
    #[test]
    fn mix_sampling_is_deterministic_and_in_range(
        n in 1usize..12,
        theta_tenths in 0u64..20,
        seed in 0u64..1_000,
    ) {
        use robustq::serve::detmath::det_pow;
        let templates = micro::parallel_selection_workload(n);
        let mix = QueryMix::zipf(templates, theta_tenths as f64 / 10.0);
        // Weights must mirror the deterministic pow exactly.
        prop_assert!(det_pow(1.0, -(theta_tenths as f64) / 10.0) == 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            use robustq::serve::rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| mix.sample(&mut rng)).collect()
        };
        let a = draw(seed);
        let b = draw(seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&i| i < mix.len()));
    }
}
