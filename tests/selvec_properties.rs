//! Property tests: selection-vector kernels and fused pipelines are
//! **bit-identical** to the materializing paths.
//!
//! The selection-vector rework (DESIGN.md §9) replaced mask+gather
//! filtering with position lists threaded through the downstream kernels.
//! These tests pin the equivalence on arbitrary chunks, predicates and
//! join keys:
//!
//! * `Predicate::evaluate_selvec` against the original mask evaluator
//!   (`select_via_mask`), including refinement of an incoming selection;
//! * `hash_join_sel` / `aggregate_sel` consuming a selection vector
//!   against filtering first and running the materializing kernel;
//! * the fused morsel loops (`fused_filter_aggregate`,
//!   `fused_filter_probe`) and the plan-level fusion pass
//!   (`execute_plan_fused`) against the serial operator-at-a-time
//!   pipeline, at worker counts 1 and 8.

use proptest::prelude::*;
use robustq::engine::ops;
use robustq::engine::parallel::{self, ParallelCtx};
use robustq::engine::plan::{AggFunc, AggSpec, JoinKind};
use robustq::engine::predicate::{CmpOp, Predicate};
use robustq::engine::{execute_plan_fused, Chunk};
use robustq::engine::expr::Expr;
use robustq::storage::{ColumnData, DataType, DictColumn, Field};

const WORKER_GRID: [usize; 2] = [1, 8];

const STR_POOL: [&str; 7] =
    ["ASIA", "EUROPE", "AMERICA", "AFRICA", "MIDDLE EAST", "x", ""];

/// One generated row: (i32, i64, float-source, string-pool index).
type Row = (i32, i64, i32, usize);

/// Build a chunk with one column of every `DataType` from generated rows.
fn chunk_of(rows: &[Row]) -> Chunk {
    Chunk::new(
        vec![
            Field::new("i32", DataType::Int32),
            Field::new("i64", DataType::Int64),
            Field::new("f64", DataType::Float64),
            Field::new("str", DataType::Str),
        ],
        vec![
            ColumnData::Int32(rows.iter().map(|r| r.0).collect()),
            ColumnData::Int64(rows.iter().map(|r| r.1).collect()),
            ColumnData::Float64(rows.iter().map(|r| r.2 as f64 / 3.0).collect()),
            ColumnData::Str(DictColumn::from_strings(
                rows.iter().map(|r| STR_POOL[r.3 % STR_POOL.len()].to_string()),
            )),
        ],
    )
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((-40i32..40, -9i64..9, -60i32..60, 0usize..7), 0..max)
}

fn predicate_for(which: usize) -> Predicate {
    match which % 6 {
        0 => Predicate::cmp("i32", CmpOp::Lt, 5),
        1 => Predicate::between("f64", -5.0, 8.0),
        2 => Predicate::in_list("str", ["ASIA", "x"]),
        3 => Predicate::StrPrefix { column: "str".into(), prefix: "A".into() },
        4 => Predicate::and([
            Predicate::cmp("i64", CmpOp::Ge, -3),
            Predicate::Not(Box::new(Predicate::eq("str", "EUROPE"))),
        ]),
        _ => Predicate::or([
            Predicate::eq("i32", 0),
            Predicate::cmp("f64", CmpOp::Gt, 10.0),
        ]),
    }
}

fn key_column(which: usize) -> &'static str {
    ["i32", "i64", "f64", "str"][which % 4]
}

fn join_kind(which: usize) -> JoinKind {
    [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti][which % 3]
}

fn fused_ctx(workers: usize) -> ParallelCtx {
    ParallelCtx::serial()
        .with_workers(workers)
        .with_morsel_rows(16)
        .with_min_rows_per_worker(0) // fan out even tiny chunks
}

fn agg_spec() -> (Vec<String>, Vec<AggSpec>) {
    (
        vec!["str".to_string(), "i32".to_string()],
        vec![
            AggSpec::sum(Expr::col("f64"), "sum"),
            AggSpec::count("cnt"),
            AggSpec::new(AggFunc::Min, Expr::col("f64"), "lo"),
            AggSpec::new(AggFunc::Max, Expr::col("i32"), "hi"),
            AggSpec::new(AggFunc::Avg, Expr::col("f64"), "avg"),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The selection-vector evaluator and the original mask+gather
    /// evaluator produce the same filtered chunk.
    #[test]
    fn selvec_select_matches_mask_select(
        rows in rows_strategy(200),
        which in 0usize..6,
    ) {
        let chunk = chunk_of(&rows);
        let pred = predicate_for(which);
        let via_mask = ops::select::select_via_mask(&chunk, &pred).unwrap();
        let via_selvec = ops::select::select(&chunk, &pred).unwrap();
        prop_assert_eq!(&via_selvec, &via_mask);
    }

    /// Refining an incoming selection vector equals evaluating the
    /// conjunction from scratch: positions stay sorted and deduplicated.
    #[test]
    fn selvec_refinement_matches_conjunction(
        rows in rows_strategy(200),
        first in 0usize..6,
        second in 0usize..6,
    ) {
        let chunk = chunk_of(&rows);
        let (p1, p2) = (predicate_for(first), predicate_for(second));
        let sel = p1.evaluate_selvec(&chunk, None).unwrap();
        let refined = p2.evaluate_selvec(&chunk, Some(&sel)).unwrap();
        let conj = Predicate::and([p1, p2]).evaluate_selvec(&chunk, None).unwrap();
        prop_assert_eq!(refined, conj);
    }

    /// Probing through a selection vector equals materializing the
    /// filtered probe side first.
    #[test]
    fn selvec_join_matches_filter_then_join(
        build_rows in rows_strategy(60),
        probe_rows in rows_strategy(200),
        key in 0usize..4,
        kind in 0usize..3,
        which in 0usize..6,
    ) {
        let build = chunk_of(&build_rows);
        let probe = chunk_of(&probe_rows);
        let (k, kind, pred) = (key_column(key), join_kind(kind), predicate_for(which));
        let filtered = ops::select::select_via_mask(&probe, &pred).unwrap();
        let reference = ops::join::hash_join(&build, &filtered, k, k, kind).unwrap();
        let sel = pred.evaluate_selvec(&probe, None).unwrap();
        let lazy =
            ops::join::hash_join_sel(&build, &probe, k, k, kind, Some(&sel)).unwrap();
        prop_assert_eq!(&lazy, &reference);
        for workers in WORKER_GRID {
            let fused = parallel::fused_filter_probe(
                &build, &probe, &pred, k, k, kind, fused_ctx(workers),
            ).unwrap();
            prop_assert_eq!(&fused, &reference, "workers={}", workers);
        }
    }

    /// Aggregating through a selection vector equals materializing the
    /// filtered input first, and the fused filter→aggregate morsel loop
    /// matches both.
    #[test]
    fn selvec_aggregate_matches_filter_then_aggregate(
        rows in rows_strategy(200),
        which in 0usize..6,
        num_keys in 0usize..3,
    ) {
        let chunk = chunk_of(&rows);
        let pred = predicate_for(which);
        let (all_keys, aggs) = agg_spec();
        let group_by = all_keys[..num_keys].to_vec();
        let filtered = ops::select::select_via_mask(&chunk, &pred).unwrap();
        let reference = ops::agg::aggregate(&filtered, &group_by, &aggs).unwrap();
        let sel = pred.evaluate_selvec(&chunk, None).unwrap();
        let lazy =
            ops::agg::aggregate_sel(&chunk, Some(&sel), &group_by, &aggs).unwrap();
        prop_assert_eq!(&lazy, &reference);
        for workers in WORKER_GRID {
            let fused = parallel::fused_filter_aggregate(
                &chunk, &pred, &group_by, &aggs, fused_ctx(workers),
            ).unwrap();
            prop_assert_eq!(&fused, &reference, "workers={}", workers);
        }
    }
}

/// Deterministic edge cases the random sizes may not hit in a given run.
#[test]
fn empty_and_single_row_chunks() {
    let (all_keys, aggs) = agg_spec();
    for rows in [vec![], vec![(3, -2, 10, 1)]] {
        let chunk = chunk_of(&rows);
        for which in 0..6 {
            let pred = predicate_for(which);
            let filtered = ops::select::select_via_mask(&chunk, &pred).unwrap();
            assert_eq!(ops::select::select(&chunk, &pred).unwrap(), filtered);
            for num_keys in 0..3 {
                let group_by = all_keys[..num_keys].to_vec();
                let reference =
                    ops::agg::aggregate(&filtered, &group_by, &aggs).unwrap();
                for workers in WORKER_GRID {
                    let fused = parallel::fused_filter_aggregate(
                        &chunk, &pred, &group_by, &aggs, fused_ctx(workers),
                    )
                    .unwrap();
                    assert_eq!(fused, reference, "workers={workers}");
                }
            }
        }
    }
}

/// Whole plans through the fusion pass give identical results (rows and
/// checksums) to the serial operator-at-a-time pipeline — the plan-level
/// guarantee behind the golden figures.
#[test]
fn full_ssb_plans_are_identical_fused_vs_serial() {
    use robustq::storage::gen::ssb::SsbGenerator;
    use robustq::workloads::SsbQuery;

    let db = SsbGenerator::new(1).with_rows_per_sf(1_000).generate();
    for q in SsbQuery::ALL {
        let plan = q.plan(&db).expect("plans");
        let serial = ops::execute_plan(&plan, &db).expect("serial runs");
        for workers in WORKER_GRID {
            let ctx = ParallelCtx::serial()
                .with_workers(workers)
                .with_morsel_rows(128)
                .with_min_rows_per_worker(0);
            let fused = execute_plan_fused(&plan, &db, ctx).expect("fused runs");
            assert_eq!(serial, fused, "{} diverged at {workers} workers", q.name());
            assert_eq!(serial.checksum(), fused.checksum());
        }
    }
}

/// TPC-H subset through the fusion pass, same guarantee.
#[test]
fn full_tpch_plans_are_identical_fused_vs_serial() {
    use robustq::storage::gen::tpch::TpchGenerator;
    use robustq::workloads::TpchQuery;

    let db = TpchGenerator::new(1).with_rows_per_sf(1_000).generate();
    for q in TpchQuery::ALL {
        let plan = q.plan();
        let serial = ops::execute_plan(&plan, &db).expect("serial runs");
        for workers in WORKER_GRID {
            let ctx = ParallelCtx::serial()
                .with_workers(workers)
                .with_morsel_rows(128)
                .with_min_rows_per_worker(0);
            let fused = execute_plan_fused(&plan, &db, ctx).expect("fused runs");
            assert_eq!(serial, fused, "{} diverged at {workers} workers", q.name());
        }
    }
}
