//! Golden pin of the default 1-CPU/1-GPU topology.
//!
//! The N-device topology refactor must be behavior-preserving at K = 1:
//! the default configuration has to reproduce the pre-refactor metrics,
//! query outcomes and Chrome trace stream *byte-identically*. This test
//! fingerprints a traced reference run (metrics debug representation,
//! outcome debug representation, event count and an FNV-1a hash of the
//! exported Chrome JSON) against a fixture captured on the pre-refactor
//! tree.
//!
//! Re-bless (only for an intentional behavior change):
//! `ROBUSTQ_BLESS=1 cargo test --test topology_golden`

use robustq::core::Strategy;
use robustq::sim::SimConfig;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::workloads::{ssb, RunnerConfig, WorkloadRunner};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_k1.txt"
);

/// FNV-1a over the raw bytes: any byte-level drift in the exported
/// trace document changes the fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fingerprint() -> String {
    let db = SsbGenerator::new(1).with_rows_per_sf(1_000).generate();
    let queries = ssb::workload(&db).expect("SSB plans");
    let sim = SimConfig::default().with_gpu_memory(512 * 1024).with_gpu_cache(256 * 1024);
    let runner = WorkloadRunner::new(&db, sim);

    let mut out = String::new();
    for strategy in [Strategy::GpuPreferred, Strategy::DataDrivenChopping] {
        let cfg = RunnerConfig::default().with_users(2).with_trace();
        let report = runner.run(&queries, strategy, &cfg).expect("golden run");
        let trace = report.trace.as_ref().expect("traced run records events");
        let chrome = report.chrome_trace().expect("traced run exports");
        out.push_str(&format!("strategy: {}\n", strategy.name()));
        out.push_str(&format!("metrics: {:?}\n", report.metrics));
        out.push_str(&format!("outcomes: {:#018x}\n", fnv64(format!("{:?}", report.outcomes).as_bytes())));
        out.push_str(&format!("events: {}\n", trace.events.len()));
        out.push_str(&format!("chrome_fnv64: {:#018x}\n", fnv64(chrome.as_bytes())));
    }
    out
}

#[test]
fn default_topology_is_byte_identical_to_prerefactor_baseline() {
    let got = fingerprint();
    if std::env::var("ROBUSTQ_BLESS").is_ok() {
        std::fs::create_dir_all(
            std::path::Path::new(FIXTURE).parent().expect("fixture dir"),
        )
        .expect("create fixture dir");
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing — run with ROBUSTQ_BLESS=1 to capture");
    assert_eq!(
        got, want,
        "default 1-CPU/1-GPU run drifted from the pre-refactor baseline"
    );
}
