//! SQL front end against hand-built plans and hand-computed answers.

use robustq::engine::expr::Expr;
use robustq::engine::ops;
use robustq::engine::plan::{AggSpec, PlanNode};
use robustq::engine::predicate::{CmpOp, Predicate};
use robustq::sql::plan_sql;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::{ColumnData, Database};

fn db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(3_000).generate()
}

#[test]
fn sql_matches_hand_built_plan() {
    let db = db();
    let sql_plan = plan_sql(
        "select sum(lo_revenue) as revenue from lineorder, date \
         where lo_orderdate = d_datekey and d_year = 1995 \
         and lo_quantity < 10",
        &db,
    )
    .expect("plans");
    let hand = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"])
        .filter(Predicate::cmp("lo_quantity", CmpOp::Lt, 10))
        .join(
            PlanNode::scan("date", ["d_datekey"]).filter(Predicate::eq("d_year", 1995)),
            "lo_orderdate",
            "d_datekey",
        )
        .aggregate(
            [] as [&str; 0],
            vec![AggSpec::sum(Expr::col("lo_revenue"), "revenue")],
        );
    let a = ops::execute_plan(&sql_plan, &db).expect("sql executes");
    let b = ops::execute_plan(&hand, &db).expect("hand plan executes");
    assert_eq!(a.num_rows(), 1);
    let (x, y) = (a.row(0)[0].as_f64().unwrap(), b.row(0)[0].as_f64().unwrap());
    assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
}

#[test]
fn sql_aggregate_matches_manual_loop() {
    let db = db();
    let out = ops::execute_plan(
        &plan_sql(
            "select count(*) as n, sum(lo_quantity) as q, min(lo_quantity) as lo, \
             max(lo_quantity) as hi, avg(lo_quantity) as mean \
             from lineorder where lo_discount = 5",
            &db,
        )
        .expect("plans"),
        &db,
    )
    .expect("executes");

    let lo = db.table("lineorder").unwrap();
    let (disc, qty) = (
        lo.column("lo_discount").unwrap(),
        lo.column("lo_quantity").unwrap(),
    );
    let mut n = 0i64;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for i in 0..lo.num_rows() {
        if disc.get_f64(i) == 5.0 {
            let q = qty.get_f64(i);
            n += 1;
            sum += q;
            min = min.min(q);
            max = max.max(q);
        }
    }
    let row = out.row(0);
    assert_eq!(row[0].as_i64().unwrap(), n);
    assert_eq!(row[1].as_f64().unwrap(), sum);
    assert_eq!(row[2].as_f64().unwrap(), min);
    assert_eq!(row[3].as_f64().unwrap(), max);
    assert!((row[4].as_f64().unwrap() - sum / n as f64).abs() < 1e-9);
}

#[test]
fn join_ordering_does_not_change_results() {
    let db = db();
    // Same query, FROM clauses permuted: the Selinger DP may pick
    // different orders, results must match.
    let variants = [
        "select c_nation, sum(lo_revenue) as r from customer, lineorder, supplier \
         where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
         and s_region = 'ASIA' group by c_nation order by c_nation",
        "select c_nation, sum(lo_revenue) as r from supplier, customer, lineorder \
         where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
         and s_region = 'ASIA' group by c_nation order by c_nation",
        "select c_nation, sum(lo_revenue) as r from lineorder, supplier, customer \
         where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
         and s_region = 'ASIA' group by c_nation order by c_nation",
    ];
    let results: Vec<_> = variants
        .iter()
        .map(|sql| {
            ops::execute_plan(&plan_sql(sql, &db).expect("plans"), &db).expect("runs")
        })
        .collect();
    for r in &results[1..] {
        assert_eq!(r.checksum(), results[0].checksum());
        assert_eq!(r.num_rows(), results[0].num_rows());
    }
}

#[test]
fn string_predicates_match_generator_distributions() {
    let db = db();
    let regions = ops::execute_plan(
        &plan_sql(
            "select c_region, count(*) as n from customer group by c_region",
            &db,
        )
        .expect("plans"),
        &db,
    )
    .expect("runs");
    assert_eq!(regions.num_rows(), 5, "five TPC-H regions");
    let total: i64 = (0..5).map(|i| regions.row(i)[1].as_i64().unwrap()).sum();
    assert_eq!(total as usize, db.table("customer").unwrap().num_rows());
}

#[test]
fn dictionary_predicates_survive_joins() {
    let db = db();
    let out = ops::execute_plan(
        &plan_sql(
            "select s_city, count(*) as n from lineorder, supplier \
             where lo_suppkey = s_suppkey and s_nation = 'UNITED KINGDOM' \
             group by s_city order by s_city",
            &db,
        )
        .expect("plans"),
        &db,
    )
    .expect("runs");
    for i in 0..out.num_rows() {
        let city = out.row(i)[0].to_string();
        assert!(city.starts_with("UNITED KI"), "unexpected city {city}");
    }
    // Cross-check the total against the raw data.
    let lo = db.table("lineorder").unwrap();
    let supp = db.table("supplier").unwrap();
    let uk: std::collections::HashSet<i32> = match (
        supp.column("s_suppkey").unwrap(),
        supp.column("s_nation").unwrap(),
    ) {
        (ColumnData::Int32(keys), ColumnData::Str(nat)) => keys
            .iter()
            .enumerate()
            .filter(|&(i, _)| nat.get(i) == "UNITED KINGDOM")
            .map(|(_, &k)| k)
            .collect(),
        _ => panic!("unexpected column types"),
    };
    let expected = match lo.column("lo_suppkey").unwrap() {
        ColumnData::Int32(v) => v.iter().filter(|k| uk.contains(k)).count() as i64,
        _ => panic!("unexpected column type"),
    };
    let total: i64 = (0..out.num_rows()).map(|i| out.row(i)[1].as_i64().unwrap()).sum();
    assert_eq!(total, expected);
}
