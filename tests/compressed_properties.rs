//! Property tests: compressed-domain selection is **byte-identical** to
//! decompress-then-execute.
//!
//! The compressed kernels (DESIGN.md §14) evaluate predicates directly on
//! RLE runs, dictionary codes and FOR+bit-packed payloads. These tests
//! pin the equivalence across:
//!
//! * all three encodings (plus the raw fallback), driven through the
//!   automatic codec chooser with data shapes that force each codec;
//! * every comparison operator, `BETWEEN`, `IN`, and `AND`/`OR`/`NOT`
//!   combinations (the packed-literal, truth-table, streaming and
//!   decompress paths all get exercised);
//! * edge cases: empty columns, all-match / none-match predicates,
//!   single-run columns, fractional and out-of-range literals.
//!
//! Errors must match too: a predicate that fails on the decompressed
//! column (type mismatch, NaN comparison) must fail with the same string
//! in the compressed domain.

use proptest::prelude::*;
use robustq::engine::ops::compressed::{exec_path, select_compressed, ExecPath};
use robustq::engine::ops::select::select;
use robustq::engine::predicate::{CmpOp, Predicate};
use robustq::engine::Chunk;
use robustq::storage::{ColumnData, CompressedColumn, DataType, DictColumn, Field};

const COL: &str = "c";

fn dtype_of(col: &ColumnData) -> DataType {
    match col {
        ColumnData::Int32(_) => DataType::Int32,
        ColumnData::Int64(_) => DataType::Int64,
        ColumnData::Float64(_) => DataType::Float64,
        ColumnData::Str(_) => DataType::Str,
    }
}

/// Decompress-then-execute reference: positions on success, the error
/// string on failure.
fn reference(col: &CompressedColumn, pred: &Predicate) -> Result<Vec<u32>, String> {
    let dec = col.decompress();
    let chunk = Chunk::new(vec![Field::new(COL, dtype_of(&dec))], vec![dec]);
    let sel = pred.evaluate_selvec(&chunk, None)?;
    // Cross-check against the materializing kernel while we are here.
    let filtered = select(&chunk, pred)?;
    assert_eq!(filtered.num_rows(), sel.len());
    Ok(sel.positions().to_vec())
}

/// The equivalence under test.
fn assert_identical(col: &CompressedColumn, pred: &Predicate) {
    let want = reference(col, pred);
    let got = select_compressed(col, COL, pred).map(|s| s.positions);
    match (&want, &got) {
        (Ok(w), Ok(g)) => assert_eq!(
            w,
            g,
            "positions diverge (codec {}, path {:?})",
            col.codec(),
            exec_path(col, COL, pred)
        ),
        (Err(w), Err(g)) => assert_eq!(w, g, "error strings diverge"),
        _ => panic!(
            "outcome diverges: reference {want:?} vs compressed {got:?} \
             (codec {}, path {:?})",
            col.codec(),
            exec_path(col, COL, pred)
        ),
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Integer columns biased so the chooser lands on each codec: long runs
/// (RLE), a narrow value range (FOR+bit-pack), or full-range noise (raw).
fn int_column() -> impl Strategy<Value = ColumnData> {
    prop_oneof![
        // runs
        prop::collection::vec((-60i32..60, 1usize..30), 0..20).prop_map(|runs| {
            let mut v = Vec::new();
            for (val, len) in runs {
                v.extend(std::iter::repeat_n(val, len));
            }
            ColumnData::Int32(v)
        }),
        // narrow range incl. negatives
        prop::collection::vec(-50i32..50, 0..400).prop_map(ColumnData::Int32),
        // full range
        prop::collection::vec(i32::MIN..i32::MAX, 0..100).prop_map(ColumnData::Int32),
        // Int64 narrow range
        prop::collection::vec(-1000i64..1000, 0..300).prop_map(ColumnData::Int64),
    ]
}

fn float_column() -> impl Strategy<Value = ColumnData> {
    prop_oneof![
        // constant runs -> RLE
        prop::collection::vec((-4i32..4, 1usize..40), 0..10).prop_map(|runs| {
            let mut v = Vec::new();
            for (val, len) in runs {
                v.extend(std::iter::repeat_n(val as f64 * 0.5, len));
            }
            ColumnData::Float64(v)
        }),
        // noise -> raw
        prop::collection::vec((-1_000_000i64..1_000_000, 0i64..1000), 0..120).prop_map(
            |parts| {
                ColumnData::Float64(
                    parts
                        .into_iter()
                        .map(|(whole, frac)| whole as f64 + frac as f64 / 1000.0)
                        .collect(),
                )
            }
        ),
    ]
}

const POOL: [&str; 6] = ["ASIA", "EUROPE", "AMERICA", "AFRICA", "x", ""];

fn str_column() -> impl Strategy<Value = ColumnData> {
    prop::collection::vec(0usize..POOL.len(), 0..300).prop_map(|idx| {
        ColumnData::Str(DictColumn::from_strings(idx.into_iter().map(|i| POOL[i])))
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Numeric literals: in-range integers, fractional values, and extremes
/// outside any generated frame.
fn num_literal() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-70i32..70).prop_map(|v| v as f64),
        (-70i32..70).prop_map(|v| v as f64 + 0.5),
        Just(1e18),
        Just(-1e18),
        Just(0.0),
    ]
}

fn num_leaf() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (cmp_op(), num_literal())
            .prop_map(|(op, v)| Predicate::cmp(COL, op, v)),
        (num_literal(), num_literal())
            .prop_map(|(lo, hi)| Predicate::between(COL, lo, hi)),
        prop::collection::vec(num_literal(), 0..4)
            .prop_map(|vs| Predicate::in_list(COL, vs)),
    ]
}

fn num_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        num_leaf(),
        prop::collection::vec(num_leaf(), 1..3).prop_map(Predicate::and),
        prop::collection::vec(num_leaf(), 1..3).prop_map(Predicate::or),
        num_leaf().prop_map(|p| Predicate::Not(Box::new(p))),
        (num_leaf(), num_leaf(), num_leaf()).prop_map(|(a, b, c)| {
            Predicate::and([a, Predicate::or([b, Predicate::Not(Box::new(c))])])
        }),
    ]
}

fn str_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (cmp_op(), 0usize..POOL.len())
            .prop_map(|(op, i)| Predicate::cmp(COL, op, POOL[i])),
        (0usize..POOL.len(), 0usize..POOL.len()).prop_map(|(a, b)| {
            Predicate::between(COL, POOL[a.min(b)], POOL[a.max(b)])
        }),
        prop::collection::vec(0usize..POOL.len(), 0..3)
            .prop_map(|is| Predicate::in_list(COL, is.into_iter().map(|i| POOL[i]))),
        prop::sample::select(vec!["A", "E", "AS", "", "x", "Z"]).prop_map(|p| {
            Predicate::StrPrefix { column: COL.into(), prefix: p.to_string() }
        }),
        // type-mismatch: numeric literal against the string column must
        // produce the identical error
        num_leaf(),
    ]
}

proptest! {
    #[test]
    fn int_columns_match_reference(col in int_column(), pred in num_predicate()) {
        assert_identical(&CompressedColumn::compress(&col), &pred);
    }

    #[test]
    fn float_columns_match_reference(col in float_column(), pred in num_predicate()) {
        assert_identical(&CompressedColumn::compress(&col), &pred);
    }

    #[test]
    fn str_columns_match_reference(col in str_column(), pred in str_predicate()) {
        assert_identical(&CompressedColumn::compress(&col), &pred);
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

#[test]
fn empty_columns_every_encoding() {
    for col in [
        ColumnData::Int32(vec![]),
        ColumnData::Float64(vec![]),
        ColumnData::Str(DictColumn::from_strings(Vec::<String>::new())),
    ] {
        let c = CompressedColumn::compress(&col);
        let got = select_compressed(&c, COL, &Predicate::eq(COL, 1)).ok();
        // Numeric Eq on the empty string column is a compile error in
        // both worlds; on numeric columns both return no rows.
        assert_identical(&c, &Predicate::True);
        if let Some(s) = got {
            assert!(s.positions.is_empty());
        }
    }
}

#[test]
fn single_run_column_all_and_none_match() {
    let c = CompressedColumn::compress(&ColumnData::Int32(vec![7; 5_000]));
    assert_eq!(c.codec(), "rle");
    let all = select_compressed(&c, COL, &Predicate::eq(COL, 7)).unwrap();
    assert_eq!(all.positions.len(), 5_000);
    assert_eq!(all.spans.as_deref(), Some(&[(0u32, 5_000u32)][..]));
    let none = select_compressed(&c, COL, &Predicate::eq(COL, 8)).unwrap();
    assert!(none.positions.is_empty());
    assert_identical(&c, &Predicate::cmp(COL, CmpOp::Ge, 7));
}

#[test]
fn all_match_predicates_cover_every_row() {
    let cols = [
        ColumnData::Int32((0..3_000).map(|i| i % 30).collect()),
        ColumnData::Int32((0..3_000).map(|i| i / 300).collect()),
    ];
    for col in cols {
        let c = CompressedColumn::compress(&col);
        let got =
            select_compressed(&c, COL, &Predicate::between(COL, -100, 100)).unwrap();
        assert_eq!(got.positions.len(), 3_000);
        assert_identical(&c, &Predicate::between(COL, -100, 100));
    }
}

#[test]
fn nan_comparisons_error_identically() {
    // NaN literal against packed ints: the streaming path must raise the
    // same per-row error the scalar path raises.
    let c = CompressedColumn::compress(&ColumnData::Int32((0..100).map(|i| i % 9).collect()));
    let pred = Predicate::cmp(COL, CmpOp::Lt, f64::NAN);
    assert_identical(&c, &pred);
    // NaN data in an RLE float column.
    let mut v = vec![1.5f64; 200];
    v[150] = f64::NAN;
    let c = CompressedColumn::compress(&ColumnData::Float64(v));
    assert_identical(&c, &Predicate::cmp(COL, CmpOp::Gt, 1.0));
}

#[test]
fn unknown_column_errors_identically() {
    let c = CompressedColumn::compress(&ColumnData::Int32((0..50).collect()));
    assert_identical(&c, &Predicate::eq("zz", 1));
}

#[test]
fn fallback_paths_report_decompress() {
    let raw = CompressedColumn::compress(&ColumnData::Float64(
        (0..500).map(|i| (i as f64 - 250.0) * (i as f64).sqrt()).collect(),
    ));
    assert_eq!(raw.codec(), "raw");
    assert_eq!(
        exec_path(&raw, COL, &Predicate::eq(COL, 0.0)),
        ExecPath::Decompress
    );
    assert_identical(&raw, &Predicate::cmp(COL, CmpOp::Gt, 100.0));
}
