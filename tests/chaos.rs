//! Chaos/differential tests for the fault-injection subsystem
//! (DESIGN.md §8): hundreds of seeded fault plans are thrown at full
//! workload runs, and after every run the harness asserts that
//!
//!  1. query results are bit-identical to the fault-free run — faults
//!     change timing and placement, never answers;
//!  2. resource accounting balances: no co-processor heap bytes leak
//!     past the drain, and the executor's transfer metrics agree with
//!     the interconnect's own statistics;
//!  3. the fault metrics are internally consistent: the executor's
//!     injection count matches the plan's, retries never exceed the
//!     transient faults that caused them, aborts cover fallbacks, and
//!     wasted time stays within total device time.
//!
//! The per-event invariants (heap/cache byte conservation, link FIFO
//! sanity) are additionally asserted after *every* simulator event by
//! the executor's debug-build audit hook, which these tests exercise
//! across every seed.

use std::collections::BTreeMap;

use robustq::core::Strategy;
use robustq::sim::{FaultPlan, FaultSpec, SimConfig, VirtualTime};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::storage::Database;
use robustq::workloads::{micro, ssb, RunReport, RunnerConfig, WorkloadRunner};

/// Seeds per workload; two workloads give ≥ 200 fault plans total.
const SEEDS_PER_WORKLOAD: u64 = 100;

fn db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(1_000).generate()
}

/// A tight machine: small heap and cache so organic aborts mix with
/// injected ones.
fn tight_sim() -> SimConfig {
    SimConfig::default().with_gpu_memory(512 * 1024).with_gpu_cache(256 * 1024)
}

/// One of five fault-model shapes, cycled over the seed range so the
/// sweep covers allocation faults, transfer faults, kernel aborts,
/// stalls and a mixed plan.
fn spec_for(seed: u64, horizon: VirtualTime) -> FaultSpec {
    let mut spec = FaultSpec::default();
    match seed % 5 {
        0 => spec.alloc_fail_prob = 0.25,
        1 => {
            spec.transfer_transient_prob = 0.15;
            spec.transfer_permanent_prob = 0.05;
            spec.transfer_spike_prob = 0.10;
            spec.transfer_spike_factor = 5.0;
        }
        2 => spec.kernel_abort_prob = 0.25,
        3 => {
            spec.random_stalls = 4;
            spec.stall_horizon = horizon;
            spec.stall_len = (
                VirtualTime::from_nanos(1 + horizon.as_nanos() / 50),
                VirtualTime::from_nanos(1 + horizon.as_nanos() / 10),
            );
        }
        _ => {
            spec.alloc_fail_prob = 0.05;
            spec.alloc_fail_stages = vec![2];
            spec.transfer_transient_prob = 0.05;
            spec.transfer_spike_prob = 0.05;
            spec.transfer_spike_factor = 3.0;
            spec.kernel_abort_prob = 0.05;
            spec.random_stalls = 1;
            spec.stall_horizon = horizon;
            spec.stall_len =
                (VirtualTime::from_nanos(1 + horizon.as_nanos() / 20), VirtualTime::ZERO);
        }
    }
    spec
}

type BaselineMap = BTreeMap<(usize, usize), (usize, u64)>;

fn baseline_map(report: &RunReport) -> BaselineMap {
    report
        .outcomes
        .iter()
        .map(|o| ((o.session, o.seq), (o.rows, o.checksum)))
        .collect()
}

/// Every invariant the chaos harness checks after a faulty run.
fn assert_invariants(report: &RunReport, baseline: &BaselineMap, label: &str) {
    let m = &report.metrics;

    // (1) Differential: identical results per (session, seq).
    assert_eq!(report.outcomes.len(), baseline.len(), "{label}: outcome count");
    for o in &report.outcomes {
        let &(rows, checksum) = baseline
            .get(&(o.session, o.seq))
            .unwrap_or_else(|| panic!("{label}: unknown slot ({}, {})", o.session, o.seq));
        assert_eq!(o.rows, rows, "{label}: ({}, {}) row count drifted", o.session, o.seq);
        assert_eq!(
            o.checksum, checksum,
            "{label}: ({}, {}) result drifted under faults",
            o.session, o.seq
        );
    }

    // (2) Conservation: the heap drained, and the executor's transfer
    // accounting agrees byte-for-byte with the link's own statistics.
    assert_eq!(m.gpu_heap_leaked, 0, "{label}: co-processor heap leaked bytes");
    assert_eq!(m.h2d_bytes, m.link_h2d.bytes, "{label}: H2D byte accounting split");
    assert_eq!(m.d2h_bytes, m.link_d2h.bytes, "{label}: D2H byte accounting split");
    assert_eq!(m.h2d_time, m.link_h2d.busy_time, "{label}: H2D time accounting split");
    assert_eq!(m.d2h_time, m.link_d2h.busy_time, "{label}: D2H time accounting split");

    // (3) Fault-metric consistency.
    assert_eq!(
        m.faults.injected, m.fault_stats.injected,
        "{label}: executor and plan disagree on injections"
    );
    assert!(
        m.faults.retries <= m.fault_stats.transfer_transient,
        "{label}: more retries than transient faults"
    );
    assert!(m.aborts >= m.faults.fallbacks, "{label}: fallbacks without aborts");
    assert!(
        m.wasted_time <= m.total_device_time(),
        "{label}: wasted time exceeds total device time"
    );
    if m.faults.injected == 0 {
        assert_eq!(
            m.faults.injected_wasted,
            VirtualTime::ZERO,
            "{label}: injected waste without injections"
        );
    }

    // Per-query counters can never exceed the run totals (placement
    // transfers are counted at run level only).
    let mut q = robustq::engine::exec::metrics::FaultCounters::default();
    for o in &report.outcomes {
        q.absorb(&o.faults);
    }
    assert!(q.injected <= m.faults.injected, "{label}: per-query injected overflow");
    assert!(q.retries <= m.faults.retries, "{label}: per-query retries overflow");
    assert!(q.fallbacks <= m.faults.fallbacks, "{label}: per-query fallbacks overflow");
    assert!(
        q.injected_wasted <= m.faults.injected_wasted,
        "{label}: per-query waste overflow"
    );
}

/// Sweep `SEEDS_PER_WORKLOAD` fault plans over one workload and return
/// the total number of injections observed (for vacuity checks).
fn chaos_sweep(
    db: &Database,
    queries: &[robustq::engine::plan::PlanNode],
    users: usize,
    base_seed: u64,
    label: &str,
) -> u64 {
    let runner = WorkloadRunner::new(db, tight_sim());
    let cfg = RunnerConfig::default().with_users(users);
    let baseline =
        runner.run(queries, Strategy::GpuPreferred, &cfg).expect("fault-free baseline");
    let map = baseline_map(&baseline);
    let horizon = baseline.metrics.makespan.max(VirtualTime::from_micros(1));

    let mut injected_total = 0;
    for i in 0..SEEDS_PER_WORKLOAD {
        let seed = base_seed + i;
        let plan = FaultPlan::new(seed, spec_for(seed, horizon));
        let cfg = RunnerConfig::default().with_users(users).with_fault_plan(plan);
        let report = runner
            .run(queries, Strategy::GpuPreferred, &cfg)
            .unwrap_or_else(|e| panic!("{label}: seed {seed} failed: {e}"));
        assert_invariants(&report, &map, &format!("{label} seed {seed}"));
        injected_total += report.metrics.faults.injected;
    }
    injected_total
}

#[test]
fn chaos_ssb_workload() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let injected = chaos_sweep(&db, &queries, 2, 0, "ssb");
    assert!(injected > 0, "the SSB sweep never injected a fault — vacuous chaos test");
}

#[test]
fn chaos_micro_workload() {
    let db = db();
    let queries = micro::parallel_selection_workload(12);
    let injected = chaos_sweep(&db, &queries, 4, 10_000, "micro");
    assert!(injected > 0, "the micro sweep never injected a fault — vacuous chaos test");
}

/// The sweep must exercise the recovery paths, not just clean runs:
/// across a few seeds of the mixed/transfer shapes there are retries
/// and injected fallbacks.
#[test]
fn chaos_recovery_paths_are_exercised() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, tight_sim());
    let mut retries = 0;
    let mut fallbacks = 0;
    let mut wasted = VirtualTime::ZERO;
    for seed in [1u64, 6, 11, 2, 7, 12, 4, 9, 14] {
        let plan = FaultPlan::new(seed, spec_for(seed, VirtualTime::from_millis(10)));
        let cfg = RunnerConfig::default().with_users(2).with_fault_plan(plan);
        let report = runner.run(&queries, Strategy::GpuPreferred, &cfg).expect("runs");
        retries += report.metrics.faults.retries;
        fallbacks += report.metrics.faults.fallbacks;
        wasted += report.metrics.faults.injected_wasted;
    }
    assert!(retries > 0, "no transient fault was ever retried");
    assert!(fallbacks > 0, "no operator ever fell back to the CPU");
    assert!(wasted > VirtualTime::ZERO, "injections never cost any virtual time");
}

/// With the fault layer disabled the run is *byte-identical* to one
/// without any fault plumbing: identical metrics (including the debug
/// representation) and identical outcomes. This is the zero-cost-when-
/// disabled guarantee — the fault layer must not perturb the golden
/// figures.
#[test]
fn empty_fault_plan_is_byte_identical() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, tight_sim());
    let plain = RunnerConfig::default().with_users(2);
    let with_disabled_plan =
        RunnerConfig::default().with_users(2).with_fault_plan(FaultPlan::disabled());
    // A plan with a default (all-zero) spec must also behave as a no-op.
    let with_null_plan = RunnerConfig::default()
        .with_users(2)
        .with_fault_plan(FaultPlan::new(42, FaultSpec::default()));

    let a = runner.run(&queries, Strategy::GpuPreferred, &plain).expect("plain");
    for cfg in [&with_disabled_plan, &with_null_plan] {
        let b = runner.run(&queries, Strategy::GpuPreferred, cfg).expect("faultless plan");
        assert_eq!(
            format!("{:?}", a.metrics),
            format!("{:?}", b.metrics),
            "a no-op fault plan changed the run metrics"
        );
        assert_eq!(
            format!("{:?}", a.outcomes),
            format!("{:?}", b.outcomes),
            "a no-op fault plan changed the outcomes"
        );
    }
}
