//! Adaptive cost model + chunked staging invariants (DESIGN.md §15).
//!
//! The small-heap regime these tests run in is the `multigpu --adaptive`
//! sweep's: a co-processor heap of 128 KiB (memory minus cache), small
//! enough that the SSB fact-table joins' working footprints exceed it.
//! Under that pressure the tests pin:
//!
//!  1. **Online refinement pays** — under the adaptive model, the
//!     median est-vs-actual relative error over the *last* quartile of
//!     a run's model samples never exceeds the first quartile's (the
//!     EWMA converges onto the contended span durations), across seeds;
//!  2. **Virtual-time determinism** — the sample stream (and therefore
//!     everything learned from it) is byte-identical across real-CPU
//!     worker counts;
//!  3. **Staging completes oversized operators on-device** — with
//!     chunked staging on, operators whose footprint exceeds the heap
//!     execute in chunks instead of aborting to the CPU, without
//!     changing any query result;
//!  4. **Staging conserves resources under faults** — seeded fault
//!     plans interrupting partial chunk sequences still drain every
//!     heap byte, keep the executor's transfer accounting in agreement
//!     with the interconnect's, and never change answers.

use std::collections::BTreeMap;

use proptest::prelude::*;
use robustq::core::Strategy;
use robustq::engine::parallel::ParallelCtx;
use robustq::prelude::*;
use robustq::sim::{FaultSpec, OpClass};
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::workloads::ssb;

fn db() -> Database {
    // The sweep's row count: at 1 000 rows the fact-table joins fit the
    // 128 KiB heap and nothing stages.
    SsbGenerator::new(1).with_rows_per_sf(8_000).generate()
}

/// The §15 regime: heap = memory − cache = 128 KiB.
fn small_heap_sim() -> SimConfig {
    SimConfig::default().with_gpu_memory(384 * 1024).with_gpu_cache(256 * 1024)
}

fn fingerprints(report: &RunReport) -> BTreeMap<(usize, usize), (usize, u64)> {
    report
        .outcomes
        .iter()
        .map(|o| ((o.session, o.seq), (o.rows, o.checksum)))
        .collect()
}

/// Median est-vs-actual relative error over a sample slice.
fn median_err(samples: &[ModelUpdate]) -> f64 {
    assert!(!samples.is_empty(), "quartile has samples");
    let mut errs: Vec<f64> =
        samples.iter().map(ModelUpdate::relative_error).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    errs[errs.len() / 2]
}

fn adaptive_run(db: &Database, seed: u64, workers: usize) -> RunReport {
    // Cycle the SSB flight list so the sample stream is stationary: a
    // single pass front-loads the cheap selections and ends on the
    // 4-way joins, which would conflate workload phase with model
    // convergence. Over repeated passes the quartiles see the same
    // query mix and the quartile comparison isolates learning.
    let flight = ssb::workload(db).expect("SSB plans");
    let queries: Vec<_> =
        std::iter::repeat_with(|| flight.clone()).take(4).flatten().collect();
    let runner = WorkloadRunner::new(db, small_heap_sim());
    // Cold start: with warm-up on, the model enters the measured run
    // already converged and the first quartile has nothing left to
    // improve on.
    let cfg = RunnerConfig::default()
        .cold_cache()
        .with_users(2)
        .with_parallel(ParallelCtx::serial().with_workers(workers))
        .with_cost_model(CostModelKind::Adaptive { seed })
        .with_chunked_staging();
    runner.run(&queries, Strategy::Chopping, &cfg).expect("adaptive run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Invariants 1 + 2, per adaptive seed: the last quartile's median
    /// error never exceeds the first's, and the sample stream is
    /// identical at 1 and 4 workers.
    #[test]
    fn adaptive_error_shrinks_and_is_worker_invariant(seed in 0u64..1_000) {
        let db = db();
        let report = adaptive_run(&db, seed, 1);
        let samples = &report.model_samples;
        prop_assert!(
            samples.len() >= 8,
            "run records enough samples to quarter ({})",
            samples.len()
        );
        let q = samples.len() / 4;
        let first = median_err(&samples[..q]);
        let last = median_err(&samples[samples.len() - q..]);
        prop_assert!(
            last <= first + 1e-12,
            "median error grew over the run: first quartile {first:.4}, \
             last quartile {last:.4} (seed {seed})"
        );

        let wide = adaptive_run(&db, seed, 4);
        prop_assert_eq!(
            wide.model_samples.len(),
            samples.len(),
            "worker count changed the sample count"
        );
        for (a, b) in samples.iter().zip(&wide.model_samples) {
            prop_assert!(
                a.class == b.class
                    && a.device == b.device
                    && a.predicted == b.predicted
                    && a.actual == b.actual
                    && a.refined == b.refined,
                "sample diverged across worker counts: {a:?} vs {b:?}"
            );
        }
        prop_assert_eq!(fingerprints(&report), fingerprints(&wide));
    }
}

/// Invariant 3: on the small heap, GPU-preferred placement without
/// staging aborts over-heap operators to the CPU; with staging they
/// complete on-device in chunks — more device residency, same answers.
#[test]
fn staging_completes_oversized_operators_on_device() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, small_heap_sim());

    let base_cfg = RunnerConfig::default().with_users(4);
    let unstaged =
        runner.run(&queries, Strategy::GpuPreferred, &base_cfg).expect("unstaged");
    assert_eq!(unstaged.staging, StagingStats::default(), "staging off by default");
    assert!(
        unstaged.metrics.aborts > 0,
        "regime sanity: the small heap must force over-heap aborts"
    );

    let staged_cfg = RunnerConfig::default().with_users(4).with_chunked_staging();
    let staged =
        runner.run(&queries, Strategy::GpuPreferred, &staged_cfg).expect("staged");
    assert!(staged.staging.staged_ops > 0, "over-heap operators staged");
    assert!(
        staged.staging.staged_chunks >= 2 * staged.staging.staged_ops,
        "staged operators split into multiple chunks ({} chunks / {} ops)",
        staged.staging.staged_chunks,
        staged.staging.staged_ops
    );
    assert_eq!(
        staged.staging.oversize_fallbacks, 0,
        "every over-heap operator fit chunk-wise"
    );
    assert!(
        staged.metrics.aborts < unstaged.metrics.aborts,
        "staging must absorb aborts: {} staged vs {} unstaged",
        staged.metrics.aborts,
        unstaged.metrics.aborts
    );
    assert_eq!(
        fingerprints(&staged),
        fingerprints(&unstaged),
        "staging moved work, never changed answers"
    );
}

/// Invariant 4: chunk sequences interrupted mid-flight by fault
/// injection still conserve heap and link accounting and reproduce the
/// fault-free results.
#[test]
fn staging_conserves_resources_under_faults() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, small_heap_sim());
    let cfg = RunnerConfig::default().with_users(4).with_chunked_staging();
    let baseline =
        runner.run(&queries, Strategy::GpuPreferred, &cfg).expect("fault-free");
    assert!(baseline.staging.staged_ops > 0, "regime sanity: staging active");
    let want = fingerprints(&baseline);

    for seed in 0..40u64 {
        // Transfer and allocation faults land inside chunk sequences
        // (each chunk is an alloc + H2D + kernel + D2H); kernel aborts
        // interrupt the staged execution itself.
        let mut spec = FaultSpec::default();
        match seed % 3 {
            0 => spec.alloc_fail_prob = 0.2,
            1 => {
                spec.transfer_transient_prob = 0.15;
                spec.transfer_spike_prob = 0.10;
                spec.transfer_spike_factor = 4.0;
            }
            _ => {
                spec.kernel_abort_prob = 0.15;
                spec.alloc_fail_prob = 0.05;
                spec.transfer_transient_prob = 0.05;
            }
        }
        let cfg = RunnerConfig::default()
            .with_users(4)
            .with_chunked_staging()
            .with_fault_plan(FaultPlan::new(seed, spec));
        let report = runner
            .run(&queries, Strategy::GpuPreferred, &cfg)
            .expect("faulted staged run");
        let m = &report.metrics;
        assert_eq!(
            fingerprints(&report),
            want,
            "seed {seed}: faults changed staged results"
        );
        assert_eq!(m.gpu_heap_leaked, 0, "seed {seed}: heap bytes leaked");
        assert_eq!(m.h2d_bytes, m.link_h2d.bytes, "seed {seed}: H2D bytes split");
        assert_eq!(m.d2h_bytes, m.link_d2h.bytes, "seed {seed}: D2H bytes split");
        assert_eq!(m.h2d_time, m.link_h2d.busy_time, "seed {seed}: H2D time split");
        assert_eq!(m.d2h_time, m.link_d2h.busy_time, "seed {seed}: D2H time split");
    }
}

/// The sweep's headline comparison, pinned as a test: on the same
/// contended run, the adaptive model's median est-vs-actual error
/// undercuts the static model's (which only ever learns uncontended
/// kernel durations and so systematically underestimates spans).
#[test]
fn adaptive_median_error_beats_static() {
    let db = db();
    let queries = ssb::workload(&db).expect("SSB plans");
    let runner = WorkloadRunner::new(&db, small_heap_sim());

    let run = |kind: CostModelKind| {
        let cfg = RunnerConfig::default().with_users(4).with_cost_model(kind);
        runner.run(&queries, Strategy::Chopping, &cfg).expect("model run")
    };
    let st = run(CostModelKind::Static);
    let ad = run(CostModelKind::Adaptive { seed: 42 });
    assert!(!st.model_samples.is_empty() && !ad.model_samples.is_empty());
    // Static samples never refine; adaptive ones do (zero-work
    // operators aside).
    assert!(st.model_samples.iter().all(|u| !u.refined));
    assert!(ad.model_samples.iter().any(|u| u.refined));
    // Both streams audit real span durations for real operator classes.
    assert!(st
        .model_samples
        .iter()
        .any(|u| u.class == OpClass::HashJoin && u.actual > VirtualTime::ZERO));
    let se = median_err(&st.model_samples);
    let ae = median_err(&ad.model_samples);
    assert!(
        ae < se,
        "adaptive must beat static on median error: adaptive {ae:.4} vs static {se:.4}"
    );
}
