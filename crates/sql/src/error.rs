//! SQL front-end errors.

use std::fmt;

/// Errors from lexing, parsing or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Unexpected character or malformed literal at byte offset.
    Lex {
        /// Byte offset of the problem.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with the offending token description.
    Parse(String),
    /// Name resolution / planning error.
    Plan(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SqlError::Lex { offset: 3, message: "bad char".into() };
        assert!(e.to_string().contains("byte 3"));
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::Plan("y".into()).to_string().contains("planning"));
    }
}
