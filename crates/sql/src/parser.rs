//! Recursive-descent parser for the SPJA subset.
//!
//! Grammar (informal):
//!
//! ```text
//! query     := SELECT items FROM table (, table)*
//!              [WHERE or_expr] [GROUP BY cols] [ORDER BY key (,key)*]
//!              [LIMIT n]
//! items     := * | item (, item)*
//! item      := agg ( arith | * ) [AS ident] | arith [AS ident]
//! or_expr   := and_expr (OR and_expr)*
//! and_expr  := unary (AND unary)*
//! unary     := NOT unary | predicate
//! predicate := arith cmp arith | arith BETWEEN arith AND arith
//!            | arith IN ( literal, … ) | arith LIKE 'pat' | ( or_expr )
//! arith     := term ((+|-) term)*
//! term      := factor ((*|/) factor)*
//! factor    := number | 'string' | ident | ( arith )
//! ```

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), SqlError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_kw("select")?;
        let select = self.select_items()?;
        self.expect_kw("from")?;
        let mut from = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            from.push(self.ident()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.ident()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let column = self.ident()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { column, desc });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!("bad LIMIT value {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(Query { select, from, where_clause, group_by, order_by, limit })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn agg_name(s: &str) -> Option<AggName> {
        match s {
            "sum" => Some(AggName::Sum),
            "count" => Some(AggName::Count),
            "min" => Some(AggName::Min),
            "max" => Some(AggName::Max),
            "avg" => Some(AggName::Avg),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = Self::agg_name(name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let expr = if self.peek() == Some(&Token::Star) {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.arith()?)
                    };
                    self.expect(Token::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg { func, expr, alias });
                }
            }
        }
        let expr = self.arith()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.unary()?;
        while self.eat_kw("and") {
            let right = self.unary()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat_kw("not") {
            return Ok(SqlExpr::Not(Box::new(self.unary()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr, SqlError> {
        // Parenthesized boolean expression: look ahead for a comparison
        // inside; we reuse arith's paren handling for scalars, so here we
        // try boolean parse on '(' by speculative descent.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.or_expr() {
                if self.peek() == Some(&Token::RParen) && is_boolean(&inner) {
                    self.pos += 1;
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let left = self.arith()?;
        if self.eat_kw("between") {
            let lo = self.arith()?;
            self.expect_kw("and")?;
            let hi = self.arith()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        if self.eat_kw("in") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.arith()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                list.push(self.arith()?);
            }
            self.expect(Token::RParen)?;
            return Ok(SqlExpr::InList { expr: Box::new(left), list });
        }
        if self.eat_kw("like") {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(SqlExpr::Like { expr: Box::new(left), pattern })
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )))
                }
            }
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        let right = self.arith()?;
        Ok(SqlExpr::Binary { left: Box::new(left), op, right: Box::new(right) })
    }

    fn arith(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.term()?;
            left = SqlExpr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = SqlExpr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<SqlExpr, SqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(SqlExpr::Number(n)),
            Some(Token::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Token::Ident(s)) => Ok(SqlExpr::Column(s)),
            Some(Token::LParen) => {
                let e = self.arith()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Whether the expression is boolean-valued (comparison/logical).
fn is_boolean(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Binary { op, .. } => op.is_comparison(),
        SqlExpr::Between { .. }
        | SqlExpr::InList { .. }
        | SqlExpr::Like { .. }
        | SqlExpr::And(_, _)
        | SqlExpr::Or(_, _)
        | SqlExpr::Not(_) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_star_query() {
        let q = parse("select * from orders where quantity < 1").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert_eq!(q.from, vec!["orders".to_string()]);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parse_ssb_q11_shape() {
        let q = parse(
            "select sum(lo_extendedprice * lo_discount) as revenue \
             from lineorder, date \
             where lo_orderdate = d_datekey and d_year = 1993 \
             and lo_discount between 1 and 3 and lo_quantity < 25",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        match &q.select[0] {
            SelectItem::Agg { func: AggName::Sum, expr: Some(_), alias: Some(a) } => {
                assert_eq!(a, "revenue");
            }
            other => panic!("unexpected select item {other:?}"),
        }
    }

    #[test]
    fn parse_group_order_limit() {
        let q = parse(
            "select d_year, sum(lo_revenue) from lineorder, date \
             where lo_orderdate = d_datekey \
             group by d_year order by d_year desc, revenue limit 10",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["d_year".to_string()]);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parse_in_and_like() {
        let q = parse(
            "select * from part where p_brand1 in ('A', 'B') and p_type like '%BRASS'",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            SqlExpr::And(a, b) => {
                assert!(matches!(*a, SqlExpr::InList { .. }));
                assert!(matches!(*b, SqlExpr::Like { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_or_with_parens() {
        let q = parse(
            "select * from t where (a = 1 and b = 2) or (a = 2 and b = 1)",
        )
        .unwrap();
        assert!(matches!(q.where_clause.unwrap(), SqlExpr::Or(_, _)));
    }

    #[test]
    fn parse_count_star() {
        let q = parse("select count(*) from t").unwrap();
        match &q.select[0] {
            SelectItem::Agg { func: AggName::Count, expr: None, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("select a + b * c from t").unwrap();
        match &q.select[0] {
            SelectItem::Expr {
                expr: SqlExpr::Binary { op: BinOp::Add, right, .. },
                ..
            } => {
                assert!(matches!(**right, SqlExpr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("select * from t garbage garbage").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse("select *").is_err());
    }

    #[test]
    fn not_predicate() {
        let q = parse("select * from t where not a = 1").unwrap();
        assert!(matches!(q.where_clause.unwrap(), SqlExpr::Not(_)));
    }
}
