//! SQL tokenizer.

use crate::error::SqlError;

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// True if this is the identifier/keyword `kw` (case-insensitive by
    /// construction: identifiers are lower-cased during lexing).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '-' => {
                // Comment `--` to end of line, or minus.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SqlError::Lex {
                        offset: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| SqlError::Lex {
                    offset: start,
                    message: format!("bad number {text}"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("select a, b from t where x >= 1.5").unwrap();
        assert_eq!(t[0], Token::Ident("select".into()));
        assert!(t.contains(&Token::Comma));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Number(1.5)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let t = tokenize("SeLeCt").unwrap();
        assert!(t[0].is_kw("select"));
    }

    #[test]
    fn strings_and_operators() {
        let t = tokenize("name = 'MFGR#12' <> <= <").unwrap();
        assert_eq!(t[2], Token::Str("MFGR#12".into()));
        assert_eq!(t[3], Token::Ne);
        assert_eq!(t[4], Token::Le);
        assert_eq!(t[5], Token::Lt);
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("select -- a comment\n 1").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Token::Number(1.0));
    }

    #[test]
    fn minus_vs_comment() {
        let t = tokenize("1 - 2").unwrap();
        assert_eq!(t, vec![Token::Number(1.0), Token::Minus, Token::Number(2.0)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(matches!(tokenize("a ; b"), Err(SqlError::Lex { offset: 2, .. })));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n").unwrap().is_empty());
    }
}
