//! Parsed query representation.

/// A scalar or boolean SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference (possibly `table.column`).
    Column(String),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Binary arithmetic or comparison.
    Binary {
        /// Left operand.
        left: Box<SqlExpr>,
        /// The operator.
        op: BinOp,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// Inclusive lower bound.
        lo: Box<SqlExpr>,
        /// Inclusive upper bound.
        hi: Box<SqlExpr>,
    },
    /// `expr IN (literal, …)`.
    InList {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// The accepted literals.
        list: Vec<SqlExpr>,
    },
    /// `expr LIKE 'pattern'` (only `x%`, `%x` and `%x%` patterns).
    Like {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// The raw pattern.
        pattern: String,
    },
    /// Logical AND.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical OR.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical NOT.
    Not(Box<SqlExpr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// Scalar expression with optional alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// `agg(expr)` with optional alias; `count(*)` has `expr: None`.
    Agg {
        /// The aggregate function.
        func: AggName,
        /// Its argument (`None` = `*`).
        expr: Option<SqlExpr>,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// Sort direction of one ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Column or output alias to sort by.
    pub column: String,
    /// True for `DESC`.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables.
    pub from: Vec<String>,
    /// WHERE condition, if any.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count, if any.
    pub limit: Option<usize>,
}

impl SqlExpr {
    /// All column names referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<String>) {
        match self {
            SqlExpr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            SqlExpr::Number(_) | SqlExpr::Str(_) => {}
            SqlExpr::Binary { left, right, .. } => {
                left.collect(out);
                right.collect(out);
            }
            SqlExpr::Between { expr, lo, hi } => {
                expr.collect(out);
                lo.collect(out);
                hi.collect(out);
            }
            SqlExpr::InList { expr, list } => {
                expr.collect(out);
                for e in list {
                    e.collect(out);
                }
            }
            SqlExpr::Like { expr, .. } => expr.collect(out),
            SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                a.collect(out);
                b.collect(out);
            }
            SqlExpr::Not(e) => e.collect(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_dedup() {
        let e = SqlExpr::And(
            Box::new(SqlExpr::Binary {
                left: Box::new(SqlExpr::Column("a".into())),
                op: BinOp::Eq,
                right: Box::new(SqlExpr::Column("b".into())),
            }),
            Box::new(SqlExpr::Between {
                expr: Box::new(SqlExpr::Column("a".into())),
                lo: Box::new(SqlExpr::Number(1.0)),
                hi: Box::new(SqlExpr::Number(2.0)),
            }),
        );
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
