//! Name resolution, predicate classification and Selinger-style join
//! ordering.
//!
//! The planner turns a parsed [`Query`] into a physical [`PlanNode`]:
//!
//! 1. every column reference is resolved to exactly one FROM table;
//! 2. the WHERE conjunction is split into *table predicates* (pushed into
//!    scans), *equi-join edges* (`a.x = b.y`) and *residual predicates*
//!    (applied after the joins);
//! 3. join order is chosen by dynamic programming over left-deep plans
//!    (Selinger-style: the enumeration is exact for the connected,
//!    acyclic-ish query graphs of SSB/TPC-H, costed by estimated
//!    intermediate cardinalities from `robustq_engine::estimate`);
//! 4. projections are pushed down so scans only materialize columns used
//!    upstream;
//! 5. grouping/aggregation, final projection, ORDER BY and LIMIT wrap the
//!    join tree.

use crate::ast::{AggName, BinOp, OrderItem, Query, SelectItem, SqlExpr};
use crate::error::SqlError;
use robustq_engine::expr::Expr;
use robustq_engine::plan::{AggFunc, AggSpec, PlanNode, SortKey};
use robustq_engine::predicate::{CmpOp, Predicate};
use robustq_engine::estimate;
use robustq_storage::{Database, Value};
use std::collections::{HashMap, HashSet};

/// Plan `query` against `db`.
pub fn plan(query: &Query, db: &Database) -> Result<PlanNode, SqlError> {
    Planner::new(query, db)?.plan()
}

/// One equi-join edge `tables[a].left = tables[b].right`.
struct JoinEdge {
    a: usize,
    b: usize,
    a_col: String,
    b_col: String,
}

struct Planner<'a> {
    query: &'a Query,
    db: &'a Database,
    tables: Vec<String>,
    /// column name -> table index (unambiguous names only).
    column_owner: HashMap<String, usize>,
    table_preds: Vec<Vec<Predicate>>,
    edges: Vec<JoinEdge>,
    residual: Vec<Predicate>,
}

impl<'a> Planner<'a> {
    fn new(query: &'a Query, db: &'a Database) -> Result<Self, SqlError> {
        let tables = query.from.clone();
        let mut column_owner = HashMap::new();
        let mut seen_twice = HashSet::new();
        for (i, t) in tables.iter().enumerate() {
            let table = db
                .table(t)
                .ok_or_else(|| SqlError::Plan(format!("unknown table {t}")))?;
            for f in table.schema().fields() {
                if column_owner.insert(f.name.clone(), i).is_some() {
                    seen_twice.insert(f.name.clone());
                }
            }
        }
        for c in seen_twice {
            column_owner.remove(&c);
        }
        Ok(Planner {
            query,
            db,
            table_preds: vec![Vec::new(); tables.len()],
            tables,
            column_owner,
            edges: Vec::new(),
            residual: Vec::new(),
        })
    }

    /// Resolve a (possibly `table.column`) reference to (table index,
    /// bare column name).
    fn resolve(&self, name: &str) -> Result<(usize, String), SqlError> {
        if let Some((t, c)) = name.split_once('.') {
            let idx = self
                .tables
                .iter()
                .position(|x| x == t)
                .ok_or_else(|| SqlError::Plan(format!("table {t} not in FROM")))?;
            if self.db.column_id(t, c).is_none() {
                return Err(SqlError::Plan(format!("no column {c} in table {t}")));
            }
            return Ok((idx, c.to_owned()));
        }
        match self.column_owner.get(name) {
            Some(&i) => Ok((i, name.to_owned())),
            None => Err(SqlError::Plan(format!(
                "column {name} is unknown or ambiguous in FROM {:?}",
                self.tables
            ))),
        }
    }

    /// The set of FROM tables an expression touches.
    fn tables_of(&self, e: &SqlExpr) -> Result<HashSet<usize>, SqlError> {
        let mut out = HashSet::new();
        for c in e.referenced_columns() {
            out.insert(self.resolve(&c)?.0);
        }
        Ok(out)
    }

    fn plan(mut self) -> Result<PlanNode, SqlError> {
        if let Some(w) = &self.query.where_clause {
            let conjuncts = split_and(w);
            for c in conjuncts {
                self.classify(c)?;
            }
        }
        let needed = self.needed_output_columns()?;
        let mut plan = self.join_order(&needed)?;
        for p in std::mem::take(&mut self.residual) {
            plan = PlanNode::Select { input: Box::new(plan), predicate: p };
        }
        plan = self.apply_select(plan)?;
        plan = self.apply_order_limit(plan)?;
        Ok(plan)
    }

    /// Classify one WHERE conjunct.
    fn classify(&mut self, e: &SqlExpr) -> Result<(), SqlError> {
        // Equi-join edge?
        if let SqlExpr::Binary { left, op: BinOp::Eq, right } = e {
            if let (SqlExpr::Column(l), SqlExpr::Column(r)) = (&**left, &**right) {
                let (ta, ca) = self.resolve(l)?;
                let (tb, cb) = self.resolve(r)?;
                if ta != tb {
                    self.edges.push(JoinEdge { a: ta, b: tb, a_col: ca, b_col: cb });
                    return Ok(());
                }
            }
        }
        let tables = self.tables_of(e)?;
        let pred = to_predicate(e, self)?;
        if tables.len() <= 1 {
            let t = tables.into_iter().next().unwrap_or(0);
            self.table_preds[t].push(pred);
        } else {
            self.residual.push(pred);
        }
        Ok(())
    }

    /// Columns each table must *output* from its scan: everything used by
    /// joins, residuals, SELECT, GROUP BY and ORDER BY (not predicate-only
    /// columns — scans read but project those away).
    fn needed_output_columns(&self) -> Result<Vec<Vec<String>>, SqlError> {
        let mut needed: Vec<HashSet<String>> =
            vec![HashSet::new(); self.tables.len()];
        let add = |this: &Self, name: &str, needed: &mut Vec<HashSet<String>>| {
            if let Ok((t, c)) = this.resolve(name) {
                needed[t].insert(c);
            }
        };
        for e in &self.edges {
            needed[e.a].insert(e.a_col.clone());
            needed[e.b].insert(e.b_col.clone());
        }
        for p in &self.residual {
            for c in p.referenced_columns() {
                add(self, &c, &mut needed);
            }
        }
        for item in &self.query.select {
            match item {
                SelectItem::Star => {
                    for (i, t) in self.tables.iter().enumerate() {
                        let table = self.db.table(t).expect("validated in new()");
                        for f in table.schema().fields() {
                            needed[i].insert(f.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    for c in expr.referenced_columns() {
                        let (t, c) = self.resolve(&c)?;
                        needed[t].insert(c);
                    }
                }
                SelectItem::Agg { expr: Some(expr), .. } => {
                    for c in expr.referenced_columns() {
                        let (t, c) = self.resolve(&c)?;
                        needed[t].insert(c);
                    }
                }
                SelectItem::Agg { expr: None, .. } => {}
            }
        }
        for g in &self.query.group_by {
            let (t, c) = self.resolve(g)?;
            needed[t].insert(c);
        }
        for o in &self.query.order_by {
            // ORDER BY may reference an output alias; only base columns
            // contribute to scan outputs.
            if let Ok((t, c)) = self.resolve(&o.column) {
                needed[t].insert(c);
            }
        }
        Ok(needed
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut v: Vec<String> = s.into_iter().collect();
                v.sort();
                // A zero-column chunk cannot carry a row count (e.g.
                // `SELECT count(*)`): keep the narrowest column.
                if v.is_empty() {
                    let table = self.db.table(&self.tables[i]).expect("validated");
                    if let Some(f) = table
                        .schema()
                        .fields()
                        .iter()
                        .min_by_key(|f| f.data_type.byte_width())
                    {
                        v.push(f.name.clone());
                    }
                }
                v
            })
            .collect())
    }

    /// Filtered scan of table `i`, outputting `columns`.
    fn scan_of(&self, i: usize, columns: &[String]) -> PlanNode {
        let mut scan = PlanNode::scan(self.tables[i].clone(), columns.to_vec());
        let preds = &self.table_preds[i];
        if !preds.is_empty() {
            scan = scan.filter(Predicate::and(preds.iter().cloned()));
        }
        scan
    }

    /// Left-deep Selinger DP over the equi-join graph.
    fn join_order(&self, needed: &[Vec<String>]) -> Result<PlanNode, SqlError> {
        let n = self.tables.len();
        if n == 0 {
            return Err(SqlError::Plan("empty FROM clause".into()));
        }
        if n == 1 {
            return Ok(self.scan_of(0, &needed[0]));
        }
        if n > 12 {
            return Err(SqlError::Plan(format!("too many tables ({n}) for DP")));
        }

        #[derive(Clone)]
        struct Entry {
            plan: PlanNode,
            cost: f64,
        }
        let full: usize = (1 << n) - 1;
        let mut best: Vec<Option<Entry>> = vec![None; full + 1];
        for i in 0..n {
            let plan = self.scan_of(i, &needed[i]);
            let rows = estimate::estimate(&plan, self.db).rows;
            best[1 << i] = Some(Entry { plan, cost: rows });
        }

        for mask in 1..=full {
            if best[mask].is_none() || mask.count_ones() < 1 {
                continue;
            }
            let base = best[mask].as_ref().expect("checked").clone();
            #[allow(clippy::needless_range_loop)]
            for t in 0..n {
                if mask & (1 << t) != 0 {
                    continue;
                }
                // Edges connecting t to the current set.
                let connecting: Vec<&JoinEdge> = self
                    .edges
                    .iter()
                    .filter(|e| {
                        (e.a == t && mask & (1 << e.b) != 0)
                            || (e.b == t && mask & (1 << e.a) != 0)
                    })
                    .collect();
                let Some(first) = connecting.first() else {
                    continue;
                };
                let (probe_key, build_key) = if first.a == t {
                    (first.b_col.clone(), first.a_col.clone())
                } else {
                    (first.a_col.clone(), first.b_col.clone())
                };
                let build = self.scan_of(t, &needed[t]);
                let mut candidate = base.plan.clone().join(build, probe_key, build_key);
                // Extra connecting edges become post-join filters.
                for e in connecting.iter().skip(1) {
                    let (l, r) = if e.a == t {
                        (e.b_col.clone(), e.a_col.clone())
                    } else {
                        (e.a_col.clone(), e.b_col.clone())
                    };
                    candidate = PlanNode::Select {
                        input: Box::new(candidate),
                        predicate: Predicate::ColCmp { left: l, op: CmpOp::Eq, right: r },
                    };
                }
                let rows = estimate::estimate(&candidate, self.db).rows;
                // Charge intermediates plus the hash-table build (builds
                // are ~2x a scan pass), so the DP prefers small dimension
                // tables on the build side.
                let build_rows = estimate::estimate(&self.scan_of(t, &needed[t]), self.db).rows;
                let cost = base.cost + rows + 2.0 * build_rows;
                let next = mask | (1 << t);
                if best[next].as_ref().is_none_or(|e| cost < e.cost) {
                    best[next] = Some(Entry { plan: candidate, cost });
                }
            }
        }
        best[full]
            .take()
            .map(|e| e.plan)
            .ok_or_else(|| {
                SqlError::Plan(
                    "query graph is disconnected (cross joins are unsupported)".into(),
                )
            })
    }

    /// Apply aggregation / final projection.
    fn apply_select(&self, plan: PlanNode) -> Result<PlanNode, SqlError> {
        let has_agg = self
            .query
            .select
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }));
        if !has_agg && self.query.group_by.is_empty() {
            // Pure projection.
            if matches!(self.query.select.as_slice(), [SelectItem::Star]) {
                return Ok(plan);
            }
            let mut exprs = Vec::new();
            for (i, item) in self.query.select.iter().enumerate() {
                match item {
                    SelectItem::Expr { expr, alias } => {
                        exprs.push((output_name(expr, alias, i), to_expr(expr, self)?));
                    }
                    SelectItem::Star => {
                        return Err(SqlError::Plan(
                            "mixing * with other select items is unsupported".into(),
                        ))
                    }
                    SelectItem::Agg { .. } => unreachable!("has_agg is false"),
                }
            }
            return Ok(plan.project(exprs));
        }

        // Aggregation path.
        let mut group_cols = Vec::new();
        for g in &self.query.group_by {
            group_cols.push(self.resolve(g)?.1);
        }
        let mut aggs = Vec::new();
        let mut select_order: Vec<String> = Vec::new();
        for (i, item) in self.query.select.iter().enumerate() {
            match item {
                SelectItem::Agg { func, expr, alias } => {
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => format!("{}_{i}", agg_func(*func).name()),
                    };
                    let input = match expr {
                        Some(e) => to_expr(e, self)?,
                        None => Expr::lit(1.0),
                    };
                    aggs.push(AggSpec::new(agg_func(*func), input, name.clone()));
                    select_order.push(name);
                }
                SelectItem::Expr { expr, alias } => {
                    // Must be a group key (possibly aliased).
                    match expr {
                        SqlExpr::Column(c) => {
                            let (_, col) = self.resolve(c)?;
                            if !group_cols.contains(&col) {
                                return Err(SqlError::Plan(format!(
                                    "column {col} must appear in GROUP BY"
                                )));
                            }
                            let _ = alias;
                            select_order.push(col);
                        }
                        other => {
                            return Err(SqlError::Plan(format!(
                                "non-aggregate select expression {other:?} with GROUP BY"
                            )))
                        }
                    }
                }
                SelectItem::Star => {
                    return Err(SqlError::Plan("SELECT * with aggregates".into()))
                }
            }
        }
        let mut plan = plan.aggregate(group_cols.clone(), aggs);
        // Reorder to the SELECT order when it differs from
        // group-keys-then-aggregates.
        let natural: Vec<String> = group_cols
            .iter()
            .cloned()
            .chain(select_order.iter().filter(|n| !group_cols.contains(n)).cloned())
            .collect();
        if select_order != natural {
            let exprs: Vec<(String, Expr)> = select_order
                .into_iter()
                .map(|n| (n.clone(), Expr::col(n)))
                .collect();
            plan = plan.project(exprs);
        }
        Ok(plan)
    }

    fn apply_order_limit(&self, mut plan: PlanNode) -> Result<PlanNode, SqlError> {
        if !self.query.order_by.is_empty() {
            let keys: Vec<SortKey> = self
                .query
                .order_by
                .iter()
                .map(|OrderItem { column, desc }| {
                    // Try resolving to a base column, else use the name as
                    // an output alias.
                    let name = self
                        .resolve(column)
                        .map(|(_, c)| c)
                        .unwrap_or_else(|_| column.clone());
                    if *desc {
                        SortKey::desc(name)
                    } else {
                        SortKey::asc(name)
                    }
                })
                .collect();
            plan = match self.query.limit {
                Some(l) => plan.top_k(keys, l),
                None => plan.sort(keys),
            };
        } else if let Some(l) = self.query.limit {
            plan = plan.top_k(Vec::new(), l);
        }
        Ok(plan)
    }
}

/// Split a boolean expression into top-level conjuncts.
fn split_and(e: &SqlExpr) -> Vec<&SqlExpr> {
    match e {
        SqlExpr::And(a, b) => {
            let mut out = split_and(a);
            out.extend(split_and(b));
            out
        }
        other => vec![other],
    }
}

fn agg_func(f: AggName) -> AggFunc {
    match f {
        AggName::Sum => AggFunc::Sum,
        AggName::Count => AggFunc::Count,
        AggName::Min => AggFunc::Min,
        AggName::Max => AggFunc::Max,
        AggName::Avg => AggFunc::Avg,
    }
}

fn output_name(expr: &SqlExpr, alias: &Option<String>, i: usize) -> String {
    match (alias, expr) {
        (Some(a), _) => a.clone(),
        (None, SqlExpr::Column(c)) => {
            c.split_once('.').map(|(_, c)| c.to_owned()).unwrap_or_else(|| c.clone())
        }
        _ => format!("expr_{i}"),
    }
}

/// Fold a literal-only arithmetic expression to a constant.
fn eval_const(e: &SqlExpr) -> Option<f64> {
    match e {
        SqlExpr::Number(n) => Some(*n),
        SqlExpr::Binary { left, op, right } => {
            let (l, r) = (eval_const(left)?, eval_const(right)?);
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div => Some(l / r),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Literal SQL value → engine value.
fn to_value(e: &SqlExpr) -> Option<Value> {
    match e {
        SqlExpr::Str(s) => Some(Value::Str(s.clone())),
        other => eval_const(other).map(Value::Float64),
    }
}

/// Scalar SQL expression → engine expression (bare column names).
fn to_expr(e: &SqlExpr, p: &Planner) -> Result<Expr, SqlError> {
    match e {
        SqlExpr::Column(c) => Ok(Expr::col(p.resolve(c)?.1)),
        SqlExpr::Number(n) => Ok(Expr::lit(*n)),
        SqlExpr::Binary { left, op, right } => {
            let l = to_expr(left, p)?;
            let r = to_expr(right, p)?;
            match op {
                BinOp::Add => Ok(l + r),
                BinOp::Sub => Ok(l - r),
                BinOp::Mul => Ok(l * r),
                BinOp::Div => Ok(l / r),
                other => Err(SqlError::Plan(format!(
                    "comparison {other:?} in scalar context"
                ))),
            }
        }
        other => Err(SqlError::Plan(format!("unsupported scalar expression {other:?}"))),
    }
}

/// Boolean SQL expression → engine predicate (bare column names).
fn to_predicate(e: &SqlExpr, p: &Planner) -> Result<Predicate, SqlError> {
    match e {
        SqlExpr::And(a, b) => Ok(Predicate::and([
            to_predicate(a, p)?,
            to_predicate(b, p)?,
        ])),
        SqlExpr::Or(a, b) => Ok(Predicate::or([
            to_predicate(a, p)?,
            to_predicate(b, p)?,
        ])),
        SqlExpr::Not(inner) => Ok(Predicate::Not(Box::new(to_predicate(inner, p)?))),
        SqlExpr::Between { expr, lo, hi } => {
            let col = column_name(expr, p)?;
            let lo = to_value(lo)
                .ok_or_else(|| SqlError::Plan("BETWEEN bounds must be literals".into()))?;
            let hi = to_value(hi)
                .ok_or_else(|| SqlError::Plan("BETWEEN bounds must be literals".into()))?;
            Ok(Predicate::Between { column: col, lo, hi })
        }
        SqlExpr::InList { expr, list } => {
            let col = column_name(expr, p)?;
            let values: Option<Vec<Value>> = list.iter().map(to_value).collect();
            let values = values
                .ok_or_else(|| SqlError::Plan("IN list must contain literals".into()))?;
            Ok(Predicate::InList { column: col, values })
        }
        SqlExpr::Like { expr, pattern } => {
            let col = column_name(expr, p)?;
            let starts = pattern.starts_with('%');
            let ends = pattern.ends_with('%');
            let core = pattern.trim_matches('%').to_owned();
            match (starts, ends) {
                (true, false) => Ok(Predicate::StrSuffix { column: col, suffix: core }),
                (false, true) => Ok(Predicate::StrPrefix { column: col, prefix: core }),
                _ => Err(SqlError::Plan(format!(
                    "unsupported LIKE pattern {pattern:?} (use 'x%' or '%x')"
                ))),
            }
        }
        SqlExpr::Binary { left, op, right } if op.is_comparison() => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Ge => CmpOp::Ge,
                _ => unreachable!("comparison checked"),
            };
            match (&**left, &**right) {
                (SqlExpr::Column(l), SqlExpr::Column(r)) => Ok(Predicate::ColCmp {
                    left: p.resolve(l)?.1,
                    op: cmp,
                    right: p.resolve(r)?.1,
                }),
                (SqlExpr::Column(l), rhs) => {
                    let v = to_value(rhs).ok_or_else(|| {
                        SqlError::Plan(format!("unsupported comparison operand {rhs:?}"))
                    })?;
                    Ok(Predicate::Cmp { column: p.resolve(l)?.1, op: cmp, value: v })
                }
                (lhs, SqlExpr::Column(r)) => {
                    let v = to_value(lhs).ok_or_else(|| {
                        SqlError::Plan(format!("unsupported comparison operand {lhs:?}"))
                    })?;
                    // Flip: literal OP col  ==  col OP' literal.
                    let flipped = match cmp {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => other,
                    };
                    Ok(Predicate::Cmp { column: p.resolve(r)?.1, op: flipped, value: v })
                }
                _ => Err(SqlError::Plan(format!("unsupported predicate {e:?}"))),
            }
        }
        other => Err(SqlError::Plan(format!("unsupported predicate {other:?}"))),
    }
}

fn column_name(e: &SqlExpr, p: &Planner) -> Result<String, SqlError> {
    match e {
        SqlExpr::Column(c) => Ok(p.resolve(c)?.1),
        other => Err(SqlError::Plan(format!("expected a column, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use robustq_engine::ops::execute_plan;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    fn run(sql: &str, db: &Database) -> robustq_engine::Chunk {
        let plan = plan(&parse(sql).unwrap(), db).unwrap();
        execute_plan(&plan, db).unwrap()
    }

    #[test]
    fn single_table_selection() {
        let db = db();
        let out = run("select lo_revenue from lineorder where lo_discount > 8", &db);
        assert!(out.num_rows() > 0);
        assert_eq!(out.num_columns(), 1);
        // Cross-check with a direct plan.
        let direct = execute_plan(
            &PlanNode::scan("lineorder", ["lo_revenue"])
                .filter(Predicate::cmp("lo_discount", CmpOp::Gt, 8)),
            &db,
        )
        .unwrap();
        assert_eq!(out.checksum(), direct.checksum());
    }

    #[test]
    fn two_table_join_with_aggregate() {
        let db = db();
        let out = run(
            "select sum(lo_extendedprice * lo_discount) as revenue \
             from lineorder, date \
             where lo_orderdate = d_datekey and d_year = 1993 \
             and lo_discount between 1 and 3 and lo_quantity < 25",
            &db,
        );
        assert_eq!(out.num_rows(), 1);
        assert!(out.column("revenue").is_some());
    }

    #[test]
    fn group_by_with_order() {
        let db = db();
        let out = run(
            "select d_year, sum(lo_revenue) as revenue from lineorder, date \
             where lo_orderdate = d_datekey group by d_year order by d_year",
            &db,
        );
        assert_eq!(out.num_rows(), 7, "seven calendar years");
        // Sorted ascending by year.
        let years: Vec<i64> =
            (0..7).map(|i| out.row(i)[0].as_i64().unwrap()).collect();
        assert!(years.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn three_table_join_orders_by_dp() {
        let db = db();
        let out = run(
            "select c_nation, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
             and c_region = 'ASIA' and s_region = 'ASIA' \
             group by c_nation order by revenue desc",
            &db,
        );
        assert!(out.num_rows() > 0);
        // Descending revenue.
        let revs: Vec<f64> =
            (0..out.num_rows()).map(|i| out.row(i)[1].as_f64().unwrap()).collect();
        assert!(revs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn select_star_passthrough() {
        let db = db();
        let out = run("select * from date where d_year = 1994", &db);
        assert_eq!(out.num_rows(), 365);
        assert_eq!(out.num_columns(), 7, "all date columns");
    }

    #[test]
    fn limit_produces_top_k() {
        let db = db();
        let out = run(
            "select lo_revenue from lineorder order by lo_revenue desc limit 5",
            &db,
        );
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn projection_pushdown_reduces_scan_width() {
        let db = db();
        let p = plan(
            &parse("select lo_revenue from lineorder where lo_discount > 8").unwrap(),
            &db,
        )
        .unwrap();
        // The scan must output only lo_revenue.
        fn find_scan(n: &PlanNode) -> Option<&PlanNode> {
            match n {
                PlanNode::Scan { .. } => Some(n),
                _ => n.children().into_iter().find_map(find_scan),
            }
        }
        match find_scan(&p).unwrap() {
            PlanNode::Scan { columns, .. } => {
                assert_eq!(columns, &vec!["lo_revenue".to_string()]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_for_unknown_names() {
        let db = db();
        assert!(plan(&parse("select x from lineorder").unwrap(), &db).is_err());
        assert!(plan(&parse("select * from nonsense").unwrap(), &db).is_err());
        assert!(plan(
            &parse("select lo_revenue from lineorder, date").unwrap(),
            &db
        )
        .is_err(), "disconnected join graph");
    }

    #[test]
    fn non_grouped_column_rejected() {
        let db = db();
        let q = parse(
            "select d_year, sum(lo_revenue) from lineorder, date \
             where lo_orderdate = d_datekey group by d_yearmonthnum",
        )
        .unwrap();
        assert!(plan(&q, &db).is_err());
    }

    #[test]
    fn or_predicate_on_one_table_pushes_down() {
        let db = db();
        let out = run(
            "select count(*) as n from customer \
             where c_region = 'ASIA' or c_region = 'EUROPE'",
            &db,
        );
        let total = run("select count(*) as n from customer", &db);
        let asia = run("select count(*) as n from customer where c_region = 'ASIA'", &db);
        let n = out.row(0)[0].as_i64().unwrap();
        assert!(n > asia.row(0)[0].as_i64().unwrap());
        assert!(n < total.row(0)[0].as_i64().unwrap());
    }
}
