#![warn(missing_docs)]

//! SQL front end and Selinger-style planner.
//!
//! CoGaDB exposes an SQL interface over its column store (Section 2.5);
//! this crate rebuilds that layer for the select-project-join-aggregate
//! subset the SSB and TPC-H workloads need:
//!
//! * [`lexer`] — tokenization,
//! * [`ast`] — the parsed query representation,
//! * [`parser`] — a recursive-descent parser,
//! * [`planner`] — name resolution, predicate classification
//!   (per-table / join / residual), Selinger-style dynamic-programming
//!   join ordering over the equi-join graph, projection pushdown and
//!   physical plan construction.
//!
//! # Example
//!
//! ```
//! use robustq_sql::plan_sql;
//! use robustq_storage::gen::ssb::SsbGenerator;
//!
//! let db = SsbGenerator::new(1).with_rows_per_sf(500).generate();
//! let plan = plan_sql(
//!     "select d_year, sum(lo_revenue) as revenue \
//!      from lineorder, date \
//!      where lo_orderdate = d_datekey and d_year = 1993 \
//!      group by d_year",
//!     &db,
//! )
//! .unwrap();
//! let result = robustq_engine::ops::execute_plan(&plan, &db).unwrap();
//! assert_eq!(result.num_rows(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use error::SqlError;

use robustq_engine::plan::PlanNode;
use robustq_storage::Database;

/// Parse and plan one SQL statement against `db`.
pub fn plan_sql(sql: &str, db: &Database) -> Result<PlanNode, SqlError> {
    let query = parser::parse(sql)?;
    planner::plan(&query, db)
}
