//! Skewed query-mix sampling over plan templates.
//!
//! A [`QueryMix`] holds a list of plan templates (SSB, TPC-H, or any
//! hand-built plans) plus a weight per template; the serving runner
//! samples one template per arrival. Weighted sampling walks a
//! cumulative table against a single uniform draw, so the draw count per
//! arrival is constant and schedules stay deterministic. Zipf weights
//! use the portable `pow` of [`crate::detmath`], keeping the skew — and
//! therefore the golden percentile fingerprints — platform-independent.

use crate::detmath::det_pow;
use rand::rngs::StdRng;
use robustq_engine::plan::PlanNode;

/// A weighted set of query templates.
#[derive(Debug, Clone)]
pub struct QueryMix {
    templates: Vec<PlanNode>,
    /// Cumulative weights, same length as `templates`; the final entry
    /// is the total mass.
    cumulative: Vec<f64>,
}

impl QueryMix {
    /// All templates equally likely.
    pub fn uniform(templates: Vec<PlanNode>) -> Self {
        let n = templates.len();
        QueryMix::weighted(templates, vec![1.0; n])
    }

    /// Explicit per-template weights (must be non-negative with a
    /// positive sum, one per template).
    pub fn weighted(templates: Vec<PlanNode>, weights: Vec<f64>) -> Self {
        assert_eq!(templates.len(), weights.len(), "one weight per template");
        assert!(!templates.is_empty(), "a mix needs at least one template");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "total weight must be positive");
        QueryMix { templates, cumulative }
    }

    /// Zipf-skewed weights: template `i` gets mass `(i+1)^(-theta)`, so
    /// earlier templates dominate. `theta = 0` degenerates to uniform;
    /// `theta ≈ 1` is the classic heavy skew.
    pub fn zipf(templates: Vec<PlanNode>, theta: f64) -> Self {
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be non-negative");
        let weights =
            (0..templates.len()).map(|i| det_pow((i + 1) as f64, -theta)).collect();
        QueryMix::weighted(templates, weights)
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Always false — construction rejects empty mixes.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The templates, in weight order.
    pub fn templates(&self) -> &[PlanNode] {
        &self.templates
    }

    /// Sample one template index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * total;
        // First cumulative entry strictly above the draw; the final
        // entry equals `total > u`, so `partition_point` stays in range.
        self.cumulative.partition_point(|&c| c <= u).min(self.templates.len() - 1)
    }

    /// The template at `index`.
    pub fn template(&self, index: usize) -> &PlanNode {
        &self.templates[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use robustq_engine::plan::PlanNode;

    fn templates(n: usize) -> Vec<PlanNode> {
        (0..n)
            .map(|_| PlanNode::Scan {
                table: "t".into(),
                columns: vec!["c".into()],
                predicate: None,
            })
            .collect()
    }

    #[test]
    fn uniform_mix_covers_all_templates() {
        let mix = QueryMix::uniform(templates(5));
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 5];
        for _ in 0..5_000 {
            seen[mix.sample(&mut rng)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 800), "roughly even: {seen:?}");
    }

    #[test]
    fn zipf_mix_skews_toward_early_templates() {
        let mix = QueryMix::zipf(templates(8), 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [0usize; 8];
        for _ in 0..10_000 {
            seen[mix.sample(&mut rng)] += 1;
        }
        assert!(seen[0] > seen[7] * 3, "skew expected: {seen:?}");
        assert!(seen.iter().all(|&c| c > 0), "tail still sampled: {seen:?}");
    }

    #[test]
    fn zero_weight_templates_are_never_sampled() {
        let mix = QueryMix::weighted(templates(3), vec![1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            assert_ne!(mix.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mix = QueryMix::zipf(templates(6), 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| mix.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| mix.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
