//! Seeded virtual-time arrival processes.
//!
//! An [`ArrivalProcess`] turns a seed and a horizon into a sorted list
//! of submission instants — the open-loop traffic the serving layer
//! feeds the executor (DESIGN.md §13). All sampling is integer-seeded
//! xoshiro plus the deterministic `ln` of [`crate::detmath`], so a
//! given `(process, horizon, seed)` triple produces a byte-identical
//! schedule on every platform and worker count.
//!
//! Semantics:
//!
//! * **Poisson** — memoryless arrivals at a constant mean rate
//!   (exponential inter-arrival gaps via inverse-CDF sampling).
//! * **Bursty** — piecewise-constant Poisson: within every `period`, the
//!   first `burst_len` runs at `burst_qps`, the remainder at `base_qps`.
//!   Generation restarts at each phase boundary (the memoryless property
//!   makes that free), so *no arrival ever leaks across a boundary* —
//!   burst windows are exact in virtual time.
//! * **Ramp** — a linear rate sweep from `start_qps` to `end_qps` over
//!   the horizon, sampled by Lewis–Shedler thinning against the peak
//!   rate.
//! * **Uniform** — deterministic evenly spaced arrivals (no randomness);
//!   the degenerate baseline for capacity probing.
//! * **Closed** — not a schedule at all: the classic closed-loop
//!   `users`-session run expressed in serving-layer terms, routed to the
//!   closed-loop executor path by the runner (the backward-compatibility
//!   differential in `tests/serving.rs` pins that the two are
//!   bit-identical).

use crate::detmath::det_ln;
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustq_sim::VirtualTime;

/// A seeded virtual-time arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Constant-rate memoryless arrivals.
    Poisson {
        /// Mean arrival rate in queries per virtual second.
        rate_qps: f64,
    },
    /// Periodic bursts over a base load (piecewise-constant Poisson).
    Bursty {
        /// Rate outside burst windows (may be zero).
        base_qps: f64,
        /// Rate inside burst windows.
        burst_qps: f64,
        /// Window repetition period.
        period: VirtualTime,
        /// Burst length at the start of each period (`<= period`).
        burst_len: VirtualTime,
    },
    /// Linear rate sweep from `start_qps` to `end_qps` across the
    /// horizon.
    Ramp {
        /// Rate at virtual time zero.
        start_qps: f64,
        /// Rate at the horizon.
        end_qps: f64,
    },
    /// Deterministic evenly spaced arrivals (first at time zero).
    Uniform {
        /// Arrival rate in queries per virtual second.
        rate_qps: f64,
    },
    /// The degenerate case: a closed-loop `users`-session run. Produces
    /// no schedule ([`ArrivalProcess::schedule`] returns empty); the
    /// serving runner routes it to the closed-loop executor path.
    Closed {
        /// Number of closed-loop sessions.
        users: usize,
    },
}

/// One exponential inter-arrival gap in nanoseconds at `rate_qps`.
///
/// The uniform draw is `((next_u64 >> 11) + 1) · 2⁻⁵³ ∈ (0, 1]`, so the
/// logarithm never sees zero and a gap is never infinite.
fn exp_gap_ns(rng: &mut StdRng, rate_qps: f64) -> f64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    -det_ln(u) / rate_qps * 1e9
}

/// A uniform draw in `[0, 1)`.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Append Poisson arrivals at `rate_qps` within `[from_ns, to_ns)`.
fn fill_poisson(
    rng: &mut StdRng,
    rate_qps: f64,
    from_ns: u64,
    to_ns: u64,
    out: &mut Vec<VirtualTime>,
) {
    if rate_qps <= 0.0 {
        return;
    }
    let mut offset = 0.0f64;
    loop {
        offset += exp_gap_ns(rng, rate_qps);
        if offset >= (to_ns - from_ns) as f64 {
            return;
        }
        out.push(VirtualTime::from_nanos(from_ns + offset as u64));
    }
}

impl ArrivalProcess {
    /// The mean offered rate in queries per virtual second (zero for
    /// [`ArrivalProcess::Closed`], whose load is feedback-driven).
    pub fn mean_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } | ArrivalProcess::Uniform { rate_qps } => {
                rate_qps
            }
            ArrivalProcess::Bursty { base_qps, burst_qps, period, burst_len } => {
                if period == VirtualTime::ZERO {
                    return base_qps;
                }
                let frac = burst_len.as_nanos() as f64 / period.as_nanos() as f64;
                burst_qps * frac + base_qps * (1.0 - frac)
            }
            ArrivalProcess::Ramp { start_qps, end_qps } => (start_qps + end_qps) / 2.0,
            ArrivalProcess::Closed { .. } => 0.0,
        }
    }

    /// Generate the sorted arrival schedule over `[0, horizon)` from a
    /// seed (convenience over [`ArrivalProcess::schedule_with`]).
    pub fn schedule(&self, horizon: VirtualTime, seed: u64) -> Vec<VirtualTime> {
        self.schedule_with(horizon, &mut StdRng::seed_from_u64(seed))
    }

    /// Generate the sorted arrival schedule over `[0, horizon)`, drawing
    /// from `rng`.
    pub fn schedule_with(&self, horizon: VirtualTime, rng: &mut StdRng) -> Vec<VirtualTime> {
        let h_ns = horizon.as_nanos();
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                fill_poisson(rng, rate_qps, 0, h_ns, &mut out);
            }
            ArrivalProcess::Bursty { base_qps, burst_qps, period, burst_len } => {
                let p_ns = period.as_nanos();
                let b_ns = burst_len.as_nanos().min(p_ns);
                assert!(p_ns > 0, "bursty arrivals need a non-zero period");
                let mut start = 0u64;
                while start < h_ns {
                    let burst_end = (start + b_ns).min(h_ns);
                    fill_poisson(rng, burst_qps, start, burst_end, &mut out);
                    let period_end = (start + p_ns).min(h_ns);
                    fill_poisson(rng, base_qps, burst_end, period_end, &mut out);
                    start += p_ns;
                }
            }
            ArrivalProcess::Ramp { start_qps, end_qps } => {
                let peak = start_qps.max(end_qps);
                if peak > 0.0 && h_ns > 0 {
                    // Lewis–Shedler: propose at the peak rate, keep a
                    // proposal at t with probability rate(t)/peak.
                    let mut t_ns = 0.0f64;
                    loop {
                        t_ns += exp_gap_ns(rng, peak);
                        if t_ns >= h_ns as f64 {
                            break;
                        }
                        let rate =
                            start_qps + (end_qps - start_qps) * (t_ns / h_ns as f64);
                        if unit(rng) * peak < rate {
                            out.push(VirtualTime::from_nanos(t_ns as u64));
                        }
                    }
                }
            }
            ArrivalProcess::Uniform { rate_qps } => {
                if rate_qps > 0.0 {
                    let gap_ns = 1e9 / rate_qps;
                    let mut k = 0u64;
                    loop {
                        let t = (k as f64 * gap_ns) as u64;
                        if t >= h_ns {
                            break;
                        }
                        out.push(VirtualTime::from_nanos(t));
                        k += 1;
                    }
                }
            }
            ArrivalProcess::Closed { .. } => {}
        }
        debug_assert!(out.windows(2).all(|w| w[0] <= w[1]), "schedule sorted");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> VirtualTime {
        VirtualTime::from_millis(50)
    }

    #[test]
    fn poisson_schedule_is_sorted_and_bounded() {
        let s = ArrivalProcess::Poisson { rate_qps: 100_000.0 }.schedule(h(), 7);
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.iter().all(|&t| t < h()));
    }

    #[test]
    fn zero_rate_yields_no_arrivals() {
        assert!(ArrivalProcess::Poisson { rate_qps: 0.0 }.schedule(h(), 1).is_empty());
        assert!(ArrivalProcess::Uniform { rate_qps: 0.0 }.schedule(h(), 1).is_empty());
        assert!(ArrivalProcess::Closed { users: 4 }.schedule(h(), 1).is_empty());
    }

    #[test]
    fn uniform_is_evenly_spaced_from_zero() {
        let s = ArrivalProcess::Uniform { rate_qps: 1_000.0 }
            .schedule(VirtualTime::from_millis(5), 0);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], VirtualTime::ZERO);
        assert_eq!(s[1], VirtualTime::from_millis(1));
    }

    #[test]
    fn mean_qps_mixes_burst_and_base() {
        let p = ArrivalProcess::Bursty {
            base_qps: 100.0,
            burst_qps: 900.0,
            period: VirtualTime::from_millis(10),
            burst_len: VirtualTime::from_millis(5),
        };
        assert!((p.mean_qps() - 500.0).abs() < 1e-9);
        assert_eq!(ArrivalProcess::Ramp { start_qps: 0.0, end_qps: 10.0 }.mean_qps(), 5.0);
    }
}
