//! Portable deterministic `ln`/`exp`.
//!
//! Arrival-gap sampling needs `-ln(u)/λ`, and Zipf mix weights need
//! `n^(-θ) = exp(-θ·ln n)`. `f64::ln`/`exp` go through the platform's
//! libm, whose last-ulp rounding differs across libc versions — enough
//! to shift a golden percentile fingerprint between a developer machine
//! and CI. These implementations use only IEEE-exact operations
//! (`+ - * /`, bit manipulation) with fixed iteration counts, so the
//! same input yields the same bits on every platform. Accuracy is a few
//! ulp — far below the nanosecond quantisation of virtual time.

use std::f64::consts::LN_2;

/// Natural logarithm of `x`, deterministic across platforms.
///
/// Requires `x` finite and `> 0` (arrival sampling feeds it uniform
/// draws from `(0, 1]`); debug-asserts otherwise.
pub fn det_ln(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0, "det_ln domain: {x}");
    let bits = x.to_bits();
    let mut exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut mant = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if exp == -1023 {
        // Subnormal: renormalise through a 2^64 scale.
        let scaled = x * (2f64).powi(64);
        let sbits = scaled.to_bits();
        exp = ((sbits >> 52) & 0x7ff) as i64 - 1023 - 64;
        mant = f64::from_bits((sbits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    }
    // Fold the mantissa into [√½, √2) so the atanh argument stays small.
    if mant > std::f64::consts::SQRT_2 {
        mant *= 0.5;
        exp += 1;
    }
    // ln(m) = 2·atanh(z) with z = (m−1)/(m+1); |z| < 0.172, so the odd
    // series gains > 5 bits per term — 13 terms exceed f64 precision.
    let z = (mant - 1.0) / (mant + 1.0);
    let z2 = z * z;
    let mut term = z;
    let mut sum = z;
    for k in 1..13u32 {
        term *= z2;
        sum += term / (2 * k + 1) as f64;
    }
    exp as f64 * LN_2 + 2.0 * sum
}

/// `e^x`, deterministic across platforms.
///
/// Accurate for the moderate arguments mix weighting produces; saturates
/// to `0`/`+inf` outside the representable exponent range.
pub fn det_exp(x: f64) -> f64 {
    debug_assert!(x.is_finite(), "det_exp domain: {x}");
    if x > 709.8 {
        return f64::INFINITY;
    }
    if x < -745.0 {
        return 0.0;
    }
    // Range-reduce: x = n·ln2 + r with |r| ≤ ln2/2.
    let n = (x / LN_2 + if x >= 0.0 { 0.5 } else { -0.5 }) as i64;
    let r = x - n as f64 * LN_2;
    // Taylor with fixed term count; |r| ≤ 0.347 so 18 terms exceed f64
    // precision (0.347^18/18! ≈ 1e-24).
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..18u32 {
        term *= r / k as f64;
        sum += term;
    }
    sum * pow2i(n)
}

/// `x^y` for `x > 0`, deterministic across platforms.
pub fn det_pow(x: f64, y: f64) -> f64 {
    det_exp(y * det_ln(x))
}

/// Exact `2^n` via exponent-field construction (split for `n` outside
/// the normal range).
fn pow2i(n: i64) -> f64 {
    if (-1022..=1023).contains(&n) {
        f64::from_bits(((n + 1023) as u64) << 52)
    } else if n > 1023 {
        f64::INFINITY
    } else {
        // Subnormal or zero: go through a normal power and one exact
        // scale step.
        f64::from_bits(1u64) * pow2i(n + 1074).min(f64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_matches_std_to_a_few_ulp() {
        for &x in &[1e-12, 1e-6, 0.1, 0.5, 0.9999, 1.0, 1.5, 2.0, 10.0, 1e6, 1e300] {
            let got = det_ln(x);
            let want = x.ln();
            let tol = want.abs().max(1.0) * 1e-14;
            assert!((got - want).abs() <= tol, "ln({x}): {got} vs {want}");
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn exp_matches_std_to_a_few_ulp() {
        for &x in &[-700.0, -10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0, 700.0] {
            let got = det_exp(x);
            let want = x.exp();
            let tol = want.abs().max(f64::MIN_POSITIVE) * 1e-13;
            assert!((got - want).abs() <= tol, "exp({x}): {got} vs {want}");
        }
        assert_eq!(det_exp(0.0), 1.0);
        assert_eq!(det_exp(800.0), f64::INFINITY);
        assert_eq!(det_exp(-800.0), 0.0);
    }

    #[test]
    fn pow_supports_zipf_weights() {
        for i in 1..50u32 {
            let got = det_pow(i as f64, -1.1);
            let want = (i as f64).powf(-1.1);
            assert!((got - want).abs() <= want * 1e-13, "{i}: {got} vs {want}");
        }
        assert_eq!(det_pow(7.0, 0.0), 1.0);
    }

    #[test]
    fn round_trip_ln_exp() {
        for &x in &[1e-9, 0.3, 1.0, 3.7, 123.456] {
            let rt = det_exp(det_ln(x));
            assert!((rt - x).abs() <= x * 1e-13, "{x} → {rt}");
        }
    }
}
