//! Open-loop serving layer (DESIGN.md §13).
//!
//! The closed-loop runner in `robustq-workloads` models a fixed set of
//! users who each wait for their previous query before issuing the
//! next — throughput-oriented, and self-throttling under overload. A
//! *serving* system sees the opposite: queries arrive on their own
//! clock, indifferent to how the backlog is doing, and the question is
//! what happens to latency percentiles when the offered rate brushes
//! against (or exceeds) capacity. That open-loop regime is where the
//! paper's robustness argument bites hardest: a single mis-placed
//! operator stalls every query queued behind it, so heuristic
//! placement's occasional disasters surface as p99/p999 blow-ups rather
//! than a slightly worse mean.
//!
//! This crate provides the three pieces the closed-loop stack lacks:
//!
//! * [`ArrivalProcess`] — seeded virtual-time load generators (Poisson,
//!   bursty, ramp, uniform, plus the degenerate closed-loop case);
//! * [`QueryMix`] — weighted/Zipf template sampling over any plan list;
//! * [`ServingRunner`] — the §6.1-style procedure (reset → warm-up →
//!   measured run) driving the executor's open-loop entry points, with
//!   [`ServingReport`] exposing p50/p95/p99/p999, goodput and shed
//!   counts.
//!
//! Determinism: all randomness flows from one `u64` seed through the
//! vendored xoshiro generator, and the transcendentals (`ln` for
//! exponential gaps, `pow` for Zipf weights) are the platform-portable
//! fixed-iteration versions in [`detmath`] — so a serving schedule, and
//! therefore every derived percentile, is byte-identical across
//! machines, libc versions and worker counts.

pub mod arrival;
pub mod detmath;
pub mod mix;
pub mod runner;

// Re-exported so downstream tests can drive [`QueryMix::sample`] with
// the exact generator the serving runner uses.
pub use rand;

pub use arrival::ArrivalProcess;
pub use mix::QueryMix;
pub use runner::{ServeConfig, ServingReport, ServingRunner, StreamingReport};
