//! The open-loop serving runner.
//!
//! [`ServingRunner`] mirrors the closed-loop
//! [`WorkloadRunner`](robustq_workloads::WorkloadRunner) procedure
//! (Section 6.1: reset statistics → warm-up runs on persistent caches →
//! measured run), but the measured run feeds the executor an *arrival
//! schedule* instead of per-session query queues: an
//! [`ArrivalProcess`] decides *when* queries arrive, a [`QueryMix`]
//! decides *what* arrives, and a virtual session pool decides *who*
//! submits it. Latency under open-loop load includes queueing delay, so
//! tail percentiles (p99/p999) expose robustness differences that
//! closed-loop makespans hide (DESIGN.md §13).
//!
//! [`ArrivalProcess::Closed`] is the degenerate case: the runner routes
//! it through the closed-loop [`WorkloadRunner`](robustq_workloads::WorkloadRunner)
//! itself, so a `Closed { users }` serving run is *bit-identical* to the
//! classic runner (pinned by `tests/serving.rs`).

use crate::arrival::ArrivalProcess;
use crate::mix::QueryMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustq_core::Strategy;
use robustq_engine::exec::metrics::QueryOutcome;
use robustq_engine::{
    Arrival, CostModelKind, EngineError, ExecOptions, Executor, FeedSchedule, ModelUpdate,
    ParallelCtx, PlacementPolicy, RunMetrics, StagingStats, StandingQuery,
};
use robustq_sim::{FaultPlan, RetryPolicy, SimConfig, VirtualTime};
use robustq_storage::Database;
use robustq_trace::{chrome_trace_json, MetricsRegistry, TraceData, Tracer};
use robustq_workloads::{RunnerConfig, WorkloadRunner};

/// Serving-run options: the arrival process, the load window, and the
/// admission/overload knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// When queries arrive.
    pub process: ArrivalProcess,
    /// Arrival-generation window `[0, horizon)` in virtual time. Ignored
    /// by [`ArrivalProcess::Closed`] (closed-loop load is
    /// feedback-driven, not time-driven).
    pub horizon: VirtualTime,
    /// Virtual session pool size. Each arrival is attributed to a
    /// uniformly drawn session; sessions are labels, so pools of
    /// 10⁵–10⁶ cost one counter each.
    pub sessions: usize,
    /// Seed for arrival times, session assignment and mix sampling. A
    /// `(process, horizon, seed)` triple fully determines the schedule.
    pub seed: u64,
    /// Warm-up executions of the template list before measuring
    /// (closed-loop, single session, fault-free, untraced).
    pub warmup_runs: usize,
    /// Queries between data-placement background-job runs (0 = never).
    pub placement_update_period: usize,
    /// Admission control: maximum concurrently admitted queries.
    pub max_concurrent_queries: usize,
    /// Overload shedding: admission-queue depth cap — arrivals beyond it
    /// are shed immediately (`usize::MAX` disables).
    pub queue_cap: usize,
    /// Overload shedding: queries that waited this long unadmitted are
    /// shed instead of admitted (`ZERO` disables).
    pub admission_timeout: VirtualTime,
    /// Real-CPU parallelism for the hot kernels. Results and virtual-time
    /// figures are bit-identical across settings; only wall-clock changes.
    pub parallel: ParallelCtx,
    /// Record a structured trace of the measured run.
    pub trace: bool,
    /// Intra-operator sharding ways (0 disables).
    pub shard_ways: usize,
    /// Minimum estimated scan bytes to qualify for sharding.
    pub shard_min_bytes: f64,
    /// Cost model driving run-time placement estimates (DESIGN.md §15).
    pub cost_model: CostModelKind,
    /// Chunked out-of-core staging for over-heap operators.
    pub chunked_staging: bool,
    /// Capture per-query result chunks in the outcomes (streaming
    /// window-identity tests; costs memory, off by default).
    pub capture_results: bool,
}

impl ServeConfig {
    /// Serving options for `process` over `[0, horizon)` with the same
    /// defaults as the closed-loop [`RunnerConfig`].
    pub fn new(process: ArrivalProcess, horizon: VirtualTime) -> Self {
        ServeConfig {
            process,
            horizon,
            sessions: 1_000,
            seed: 0,
            warmup_runs: 1,
            placement_update_period: 1,
            max_concurrent_queries: usize::MAX,
            queue_cap: usize::MAX,
            admission_timeout: VirtualTime::ZERO,
            parallel: ParallelCtx::serial(),
            trace: false,
            shard_ways: 0,
            shard_min_bytes: 0.0,
            cost_model: CostModelKind::Static,
            chunked_staging: false,
            capture_results: false,
        }
    }

    /// Set the virtual session pool size.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions.max(1);
        self
    }

    /// Set the schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of warm-up runs (0 = cold start).
    pub fn with_warmup(mut self, runs: usize) -> Self {
        self.warmup_runs = runs;
        self
    }

    /// Admit at most `n` queries concurrently.
    pub fn with_admission_limit(mut self, n: usize) -> Self {
        self.max_concurrent_queries = n.max(1);
        self
    }

    /// Shed arrivals once the admission queue holds `cap` queries.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Shed queries that wait longer than `timeout` unadmitted.
    pub fn with_admission_timeout(mut self, timeout: VirtualTime) -> Self {
        self.admission_timeout = timeout;
        self
    }

    /// Run the hot kernels with the given parallelism context.
    pub fn with_parallel(mut self, parallel: ParallelCtx) -> Self {
        self.parallel = parallel;
        self
    }

    /// Record a structured trace of the measured run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Shard qualifying leaf scans `ways` ways; only scans of at least
    /// `min_bytes` estimated input qualify.
    pub fn with_sharding(mut self, ways: usize, min_bytes: f64) -> Self {
        self.shard_ways = ways;
        self.shard_min_bytes = min_bytes;
        self
    }

    /// Drive run-time placement with `model` (static regressions by
    /// default; [`CostModelKind::Adaptive`] for online EWMA refinement).
    pub fn with_cost_model(mut self, model: CostModelKind) -> Self {
        self.cost_model = model;
        self
    }

    /// Stage over-heap operators through the co-processor in chunks
    /// instead of aborting them to the CPU.
    pub fn with_chunked_staging(mut self) -> Self {
        self.chunked_staging = true;
        self
    }

    /// Keep every completed query's result chunk in its outcome.
    pub fn with_captured_results(mut self) -> Self {
        self.capture_results = true;
        self
    }

    /// The executor options for the measured serving run.
    fn exec_options(&self, measured: bool) -> ExecOptions {
        ExecOptions {
            capture_results: measured && self.capture_results,
            placement_update_period: self.placement_update_period,
            max_concurrent_queries: self.max_concurrent_queries,
            preload: Vec::new(),
            parallel: self.parallel,
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            shard_ways: self.shard_ways,
            shard_min_bytes: self.shard_min_bytes,
            queue_cap: if measured { self.queue_cap } else { usize::MAX },
            admission_timeout: if measured {
                self.admission_timeout
            } else {
                VirtualTime::ZERO
            },
            cost_model: self.cost_model,
            chunked_staging: self.chunked_staging,
            tracer: if measured && self.trace { Tracer::new() } else { Tracer::disabled() },
        }
    }

    /// The closed-loop [`RunnerConfig`] equivalent of this serving
    /// configuration, used for the [`ArrivalProcess::Closed`] route.
    /// Overload knobs don't apply — closed-loop sessions wait instead of
    /// shedding.
    fn closed_loop(&self, users: usize) -> RunnerConfig {
        let mut cfg = RunnerConfig::default().with_users(users);
        cfg.warmup_runs = self.warmup_runs;
        cfg.placement_update_period = self.placement_update_period;
        cfg.max_concurrent_queries = self.max_concurrent_queries;
        cfg.parallel = self.parallel;
        cfg.trace = self.trace;
        cfg.shard_ways = self.shard_ways;
        cfg.shard_min_bytes = self.shard_min_bytes;
        cfg.cost_model = self.cost_model;
        cfg.chunked_staging = self.chunked_staging;
        cfg
    }
}

/// Result of one measured serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Display name of the strategy that ran.
    pub strategy: &'static str,
    /// Queries offered: scheduled arrivals (open loop) or the workload
    /// length (closed loop).
    pub offered: usize,
    /// Queries shed by queue-cap or admission-timeout overload
    /// protection. `offered == completed + shed` always holds.
    pub shed: u64,
    /// The configured arrival window (zero-relevance for closed loop).
    pub horizon: VirtualTime,
    /// Aggregated run metrics.
    pub metrics: RunMetrics,
    /// Per-query outcomes, in completion order. Latency spans
    /// *submission* to completion, so it includes admission queueing
    /// ([`QueryOutcome::admit_wait`] is the queueing share).
    pub outcomes: Vec<QueryOutcome>,
    /// The measured run's event stream, when [`ServeConfig::trace`] was
    /// set (`None` otherwise).
    pub trace: Option<TraceData>,
    /// Every cost-model observation of the measured run, in completion
    /// order (est-vs-actual audit).
    pub model_samples: Vec<ModelUpdate>,
    /// Chunked-staging counters of the measured run.
    pub staging: StagingStats,
}

impl ServingReport {
    /// Queries that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// The Chrome `trace_event` JSON for the measured run. `None` when
    /// the run was untraced.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace.as_ref().map(|t| chrome_trace_json(&t.events))
    }

    /// Counters and histograms derived from the measured run's event
    /// stream. `None` when the run was untraced.
    pub fn metrics_registry(&self) -> Option<MetricsRegistry> {
        self.trace.as_ref().map(|t| MetricsRegistry::from_events(&t.events))
    }

    /// Mean query latency (completed queries only).
    pub fn mean_latency(&self) -> VirtualTime {
        RunMetrics::mean_latency(&self.outcomes)
    }

    /// The `p`-th latency percentile (nearest-rank), `0.0 < p <= 100.0`.
    /// Returns zero for an empty outcome set.
    pub fn latency_percentile(&self, p: f64) -> VirtualTime {
        percentile(self.outcomes.iter().map(|o| o.latency), p)
    }

    /// The `p`-th admission-wait percentile (nearest-rank) — the
    /// queueing share of latency.
    pub fn admit_wait_percentile(&self, p: f64) -> VirtualTime {
        percentile(self.outcomes.iter().map(|o| o.admit_wait), p)
    }

    /// Median latency.
    pub fn p50(&self) -> VirtualTime {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> VirtualTime {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency — the serving-SLO headline number.
    pub fn p99(&self) -> VirtualTime {
        self.latency_percentile(99.0)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> VirtualTime {
        self.latency_percentile(99.9)
    }

    /// Completed queries per virtual second (goodput), over the run's
    /// makespan.
    pub fn qps(&self) -> f64 {
        let secs = self.metrics.makespan.as_nanos() as f64 / 1e9;
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of one measured *streaming* serving run: ad-hoc open-loop
/// arrivals interleaved with a feed replay and standing-query window
/// ticks (DESIGN.md §16). Ticks flow through the same admission control
/// as arrivals, so both populations share one shed budget.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Display name of the strategy that ran.
    pub strategy: &'static str,
    /// Ad-hoc queries offered by the arrival process.
    pub offered_arrivals: usize,
    /// Standing-query window ticks scheduled over the horizon.
    pub offered_ticks: usize,
    /// Queries shed (arrivals and ticks combined);
    /// `offered_arrivals + offered_ticks == completed + shed`.
    pub shed: u64,
    /// Aggregated run metrics over both populations.
    pub metrics: RunMetrics,
    /// Ad-hoc arrival outcomes, in completion order.
    pub arrival_outcomes: Vec<QueryOutcome>,
    /// Window-tick outcomes, sorted by (standing query, tick). The
    /// outcome's `session - sessions_pool` is the standing-query index
    /// and its `seq` the tick number.
    pub window_outcomes: Vec<QueryOutcome>,
    /// The measured run's event stream (includes `Append`, `EpochSeal`
    /// and `WindowFire`), when tracing was enabled.
    pub trace: Option<TraceData>,
    /// Cost-model observations of the measured run.
    pub model_samples: Vec<ModelUpdate>,
    /// Chunked-staging counters of the measured run.
    pub staging: StagingStats,
}

impl StreamingReport {
    /// Completed queries across both populations.
    pub fn completed(&self) -> usize {
        self.arrival_outcomes.len() + self.window_outcomes.len()
    }

    /// The `p`-th window-tick latency percentile (nearest-rank) — the
    /// streaming SLO headline: how stale a standing result gets.
    pub fn tick_percentile(&self, p: f64) -> VirtualTime {
        percentile(self.window_outcomes.iter().map(|o| o.latency), p)
    }

    /// 99th-percentile window-tick latency.
    pub fn tick_p99(&self) -> VirtualTime {
        self.tick_percentile(99.0)
    }

    /// The `p`-th ad-hoc arrival latency percentile (nearest-rank).
    pub fn arrival_percentile(&self, p: f64) -> VirtualTime {
        percentile(self.arrival_outcomes.iter().map(|o| o.latency), p)
    }

    /// Chrome-trace JSON of the measured run (feed lane included), when
    /// tracing was enabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace.as_ref().map(|t| chrome_trace_json(&t.events))
    }

    /// Counters and histograms derived from the measured run's event
    /// stream (`appends`, `window_fires`, `cache_evictions`, …). `None`
    /// when the run was untraced.
    pub fn metrics_registry(&self) -> Option<MetricsRegistry> {
        self.trace.as_ref().map(|t| MetricsRegistry::from_events(&t.events))
    }
}

/// Nearest-rank percentile over an unsorted latency iterator.
fn percentile(values: impl Iterator<Item = VirtualTime>, p: f64) -> VirtualTime {
    let mut v: Vec<VirtualTime> = values.collect();
    if v.is_empty() {
        return VirtualTime::ZERO;
    }
    v.sort();
    let p = p.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.saturating_sub(1)]
}

/// The serving runner: a database plus a simulated machine, driven by an
/// arrival process.
pub struct ServingRunner<'a> {
    db: &'a Database,
    config: SimConfig,
}

impl<'a> ServingRunner<'a> {
    /// A runner over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        ServingRunner { db, config }
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Generate the full arrival list for `cfg` over `mix` — times from
    /// the arrival process, then per arrival a uniformly drawn session
    /// and a mix-sampled template, all from one seeded generator.
    /// Empty for [`ArrivalProcess::Closed`].
    pub fn arrivals(mix: &QueryMix, cfg: &ServeConfig) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let times = cfg.process.schedule_with(cfg.horizon, &mut rng);
        let mut next_seq = vec![0u32; cfg.sessions.max(1)];
        times
            .into_iter()
            .map(|at| {
                let session = rng.gen_range(0..cfg.sessions.max(1));
                let template = mix.sample(&mut rng);
                let seq = next_seq[session];
                next_seq[session] += 1;
                Arrival {
                    at,
                    session: session as u32,
                    seq,
                    plan: mix.template(template).clone(),
                }
            })
            .collect()
    }

    /// Serve `mix` under `strategy`.
    pub fn run(
        &self,
        mix: &QueryMix,
        strategy: Strategy,
        cfg: &ServeConfig,
    ) -> Result<ServingReport, EngineError> {
        let mut policy = strategy.build();
        self.run_with_policy(mix, policy.as_mut(), strategy.name(), cfg)
    }

    /// Like [`ServingRunner::run`] with a caller-constructed policy.
    pub fn run_with_policy(
        &self,
        mix: &QueryMix,
        policy: &mut dyn PlacementPolicy,
        label: &'static str,
        cfg: &ServeConfig,
    ) -> Result<ServingReport, EngineError> {
        if let ArrivalProcess::Closed { users } = cfg.process {
            // Degenerate case: delegate to the closed-loop runner so the
            // two paths can never drift apart.
            let report = WorkloadRunner::new(self.db, self.config.clone()).run_with_policy(
                mix.templates(),
                policy,
                label,
                &cfg.closed_loop(users),
            )?;
            return Ok(ServingReport {
                strategy: report.strategy,
                offered: mix.len(),
                shed: report.metrics.shed,
                horizon: cfg.horizon,
                metrics: report.metrics,
                outcomes: report.outcomes,
                trace: report.trace,
                model_samples: report.model_samples,
                staging: report.staging,
            });
        }

        self.db.stats().reset();
        let executor = Executor::new(self.db, self.config.clone());
        // Caches persist from warm-up into the measured run, exactly as
        // in the closed-loop procedure.
        let mut cache = robustq_sim::CacheSet::for_topology(
            &self.config.topology,
            self.config.cache_policy,
        );

        let warm_opts = cfg.exec_options(false);
        for _ in 0..cfg.warmup_runs {
            executor.run_with_cache(
                WorkloadRunner::sessions(mix.templates(), 1),
                policy,
                &warm_opts,
                &mut cache,
            )?;
        }

        let arrivals = Self::arrivals(mix, cfg);
        let offered = arrivals.len();
        let opts = cfg.exec_options(true);
        let tracer = opts.tracer.clone();
        let out = executor.run_open_loop_with_cache(arrivals, policy, &opts, &mut cache)?;
        Ok(ServingReport {
            strategy: label,
            offered,
            shed: out.metrics.shed,
            horizon: cfg.horizon,
            metrics: out.metrics,
            outcomes: out.outcomes,
            trace: tracer.is_enabled().then(|| tracer.take()),
            model_samples: out.model_samples,
            staging: out.staging,
        })
    }

    /// Serve `mix` under `strategy` while replaying `feed` and firing
    /// `standing` window ticks (DESIGN.md §16).
    ///
    /// The database must be pre-built with every scheduled append batch
    /// already committed; the feed schedule replays those epochs in
    /// virtual time, interleaved with the arrival process's ad-hoc
    /// queries. Standing-query sessions are re-numbered above the
    /// arrival session pool (`cfg.sessions + index`), so the report can
    /// split the two populations. [`ArrivalProcess::Closed`] contributes
    /// no ad-hoc arrivals here — a pure standing-window run.
    pub fn run_streaming(
        &self,
        mix: &QueryMix,
        feed: FeedSchedule,
        standing: Vec<StandingQuery>,
        strategy: Strategy,
        cfg: &ServeConfig,
    ) -> Result<StreamingReport, EngineError> {
        let mut policy = strategy.build();
        self.run_streaming_with_policy(mix, feed, standing, policy.as_mut(), strategy.name(), cfg)
    }

    /// Like [`ServingRunner::run_streaming`] with a caller-constructed
    /// policy.
    pub fn run_streaming_with_policy(
        &self,
        mix: &QueryMix,
        feed: FeedSchedule,
        mut standing: Vec<StandingQuery>,
        policy: &mut dyn PlacementPolicy,
        label: &'static str,
        cfg: &ServeConfig,
    ) -> Result<StreamingReport, EngineError> {
        let pool = cfg.sessions.max(1) as u32;
        for (i, sq) in standing.iter_mut().enumerate() {
            sq.session = pool + i as u32;
        }
        let offered_ticks = standing.iter().map(|s| s.ticks as usize).sum();

        self.db.stats().reset();
        let executor = Executor::new(self.db, self.config.clone());
        let mut cache = robustq_sim::CacheSet::for_topology(
            &self.config.topology,
            self.config.cache_policy,
        );

        // Warm caches on the ad-hoc templates *and* the standing plans:
        // a standing query's first tick should find its columns resident
        // just like a repeated ad-hoc template would.
        let mut warm_templates = mix.templates().to_vec();
        warm_templates.extend(standing.iter().map(|s| s.plan.clone()));
        let warm_opts = cfg.exec_options(false);
        for _ in 0..cfg.warmup_runs {
            executor.run_with_cache(
                WorkloadRunner::sessions(&warm_templates, 1),
                policy,
                &warm_opts,
                &mut cache,
            )?;
        }

        let arrivals = match cfg.process {
            ArrivalProcess::Closed { .. } => Vec::new(),
            _ => Self::arrivals(mix, cfg),
        };
        let offered_arrivals = arrivals.len();
        let opts = cfg.exec_options(true);
        let tracer = opts.tracer.clone();
        let out =
            executor.run_streaming_with_cache(arrivals, feed, standing, policy, &opts, &mut cache)?;
        let (mut window_outcomes, arrival_outcomes): (Vec<_>, Vec<_>) =
            out.outcomes.into_iter().partition(|o| o.session >= pool as usize);
        window_outcomes.sort_by_key(|o| (o.session, o.seq));
        Ok(StreamingReport {
            strategy: label,
            offered_arrivals,
            offered_ticks,
            shed: out.metrics.shed,
            metrics: out.metrics,
            arrival_outcomes,
            window_outcomes,
            trace: tracer.is_enabled().then(|| tracer.take()),
            model_samples: out.model_samples,
            staging: out.staging,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::gen::ssb::SsbGenerator;
    use robustq_workloads::micro;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    fn mix() -> QueryMix {
        QueryMix::uniform(micro::parallel_selection_workload(4))
    }

    #[test]
    fn open_loop_completes_all_arrivals_when_unloaded() {
        let db = db();
        let runner = ServingRunner::new(&db, SimConfig::default());
        let cfg = ServeConfig::new(
            ArrivalProcess::Uniform { rate_qps: 50.0 },
            VirtualTime::from_millis(100),
        )
        .with_sessions(8);
        let report = runner.run(&mix(), Strategy::CpuOnly, &cfg).unwrap();
        assert_eq!(report.offered, 5);
        assert_eq!(report.completed(), 5);
        assert_eq!(report.shed, 0);
        assert!(report.p99() >= report.p50());
        assert!(report.qps() > 0.0);
    }

    #[test]
    fn offered_equals_completed_plus_shed_under_overload() {
        let db = db();
        let runner = ServingRunner::new(&db, SimConfig::default());
        let cfg = ServeConfig::new(
            ArrivalProcess::Poisson { rate_qps: 2_000_000.0 },
            VirtualTime::from_millis(5),
        )
        .with_seed(9)
        .with_admission_limit(1)
        .with_queue_cap(2);
        let report = runner.run(&mix(), Strategy::CpuOnly, &cfg).unwrap();
        assert!(report.offered > 0);
        assert_eq!(report.offered, report.completed() + report.shed as usize);
        assert!(report.shed > 0, "expected overload shedding");
    }

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let cfg = ServeConfig::new(
            ArrivalProcess::Poisson { rate_qps: 10_000.0 },
            VirtualTime::from_millis(20),
        )
        .with_seed(7);
        let a = ServingRunner::arrivals(&mix(), &cfg);
        let b = ServingRunner::arrivals(&mix(), &cfg);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.session == y.session && x.seq == y.seq));
    }

    #[test]
    fn closed_process_routes_to_closed_loop() {
        let db = db();
        let runner = ServingRunner::new(&db, SimConfig::default());
        let cfg = ServeConfig::new(ArrivalProcess::Closed { users: 2 }, VirtualTime::ZERO);
        let report = runner.run(&mix(), Strategy::CpuOnly, &cfg).unwrap();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.shed, 0);
        assert_eq!(report.offered, 4);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let report = ServingReport {
            strategy: "test",
            offered: 100,
            shed: 0,
            horizon: VirtualTime::ZERO,
            metrics: RunMetrics::default(),
            outcomes: (1..=100)
                .map(|ms| QueryOutcome {
                    session: 0,
                    seq: 0,
                    latency: VirtualTime::from_millis(ms),
                    admit_wait: VirtualTime::from_millis(ms / 2),
                    rows: 0,
                    checksum: 0,
                    faults: Default::default(),
                    result: None,
                })
                .collect(),
            trace: None,
            model_samples: vec![],
            staging: StagingStats::default(),
        };
        assert_eq!(report.p50(), VirtualTime::from_millis(50));
        assert_eq!(report.p99(), VirtualTime::from_millis(99));
        assert_eq!(report.p999(), VirtualTime::from_millis(100));
        assert_eq!(report.admit_wait_percentile(50.0), VirtualTime::from_millis(25));
    }
}
