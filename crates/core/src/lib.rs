#![warn(missing_docs)]

//! Robust operator placement for co-processor-accelerated databases.
//!
//! This crate is the paper's primary contribution, rebuilt as a library:
//!
//! * [`hype`] — a HyPE-style *learned* cost estimator: per
//!   (operator class, device) online linear regressions fitted from
//!   observed operator durations, never from the simulator's ground-truth
//!   model (Sections 2.5, 5.2);
//! * [`placement_mgr`] — the data placement manager: access-frequency
//!   statistics drive Algorithm 1, pinning the hottest columns into the
//!   co-processor cache (Section 3.2), with LFU and LRU variants
//!   (Appendix E);
//! * [`strategies`] — the placement strategies compared in the paper's
//!   evaluation:
//!   - [`strategies::CpuOnly`] / [`strategies::GpuPreferred`] — the
//!     single-device references,
//!   - [`strategies::CriticalPath`] — CoGaDB's default compile-time
//!     iterative-refinement optimizer (Appendix D),
//!   - [`strategies::DataDriven`] — data-driven operator placement
//!     (Section 3),
//!   - [`strategies::RuntimePlacement`] — tactical run-time placement
//!     (Section 4),
//!   - [`strategies::Chopping`] — query chopping: run-time placement plus
//!     a per-device thread pool (Section 5),
//!   - [`strategies::DataDrivenChopping`] — the combined, robust strategy
//!     (Section 5.4).

pub mod costmodel;
pub mod hype;
pub mod placement_mgr;
pub mod strategies;

pub use costmodel::{build_cost_model, AdaptiveCostModel, StaticCostModel};
pub use hype::HypeEstimator;
pub use placement_mgr::{DataPlacementManager, PlacementPolicyKind};
pub use strategies::{
    Chopping, CpuOnly, CriticalPath, DataDriven, DataDrivenChopping, GpuPreferred,
    RuntimePlacement, Strategy,
};
