//! Single-device reference strategies.

use robustq_engine::{Placement, PlacementPolicy, PolicyCtx, TaskInfo};
use robustq_sim::DeviceId;

/// Execute everything on the CPU (the paper's CPU-Only reference).
#[derive(Debug, Default, Clone)]
pub struct CpuOnly;

impl PlacementPolicy for CpuOnly {
    fn name(&self) -> &'static str {
        "CPU Only"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], _ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        vec![Some(Placement::fixed(DeviceId::Cpu)); tasks.len()]
    }
}

/// Execute everything on a co-processor, falling back to the CPU only
/// when an operator aborts (the paper's *GPU Preferred* / GPU-Only
/// reference, Section 6.2). Operator-driven data placement at compile
/// time: columns are cached on access, and successors of an aborted
/// operator stay on the GPU — the Figure 8 pathology.
///
/// On a multi-co-processor topology each query is pinned whole to the
/// least-loaded co-processor at admission (ties to the lowest index, so
/// a single-GPU machine behaves exactly as before); the strategy still
/// never places anything on the CPU deliberately.
#[derive(Debug, Default, Clone)]
pub struct GpuPreferred;

impl PlacementPolicy for GpuPreferred {
    fn name(&self) -> &'static str {
        "GPU Only"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        let device = ctx.least_loaded_coprocessor().unwrap_or(DeviceId::Cpu);
        vec![Some(Placement::fixed(device)); tasks.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::runtime::test_support::{empty_db, fixture, fixture_k, task};
    use robustq_sim::VirtualTime;

    #[test]
    fn cpu_only_annotates_cpu() {
        let db = empty_db();
        let fx = fixture(0);
        let mut p = CpuOnly;
        assert_eq!(
            p.plan_query(&[task(100), task(100)], &fx.ctx(&db)),
            vec![Some(Placement::fixed(DeviceId::Cpu)); 2]
        );
    }

    #[test]
    fn gpu_preferred_annotates_gpu_and_caches_on_miss() {
        let db = empty_db();
        let fx = fixture(0);
        let mut p = GpuPreferred;
        assert_eq!(
            p.plan_query(&[task(100)], &fx.ctx(&db)),
            vec![Some(Placement::fixed(DeviceId::Gpu))]
        );
        assert!(p.caches_on_miss());
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX);
    }

    #[test]
    fn gpu_preferred_spreads_queries_across_the_fleet() {
        let db = empty_db();
        let fx = fixture_k(2, 0);
        let mut ctx = fx.ctx(&db);
        let mut p = GpuPreferred;
        let g2 = DeviceId::coprocessor(2);
        // Idle fleet: ties to the lowest index (GPU1).
        assert_eq!(
            p.plan_query(&[task(100)], &ctx),
            vec![Some(Placement::fixed(DeviceId::Gpu))]
        );
        // GPU1 busy: the next query lands whole on GPU2.
        ctx.queued_work[DeviceId::Gpu] = VirtualTime::from_micros(50);
        assert_eq!(
            p.plan_query(&[task(100), task(100)], &ctx),
            vec![Some(Placement::fixed(g2)); 2]
        );
    }
}
