//! Single-device reference strategies.

use robustq_engine::{Placement, PlacementPolicy, PolicyCtx, TaskInfo};
use robustq_sim::DeviceId;

/// Execute everything on the CPU (the paper's CPU-Only reference).
#[derive(Debug, Default, Clone)]
pub struct CpuOnly;

impl PlacementPolicy for CpuOnly {
    fn name(&self) -> &'static str {
        "CPU Only"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], _ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        vec![Some(Placement::fixed(DeviceId::Cpu)); tasks.len()]
    }
}

/// Execute everything on the co-processor, falling back to the CPU only
/// when an operator aborts (the paper's *GPU Preferred* / GPU-Only
/// reference, Section 6.2). Operator-driven data placement at compile
/// time: columns are cached on access, and successors of an aborted
/// operator stay on the GPU — the Figure 8 pathology.
#[derive(Debug, Default, Clone)]
pub struct GpuPreferred;

impl PlacementPolicy for GpuPreferred {
    fn name(&self) -> &'static str {
        "GPU Only"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], _ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        vec![Some(Placement::fixed(DeviceId::Gpu)); tasks.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::{CachePolicy, DataCache, OpClass, PerDevice, VirtualTime};
    use robustq_storage::Database;

    fn ctx_fixture<'a>(db: &'a Database, cache: &'a DataCache) -> PolicyCtx<'a> {
        PolicyCtx {
            db,
            cache,
            queued_work: PerDevice::splat(VirtualTime::ZERO),
            running: PerDevice::splat(0),
            gpu_heap_free: 0,
            now: VirtualTime::ZERO,
        }
    }

    fn info() -> TaskInfo {
        TaskInfo {
            query: 0,
            task: 0,
            op_class: OpClass::Selection,
            base_columns: vec![],
            bytes_in: 100,
            bytes_out_estimate: 10,
            children_devices: vec![],
            children_bytes: vec![],
            children_tasks: vec![],
            was_aborted: false,
        }
    }

    #[test]
    fn cpu_only_annotates_cpu() {
        let db = Database::new();
        let cache = DataCache::new(0, CachePolicy::Lru);
        let mut p = CpuOnly;
        assert_eq!(
            p.plan_query(&[info(), info()], &ctx_fixture(&db, &cache)),
            vec![Some(Placement::fixed(DeviceId::Cpu)); 2]
        );
    }

    #[test]
    fn gpu_preferred_annotates_gpu_and_caches_on_miss() {
        let db = Database::new();
        let cache = DataCache::new(0, CachePolicy::Lru);
        let mut p = GpuPreferred;
        assert_eq!(
            p.plan_query(&[info()], &ctx_fixture(&db, &cache)),
            vec![Some(Placement::fixed(DeviceId::Gpu))]
        );
        assert!(p.caches_on_miss());
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX);
    }
}
