//! Run-time operator placement (Section 4).
//!
//! Placement is deferred to the moment an operator becomes ready: all
//! input cardinalities are exact, faults have already been observed (an
//! aborted child's output resides on the CPU, so the successor naturally
//! follows it there — avoiding the Figure 8 pathology), and HyPE's load
//! tracking per ready queue steers the choice. Every device in the
//! topology is a candidate: the placer ranks the CPU and all K
//! co-processors by estimated completion time.

use crate::costmodel::build_cost_model;
use robustq_engine::{
    CostModel, CostModelKind, ModelUpdate, Placement, PlacementPolicy, PlaceReason,
    PolicyCtx, TaskInfo,
};
use robustq_sim::{partition_bytes, DeviceId, OpClass, PerDevice, VirtualTime};
use std::collections::BTreeMap;

/// The shared run-time placement logic: estimated-completion-time
/// minimization over all devices, using learned kernel models plus
/// measured transfer bandwidth.
#[derive(Debug, Clone)]
pub struct RuntimePlacer {
    /// The learned kernel/transfer models behind the unified
    /// [`CostModel`] surface ([`StaticCostModel`](crate::StaticCostModel)
    /// by default).
    model: Box<dyn CostModel>,
    /// Memoized device per `(standing query, task slot)`: a standing
    /// query re-submits the same plan every window tick, so the first
    /// tick's ranked decision is reused for later ticks
    /// ([`PlaceReason::Recurring`]) as long as the device stays viable.
    recurring: BTreeMap<(u32, u32), DeviceId>,
}

impl Default for RuntimePlacer {
    fn default() -> Self {
        RuntimePlacer {
            model: build_cost_model(CostModelKind::Static),
            recurring: BTreeMap::new(),
        }
    }
}

impl RuntimePlacer {
    /// A placer with unfitted models (cold-start priors).
    pub fn new() -> Self {
        Self::default()
    }

    /// The active cost model (tests and reports inspect learned state).
    pub fn model(&self) -> &dyn CostModel {
        &*self.model
    }

    /// Swap the cost model for the kind an executor run requests. The
    /// learned state survives when the kind is already active — warm-up
    /// runs train the model the measured run uses.
    pub fn set_cost_model(&mut self, kind: CostModelKind) {
        if self.model.kind() != kind {
            self.model = build_cost_model(kind);
        }
    }

    /// Bytes that would have to cross `device`'s host link host→device
    /// for `task` to run there. A child resident on *another*
    /// co-processor has no direct link, so its output crosses twice
    /// (device→host, then host→device).
    fn h2d_bytes(&self, task: &TaskInfo, device: DeviceId, ctx: &PolicyCtx) -> u64 {
        let mut bytes = 0;
        for &col in &task.base_columns {
            let full = ctx.db.column_size(col);
            match task.shard {
                // A shard stages only its slice, resident under either
                // the matching partition key or the whole column (both at
                // the column's current data epoch — stale residency from
                // before an append re-transfers).
                Some(s) => {
                    let cache = ctx.cache(device);
                    if !cache.contains(ctx.partition_key(col, s.index, s.of))
                        && !cache.contains(ctx.column_key(col))
                    {
                        bytes += partition_bytes(full, s.index, s.of);
                    }
                }
                None => {
                    if !ctx.cache(device).contains(ctx.column_key(col)) {
                        bytes += full;
                    }
                }
            }
        }
        for (&dev, &b) in task.children_devices.iter().zip(&task.children_bytes) {
            if dev == device {
                continue;
            }
            bytes += if dev.is_coprocessor() { 2 * b } else { b };
        }
        bytes
    }

    /// Bytes that would have to cross back device→host if the task ran
    /// on the CPU (every child resident on a co-processor).
    fn d2h_bytes(&self, task: &TaskInfo) -> u64 {
        task.children_devices
            .iter()
            .zip(&task.children_bytes)
            .filter(|(dev, _)| dev.is_coprocessor())
            .map(|(_, b)| b)
            .sum()
    }

    /// Estimated completion time of `task` on `device`.
    pub fn completion_estimate(
        &self,
        task: &TaskInfo,
        device: DeviceId,
        ctx: &PolicyCtx,
    ) -> VirtualTime {
        let kernel = self.model.estimate(
            task.op_class,
            device,
            task.bytes_in,
            task.bytes_out_estimate,
        );
        let transfer = if device.is_coprocessor() {
            self.model.estimate_transfer(self.h2d_bytes(task, device, ctx))
        } else {
            self.model.estimate_transfer(self.d2h_bytes(task))
        };
        ctx.queued_work.get_padded(device) + transfer + kernel
    }

    /// Pick the device with the smallest estimated completion time (ties
    /// go to the lower device index, so the CPU — the risk-free side —
    /// wins exact draws). The returned [`Placement`] carries all
    /// estimates so the decision is auditable from the trace.
    ///
    /// One advantage of placing at run time (Section 4): current heap
    /// usage and co-processor occupancy are observable. The admission
    /// check is deliberately crude — it projects this task's input size
    /// onto the already-running operators (2× input each, below the real
    /// 3.25× selection footprint) — so heterogeneous workloads still
    /// cause aborts, just fewer than blind compile-time placement
    /// (Figure 13's middle curve). Each co-processor is vetoed
    /// independently; when every co-processor is under heap pressure the
    /// task falls back to the CPU with [`PlaceReason::HeapPressure`].
    pub fn choose(&self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        let est = PerDevice::from_fn(ctx.topology.device_count(), |d| {
            self.completion_estimate(task, d, ctx)
        });
        let coproc_count = ctx.topology.coprocessor_count();
        let eligible: Vec<DeviceId> = ctx
            .coprocessors()
            .filter(|&d| {
                let projected = (1 + ctx.running.get_padded(d) as u64)
                    .saturating_mul(task.bytes_in.saturating_mul(2));
                ctx.heap_free.get_padded(d) >= projected
            })
            .collect();
        if coproc_count > 0 && eligible.is_empty() {
            return Placement::modeled(DeviceId::Cpu, est)
                .because(PlaceReason::HeapPressure);
        }
        // Intra-operator sharding: sibling shards all become ready at
        // once with near-identical estimates, so argmin would pile every
        // one onto the same winner. Rank the eligible co-processors by
        // estimate and deal shard `i` to the `i`-th best (mod fleet),
        // spreading the pieces so the operator's makespan scales with K.
        if let Some(s) = task.shard {
            if !eligible.is_empty() {
                let mut ranked = eligible.clone();
                ranked.sort_by(|&a, &b| {
                    est[a].cmp(&est[b]).then(a.index().cmp(&b.index()))
                });
                let device = ranked[s.index as usize % ranked.len()];
                return Placement::modeled(device, est)
                    .because(PlaceReason::ShardSpread);
            }
        }
        let mut device = DeviceId::Cpu;
        for &d in &eligible {
            if est[d] < est[device] {
                device = d;
            }
        }
        Placement::modeled(device, est)
    }

    /// [`RuntimePlacer::choose`] with standing-query memoization: the
    /// first time a `(standing, slot)` pair is placed, the ranked choice
    /// is recorded; later window ticks reuse that device with
    /// [`PlaceReason::Recurring`] — skipping the ranking — as long as it
    /// still passes the heap veto. An abort or a failed veto drops the
    /// memo and re-ranks (the fleet may have changed shape). Tasks of
    /// ordinary queries (`recurring == None`) always take the plain path.
    pub fn choose_recurring(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        let Some(slot) = task.recurring else {
            return self.choose(task, ctx);
        };
        if task.was_aborted {
            self.recurring.remove(&slot);
            return self.choose(task, ctx);
        }
        if let Some(&device) = self.recurring.get(&slot) {
            let viable = !device.is_coprocessor() || {
                let projected = (1 + ctx.running.get_padded(device) as u64)
                    .saturating_mul(task.bytes_in.saturating_mul(2));
                ctx.heap_free.get_padded(device) >= projected
            };
            if viable {
                return Placement::fixed(device).because(PlaceReason::Recurring);
            }
            self.recurring.remove(&slot);
        }
        let placed = self.choose(task, ctx);
        self.recurring.insert(slot, placed.device);
        placed
    }

    /// Feed one completed-operator observation to the models and report
    /// the predicted-vs-actual sample.
    pub fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> ModelUpdate {
        self.model.observe(op_class, device, bytes_in, bytes_out, kernel, span)
    }
}

/// Plain run-time placement: tactical decisions at execution time, no
/// concurrency bound (Section 4 / Figure 9).
#[derive(Debug, Clone, Default)]
pub struct RuntimePlacement {
    placer: RuntimePlacer,
}

impl RuntimePlacement {
    /// Run-time placement with unfitted models.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying placer (and its learned models).
    pub fn placer(&self) -> &RuntimePlacer {
        &self.placer
    }
}

impl PlacementPolicy for RuntimePlacement {
    fn name(&self) -> &'static str {
        "Run-Time Placement"
    }

    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        self.placer.choose_recurring(task, ctx)
    }

    fn set_cost_model(&mut self, kind: CostModelKind) {
        self.placer.set_cost_model(kind);
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> Option<ModelUpdate> {
        Some(self.placer.observe(op_class, device, bytes_in, bytes_out, kernel, span))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use robustq_sim::{CachePolicy, CacheSet, DataCache, DeviceSpec, LinkParams, Topology};
    use robustq_storage::Database;

    pub fn empty_db() -> Database {
        Database::new()
    }

    /// Owns the topology + caches a [`PolicyCtx`] borrows from.
    pub struct Fixture {
        pub topology: Topology,
        pub caches: CacheSet,
    }

    /// A 1-CPU + `k`-co-processor fixture; every co-processor cache has
    /// `cache_capacity` bytes.
    pub fn fixture_k(k: usize, cache_capacity: u64) -> Fixture {
        let mut topology = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1 << 30, cache_capacity),
            LinkParams::default(),
        );
        for _ in 1..k {
            topology = topology.with_coprocessor(
                DeviceSpec::coprocessor(4, 1 << 30, cache_capacity),
                LinkParams::default(),
            );
        }
        let caches = CacheSet::for_topology(&topology, CachePolicy::Lru);
        Fixture { topology, caches }
    }

    /// The classic single-GPU fixture.
    pub fn fixture(cache_capacity: u64) -> Fixture {
        fixture_k(1, cache_capacity)
    }

    impl Fixture {
        pub fn ctx<'a>(&'a self, db: &'a Database) -> PolicyCtx<'a> {
            let n = self.topology.device_count();
            PolicyCtx {
                db,
                topology: &self.topology,
                caches: &self.caches,
                queued_work: PerDevice::splat(VirtualTime::ZERO, n),
                running: PerDevice::splat(0, n),
                heap_free: PerDevice::splat(u64::MAX, n),
                now: VirtualTime::ZERO,
                col_epochs: &[],
            }
        }

        pub fn cache_mut(&mut self, device: DeviceId) -> &mut DataCache {
            self.caches.device_mut(device)
        }
    }

    pub fn task(bytes_in: u64) -> TaskInfo {
        TaskInfo {
            query: 0,
            task: 0,
            op_class: OpClass::Selection,
            base_columns: vec![],
            bytes_in,
            bytes_out_estimate: bytes_in / 10,
            children_devices: vec![],
            children_bytes: vec![],
            children_tasks: vec![],
            was_aborted: false,
            shard: None,
            recurring: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    /// Teach the estimator that a co-processor is much faster.
    fn trained_placer(devices: &[DeviceId]) -> RuntimePlacer {
        let mut p = RuntimePlacer::new();
        for mb in [1u64, 4, 16, 64] {
            let b = mb * 1_000_000;
            for &d in devices {
                let rate = if d.is_coprocessor() { 30.0e9 } else { 10.0e9 };
                p.observe(
                    OpClass::Selection,
                    d,
                    b,
                    0,
                    VirtualTime::from_secs_f64(b as f64 / rate),
                    VirtualTime::from_secs_f64(b as f64 / rate),
                );
            }
        }
        p
    }

    #[test]
    fn prefers_gpu_when_data_is_resident() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu]);
        // No base columns, children on GPU: zero transfer either way in
        // h2d, but CPU placement would pull the child back.
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Gpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
    }

    #[test]
    fn prefers_cpu_when_transfer_dominates() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu]);
        // Child output is on the CPU: the GPU pays a 1.2 GB/s copy that
        // dwarfs the kernel speedup.
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Cpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn load_balancing_diverts_from_busy_device() {
        let db = empty_db();
        let fx = fixture(0);
        let mut ctx = fx.ctx(&db);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu]);
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Gpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
        // Pile an hour of queued work on the GPU: go CPU despite transfer.
        ctx.queued_work[DeviceId::Gpu] = VirtualTime::from_secs_f64(3_600.0);
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn spreads_across_coprocessors_by_load() {
        let db = empty_db();
        let fx = fixture_k(2, 0);
        let mut ctx = fx.ctx(&db);
        let g2 = DeviceId::coprocessor(2);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu, g2]);
        let t = task(8_000_000);
        // Identical estimates: ties go to the lower index — GPU1.
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
        // Load up GPU1: the second co-processor takes over.
        ctx.queued_work[DeviceId::Gpu] = VirtualTime::from_secs_f64(3_600.0);
        assert_eq!(placer.choose(&t, &ctx).device, g2);
    }

    #[test]
    fn sibling_coprocessor_residency_pays_two_hops() {
        let db = empty_db();
        let fx = fixture_k(2, 0);
        let ctx = fx.ctx(&db);
        let g2 = DeviceId::coprocessor(2);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu, g2]);
        // Child output lives on GPU2: running on GPU2 is free of
        // transfers, running on GPU1 pays two bus crossings.
        let mut t = task(8_000_000);
        t.children_devices = vec![g2];
        t.children_bytes = vec![8_000_000];
        let placed = placer.choose(&t, &ctx);
        assert_eq!(placed.device, g2);
        assert!(placed.est[DeviceId::Gpu] > placed.est[DeviceId::Cpu]);
    }

    #[test]
    fn per_device_heap_veto_falls_back() {
        let db = empty_db();
        let fx = fixture_k(2, 0);
        let mut ctx = fx.ctx(&db);
        let g2 = DeviceId::coprocessor(2);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu, g2]);
        let t = task(8_000_000);
        // GPU1 has no heap room: the fleet still absorbs the task on GPU2.
        ctx.heap_free[DeviceId::Gpu] = 0;
        let placed = placer.choose(&t, &ctx);
        assert_eq!(placed.device, g2);
        assert_eq!(placed.reason, PlaceReason::CostModel);
        // All co-processors under pressure: CPU with an explicit reason.
        ctx.heap_free[g2] = 0;
        let placed = placer.choose(&t, &ctx);
        assert_eq!(placed.device, DeviceId::Cpu);
        assert_eq!(placed.reason, PlaceReason::HeapPressure);
    }

    #[test]
    fn shards_deal_across_the_fleet_instead_of_argmin() {
        let db = empty_db();
        let fx = fixture_k(2, 0);
        let ctx = fx.ctx(&db);
        let g2 = DeviceId::coprocessor(2);
        let placer = trained_placer(&[DeviceId::Cpu, DeviceId::Gpu, g2]);
        // Two sibling shards with identical estimates: argmin would put
        // both on GPU1; the dealer hands shard 1 to GPU2.
        let mut devices = Vec::new();
        for index in 0..2u32 {
            let mut t = task(8_000_000);
            t.shard = Some(robustq_engine::ShardSpec { index, of: 2 });
            let placed = placer.choose(&t, &ctx);
            assert_eq!(placed.reason, PlaceReason::ShardSpread);
            devices.push(placed.device);
        }
        assert_eq!(devices, vec![DeviceId::Gpu, g2]);
    }

    #[test]
    fn untrained_placer_uses_priors_and_still_decides() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let placer = RuntimePlacer::new();
        let t = task(1_000_000);
        // With the default priors (GPU 3× faster, no transfers needed)
        // the GPU wins.
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
    }

    #[test]
    fn runtime_placement_policy_delegates() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut p = RuntimePlacement::new();
        assert_eq!(p.name(), "Run-Time Placement");
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX, "no chopping");
        let t = task(1_000_000);
        let placed = p.place_ready(&t, &ctx);
        assert_eq!(placed.device, DeviceId::Gpu);
        assert!(placed.est[DeviceId::Cpu] > placed.est[DeviceId::Gpu]);
        let u = p
            .observe(
                OpClass::Selection,
                placed.device,
                1,
                1,
                VirtualTime::from_micros(1),
                VirtualTime::from_micros(1),
            )
            .expect("runtime placement reports samples");
        assert!(!u.refined, "default model is static");
        assert_eq!(p.placer().model().total_observations(), 1);
    }

    #[test]
    fn set_cost_model_swaps_only_on_kind_change() {
        let mut p = RuntimePlacer::new();
        p.observe(
            OpClass::Selection,
            DeviceId::Gpu,
            8,
            4,
            VirtualTime::from_micros(1),
            VirtualTime::from_micros(1),
        );
        // Same kind: learned state survives (warm-up → measured run).
        p.set_cost_model(CostModelKind::Static);
        assert_eq!(p.model().total_observations(), 1);
        // Kind change: fresh model of the new kind.
        p.set_cost_model(CostModelKind::Adaptive { seed: 11 });
        assert_eq!(p.model().name(), "adaptive");
        assert_eq!(p.model().total_observations(), 0);
        let u = p
            .observe(
                OpClass::Selection,
                DeviceId::Gpu,
                8,
                4,
                VirtualTime::from_micros(1),
                VirtualTime::from_micros(1),
            );
        assert!(u.refined, "adaptive samples refine");
        // Same adaptive seed again: still no rebuild.
        p.set_cost_model(CostModelKind::Adaptive { seed: 11 });
        assert_eq!(p.model().total_observations(), 1);
    }
}
