//! Run-time operator placement (Section 4).
//!
//! Placement is deferred to the moment an operator becomes ready: all
//! input cardinalities are exact, faults have already been observed (an
//! aborted child's output resides on the CPU, so the successor naturally
//! follows it there — avoiding the Figure 8 pathology), and HyPE's load
//! tracking per ready queue steers the choice.

use crate::hype::HypeEstimator;
use robustq_engine::{Placement, PlacementPolicy, PlaceReason, PolicyCtx, TaskInfo};
use robustq_sim::{CacheKey, DeviceId, OpClass, PerDevice, VirtualTime};

/// The shared run-time placement logic: estimated-completion-time
/// minimization over both devices, using learned kernel models plus
/// measured transfer bandwidth.
#[derive(Debug, Clone, Default)]
pub struct RuntimePlacer {
    /// The learned kernel/transfer models.
    pub hype: HypeEstimator,
}

impl RuntimePlacer {
    /// A placer with unfitted models (cold-start priors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes that would have to cross the bus host→device for `task`.
    fn h2d_bytes(&self, task: &TaskInfo, ctx: &PolicyCtx) -> u64 {
        let mut bytes = 0;
        for &col in &task.base_columns {
            if !ctx.cache.contains(CacheKey(col.0 as u64)) {
                bytes += ctx.db.column_size(col);
            }
        }
        for (dev, b) in task.children_devices.iter().zip(&task.children_bytes) {
            if *dev == DeviceId::Cpu {
                bytes += b;
            }
        }
        bytes
    }

    /// Bytes that would have to cross the bus device→host if the task ran
    /// on the CPU.
    fn d2h_bytes(&self, task: &TaskInfo) -> u64 {
        task.children_devices
            .iter()
            .zip(&task.children_bytes)
            .filter(|(dev, _)| **dev == DeviceId::Gpu)
            .map(|(_, b)| b)
            .sum()
    }

    /// Estimated completion time of `task` on `device`.
    pub fn completion_estimate(
        &self,
        task: &TaskInfo,
        device: DeviceId,
        ctx: &PolicyCtx,
    ) -> VirtualTime {
        let kernel = self.hype.estimate(
            task.op_class,
            device,
            task.bytes_in,
            task.bytes_out_estimate,
        );
        let transfer = match device {
            DeviceId::Gpu => self.hype.estimate_transfer(self.h2d_bytes(task, ctx)),
            DeviceId::Cpu => self.hype.estimate_transfer(self.d2h_bytes(task)),
        };
        ctx.queued_work[device] + transfer + kernel
    }

    /// Pick the device with the smaller estimated completion time
    /// (ties go to the CPU — the risk-free side). The returned
    /// [`Placement`] carries both estimates so the decision is auditable
    /// from the trace.
    ///
    /// One advantage of placing at run time (Section 4): current heap
    /// usage and co-processor occupancy are observable. The admission
    /// check is deliberately crude — it projects this task's input size
    /// onto the already-running operators (2× input each, below the real
    /// 3.25× selection footprint) — so heterogeneous workloads still
    /// cause aborts, just fewer than blind compile-time placement
    /// (Figure 13's middle curve).
    pub fn choose(&self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        let cpu = self.completion_estimate(task, DeviceId::Cpu, ctx);
        let gpu = self.completion_estimate(task, DeviceId::Gpu, ctx);
        let est = PerDevice::new(cpu, gpu);
        let projected = (1 + ctx.running[DeviceId::Gpu] as u64)
            .saturating_mul(task.bytes_in.saturating_mul(2));
        if ctx.gpu_heap_free < projected {
            return Placement::modeled(DeviceId::Cpu, est)
                .because(PlaceReason::HeapPressure);
        }
        let device = if gpu < cpu { DeviceId::Gpu } else { DeviceId::Cpu };
        Placement::modeled(device, est)
    }

    /// Feed one completed-operator observation to the models.
    pub fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        duration: VirtualTime,
    ) {
        self.hype.observe(op_class, device, bytes_in, bytes_out, duration);
    }
}

/// Plain run-time placement: tactical decisions at execution time, no
/// concurrency bound (Section 4 / Figure 9).
#[derive(Debug, Clone, Default)]
pub struct RuntimePlacement {
    placer: RuntimePlacer,
}

impl RuntimePlacement {
    /// Run-time placement with unfitted models.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying placer (and its learned models).
    pub fn placer(&self) -> &RuntimePlacer {
        &self.placer
    }
}

impl PlacementPolicy for RuntimePlacement {
    fn name(&self) -> &'static str {
        "Run-Time Placement"
    }

    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        self.placer.choose(task, ctx)
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        duration: VirtualTime,
    ) {
        self.placer.observe(op_class, device, bytes_in, bytes_out, duration);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use robustq_sim::{CachePolicy, DataCache};
    use robustq_storage::Database;

    pub fn empty_db() -> Database {
        Database::new()
    }

    pub fn cache(capacity: u64) -> DataCache {
        DataCache::new(capacity, CachePolicy::Lru)
    }

    pub fn ctx<'a>(db: &'a Database, cache: &'a DataCache) -> PolicyCtx<'a> {
        PolicyCtx {
            db,
            cache,
            queued_work: PerDevice::splat(VirtualTime::ZERO),
            running: PerDevice::splat(0),
            gpu_heap_free: u64::MAX,
            now: VirtualTime::ZERO,
        }
    }

    pub fn task(bytes_in: u64) -> TaskInfo {
        TaskInfo {
            query: 0,
            task: 0,
            op_class: OpClass::Selection,
            base_columns: vec![],
            bytes_in,
            bytes_out_estimate: bytes_in / 10,
            children_devices: vec![],
            children_bytes: vec![],
            children_tasks: vec![],
            was_aborted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    /// Teach the estimator that the GPU is much faster.
    fn trained_placer() -> RuntimePlacer {
        let mut p = RuntimePlacer::new();
        for mb in [1u64, 4, 16, 64] {
            let b = mb * 1_000_000;
            p.observe(
                OpClass::Selection,
                DeviceId::Cpu,
                b,
                0,
                VirtualTime::from_secs_f64(b as f64 / 10.0e9),
            );
            p.observe(
                OpClass::Selection,
                DeviceId::Gpu,
                b,
                0,
                VirtualTime::from_secs_f64(b as f64 / 30.0e9),
            );
        }
        p
    }

    #[test]
    fn prefers_gpu_when_data_is_resident() {
        let db = empty_db();
        let cache = cache(0);
        let ctx = ctx(&db, &cache);
        let placer = trained_placer();
        // No base columns, children on GPU: zero transfer either way in
        // h2d, but CPU placement would pull the child back.
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Gpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
    }

    #[test]
    fn prefers_cpu_when_transfer_dominates() {
        let db = empty_db();
        let cache = cache(0);
        let ctx = ctx(&db, &cache);
        let placer = trained_placer();
        // Child output is on the CPU: the GPU pays a 1.2 GB/s copy that
        // dwarfs the kernel speedup.
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Cpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn load_balancing_diverts_from_busy_device() {
        let db = empty_db();
        let cache = cache(0);
        let mut ctx = ctx(&db, &cache);
        let placer = trained_placer();
        let mut t = task(8_000_000);
        t.children_devices = vec![DeviceId::Gpu];
        t.children_bytes = vec![8_000_000];
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
        // Pile an hour of queued work on the GPU: go CPU despite transfer.
        ctx.queued_work[DeviceId::Gpu] = VirtualTime::from_secs_f64(3_600.0);
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn untrained_placer_uses_priors_and_still_decides() {
        let db = empty_db();
        let cache = cache(0);
        let ctx = ctx(&db, &cache);
        let placer = RuntimePlacer::new();
        let t = task(1_000_000);
        // With the default priors (GPU 3× faster, no transfers needed)
        // the GPU wins.
        assert_eq!(placer.choose(&t, &ctx).device, DeviceId::Gpu);
    }

    #[test]
    fn runtime_placement_policy_delegates() {
        let db = empty_db();
        let c = cache(0);
        let ctx = ctx(&db, &c);
        let mut p = RuntimePlacement::new();
        assert_eq!(p.name(), "Run-Time Placement");
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX, "no chopping");
        let t = task(1_000_000);
        let placed = p.place_ready(&t, &ctx);
        assert_eq!(placed.device, DeviceId::Gpu);
        assert!(placed.est[DeviceId::Cpu] > placed.est[DeviceId::Gpu]);
        p.observe(OpClass::Selection, placed.device, 1, 1, VirtualTime::from_micros(1));
        assert_eq!(p.placer().hype.total_observations(), 1);
    }
}
