//! The placement strategies compared in the paper's evaluation.
//!
//! | Strategy | Placement time | Data placement | Concurrency bound |
//! |---|---|---|---|
//! | [`CpuOnly`] | compile | — | none |
//! | [`GpuPreferred`] | compile | operator-driven | none |
//! | [`CriticalPath`] | compile | operator-driven | none |
//! | [`DataDriven`] | compile | **data-driven** | none |
//! | [`RuntimePlacement`] | run time | operator-driven | none |
//! | [`Chopping`] | run time | operator-driven | **thread pool** |
//! | [`DataDrivenChopping`] | run time | **data-driven** | **thread pool** |

pub mod chopping;
pub mod critical_path;
pub mod data_driven;
pub mod runtime;
pub mod simple;

pub use chopping::Chopping;
pub use critical_path::CriticalPath;
pub use data_driven::{DataDriven, DataDrivenChopping};
pub use runtime::{RuntimePlacement, RuntimePlacer};
pub use simple::{CpuOnly, GpuPreferred};

use crate::placement_mgr::PlacementPolicyKind;
use robustq_engine::PlacementPolicy;

/// Strategy selector used by workload runners and the figure harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Everything on the CPU.
    CpuOnly,
    /// Everything on the co-processor, CPU only on aborts.
    GpuPreferred,
    /// CoGaDB's compile-time iterative-refinement optimizer.
    CriticalPath,
    /// Data-driven operator placement (Section 3).
    DataDriven,
    /// Tactical placement at execution time (Section 4).
    RuntimePlacement,
    /// Run-time placement plus the thread pool (Section 5).
    Chopping,
    /// The combined robust strategy (Section 5.4).
    DataDrivenChopping,
}

impl Strategy {
    /// All strategies in the order the paper's figures list them.
    pub const ALL: [Strategy; 7] = [
        Strategy::CpuOnly,
        Strategy::GpuPreferred,
        Strategy::CriticalPath,
        Strategy::DataDriven,
        Strategy::RuntimePlacement,
        Strategy::Chopping,
        Strategy::DataDrivenChopping,
    ];

    /// The six strategies of Figure 14/18 (no plain run-time placement).
    pub const PAPER_SIX: [Strategy; 6] = [
        Strategy::CpuOnly,
        Strategy::GpuPreferred,
        Strategy::CriticalPath,
        Strategy::DataDriven,
        Strategy::Chopping,
        Strategy::DataDrivenChopping,
    ];

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::CpuOnly => "CPU Only",
            Strategy::GpuPreferred => "GPU Only",
            Strategy::CriticalPath => "Critical Path",
            Strategy::DataDriven => "Data-Driven",
            Strategy::RuntimePlacement => "Run-Time Placement",
            Strategy::Chopping => "Chopping",
            Strategy::DataDrivenChopping => "Data-Driven Chopping",
        }
    }

    /// Instantiate a fresh policy (LFU data placement where applicable).
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            Strategy::CpuOnly => Box::new(CpuOnly),
            Strategy::GpuPreferred => Box::new(GpuPreferred),
            Strategy::CriticalPath => Box::new(CriticalPath::new()),
            Strategy::DataDriven => Box::new(DataDriven::new(PlacementPolicyKind::Lfu)),
            Strategy::RuntimePlacement => Box::new(RuntimePlacement::new()),
            Strategy::Chopping => Box::new(Chopping::new()),
            Strategy::DataDrivenChopping => {
                Box::new(DataDrivenChopping::new(PlacementPolicyKind::Lfu))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_strategies() {
        for s in Strategy::ALL {
            let p = s.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(Strategy::DataDrivenChopping.name(), "Data-Driven Chopping");
        assert_eq!(Strategy::GpuPreferred.name(), "GPU Only");
        assert_eq!(Strategy::PAPER_SIX.len(), 6);
    }
}
