//! Query chopping (Section 5).
//!
//! Chopping is run-time placement *plus* the thread-pool pattern: each
//! device has a bounded pool of worker slots pulling operators from its
//! ready queue, which puts an upper bound on the number of operators that
//! concurrently allocate co-processor heap memory — the fix for heap
//! contention. The progressive aspect (leaves enter the operator stream
//! first, parents follow as children finish) is the executor's task-graph
//! mechanic; the strategy contributes the placement decisions and the
//! concurrency bound.

use crate::strategies::runtime::RuntimePlacer;
use robustq_engine::{
    CostModelKind, ModelUpdate, Placement, PlacementPolicy, PolicyCtx, TaskInfo,
};
use robustq_sim::{DeviceId, OpClass, VirtualTime};

/// Query chopping with operator-driven data placement.
#[derive(Debug, Clone)]
pub struct Chopping {
    placer: RuntimePlacer,
    /// Optional override of the per-device slot bound; `None` uses the
    /// device's configured thread-pool size.
    slot_override: Option<usize>,
}

impl Default for Chopping {
    fn default() -> Self {
        Self::new()
    }
}

impl Chopping {
    /// Chopping with the device-configured thread-pool sizes.
    pub fn new() -> Self {
        Chopping { placer: RuntimePlacer::new(), slot_override: None }
    }

    /// Fix the worker-slot bound on both devices (ablation experiments).
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slot_override = Some(slots);
        self
    }

    /// The underlying run-time placer (and its learned models).
    pub fn placer(&self) -> &RuntimePlacer {
        &self.placer
    }
}

impl PlacementPolicy for Chopping {
    fn name(&self) -> &'static str {
        "Chopping"
    }

    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        self.placer.choose_recurring(task, ctx)
    }

    fn worker_slots(&self, _device: DeviceId, spec_slots: usize) -> usize {
        self.slot_override.unwrap_or(spec_slots)
    }

    fn set_cost_model(&mut self, kind: CostModelKind) {
        self.placer.set_cost_model(kind);
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> Option<ModelUpdate> {
        Some(self.placer.observe(op_class, device, bytes_in, bytes_out, kernel, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::runtime::test_support::{empty_db, fixture, task};

    #[test]
    fn chopping_bounds_worker_slots() {
        let p = Chopping::new();
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 4);
        assert_eq!(p.worker_slots(DeviceId::Cpu, 8), 8);
        let p = Chopping::new().with_slots(2);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 2);
    }

    #[test]
    fn chopping_places_at_runtime() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut p = Chopping::new();
        // No compile-time annotations.
        let infos = vec![task(1_000), task(2_000)];
        assert_eq!(p.plan_query(&infos, &ctx), vec![None, None]);
        // Placement happens per ready task.
        let d = p.place_ready(&task(1_000_000), &ctx);
        assert!(matches!(d.device, DeviceId::Cpu | DeviceId::Gpu));
    }

    #[test]
    fn chopping_learns_from_observations() {
        let mut p = Chopping::new();
        p.observe(
            OpClass::HashJoin,
            DeviceId::Gpu,
            10,
            10,
            VirtualTime::from_micros(5),
            VirtualTime::from_micros(5),
        );
        assert_eq!(p.placer().model().total_observations(), 1);
    }

    #[test]
    fn chopping_uses_operator_driven_caching() {
        assert!(Chopping::new().caches_on_miss());
    }
}
