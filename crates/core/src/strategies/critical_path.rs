//! The Critical Path compile-time heuristic (Appendix D).
//!
//! CoGaDB's default optimizer: a cost-based iterative-refinement search
//! over hybrid plans. Only plans where a leaf-to-binary-parent path runs
//! entirely on one processor are considered (data transfers are expensive,
//! so processor changes mid-chain are never worth it), and a binary
//! operator runs on the co-processor only if both children do.
//!
//! Starting from an all-CPU plan, each round tries moving one more leaf
//! chain to the co-processor, keeps the cheapest candidate if it improves
//! the estimated response time (the critical path length under the learned
//! HyPE cost models), and stops otherwise — quadratic in the number of
//! leaves, with a fixed iteration cap for very wide plans.

use crate::costmodel::build_cost_model;
use robustq_engine::{
    CostModel, CostModelKind, ModelUpdate, Placement, PlacementPolicy, PolicyCtx,
    TaskInfo,
};
use robustq_sim::{CacheKey, DeviceId, OpClass, PerDevice, VirtualTime};

/// The Critical Path strategy.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    model: Box<dyn CostModel>,
    /// Cap on refinement rounds (Appendix D: "a fixed number of
    /// iterations ... in case the plan contains too many leaf operators").
    max_iterations: usize,
}

impl Default for CriticalPath {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalPath {
    /// Critical Path with the default iteration cap.
    pub fn new() -> Self {
        CriticalPath {
            model: build_cost_model(CostModelKind::Static),
            max_iterations: 16,
        }
    }

    /// Override the refinement-round cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// The learned cost models driving plan costing.
    pub fn model(&self) -> &dyn CostModel {
        &*self.model
    }

    /// Resolve placements from a set of co-processor leaves: leaves in the
    /// set go to `target`, and every operator whose children all run there
    /// follows (chaining; binary operators require both sides). The search
    /// considers one co-processor per query — chains never span devices,
    /// for the same reason they never span the bus.
    fn closure(
        gpu_leaves: &[bool],
        tasks: &[TaskInfo],
        base: usize,
        target: DeviceId,
    ) -> Vec<DeviceId> {
        let mut devices = Vec::with_capacity(tasks.len());
        for (i, t) in tasks.iter().enumerate() {
            let d = if t.children_tasks.is_empty() {
                if gpu_leaves[i] {
                    target
                } else {
                    DeviceId::Cpu
                }
            } else if t.children_tasks.iter().all(|&c| devices[c - base] == target) {
                target
            } else {
                DeviceId::Cpu
            };
            devices.push(d);
        }
        devices
    }

    /// Estimated response time (critical-path length) of one assignment.
    fn response_time(
        &self,
        devices: &[DeviceId],
        tasks: &[TaskInfo],
        base: usize,
        ctx: &PolicyCtx,
    ) -> VirtualTime {
        let mut completion: Vec<VirtualTime> = Vec::with_capacity(tasks.len());
        for (i, t) in tasks.iter().enumerate() {
            let device = devices[i];
            let children_done = t
                .children_tasks
                .iter()
                .map(|&c| completion[c - base])
                .max()
                .unwrap_or(VirtualTime::ZERO);
            // Transfers: base columns for co-processor scans, child
            // results crossing a device boundary otherwise.
            let mut move_bytes = 0u64;
            if device.is_coprocessor() {
                for &col in &t.base_columns {
                    if !ctx.cache(device).contains(CacheKey(col.0 as u64)) {
                        move_bytes += ctx.db.column_size(col);
                    }
                }
            }
            for &c in &t.children_tasks {
                if devices[c - base] != device {
                    move_bytes += tasks[c - base].bytes_out_estimate;
                }
            }
            let kernel =
                self.model.estimate(t.op_class, device, t.bytes_in, t.bytes_out_estimate);
            completion.push(
                children_done + self.model.estimate_transfer(move_bytes) + kernel,
            );
        }
        let root = *completion.last().expect("non-empty plan");
        // The result must end on the host.
        if devices.last().expect("non-empty plan").is_coprocessor() {
            let out = tasks.last().expect("non-empty plan").bytes_out_estimate;
            root + self.model.estimate_transfer(out)
        } else {
            root
        }
    }
}

impl PlacementPolicy for CriticalPath {
    fn name(&self) -> &'static str {
        "Critical Path"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        if tasks.is_empty() {
            return Vec::new();
        }
        // One co-processor hosts this query's chains: the least-loaded one
        // at plan time (lowest index on ties — the single co-processor on
        // a classic machine). CPU-only topologies skip the search.
        let Some(target) = ctx.least_loaded_coprocessor() else {
            return tasks
                .iter()
                .map(|_| Some(Placement::fixed(DeviceId::Cpu)))
                .collect();
        };
        let base = tasks[0].task;
        let leaves: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.children_tasks.is_empty())
            .map(|(i, _)| i)
            .collect();

        // Appendix D: start all-CPU; each round examines all plans with
        // one more leaf chain on the co-processor and fixes the fastest,
        // walking the whole greedy path (not stopping at the first
        // non-improving round — the binary-join benefit only appears once
        // both sides moved). The best assignment seen anywhere wins.
        let mut chosen = vec![false; tasks.len()];
        let mut best_devices = Self::closure(&chosen, tasks, base, target);
        let mut best_cost = self.response_time(&best_devices, tasks, base, ctx);

        for _round in 0..self.max_iterations.min(leaves.len()) {
            let mut round_best: Option<(usize, VirtualTime, Vec<DeviceId>)> = None;
            for &leaf in &leaves {
                if chosen[leaf] {
                    continue;
                }
                let mut cand = chosen.clone();
                cand[leaf] = true;
                let devices = Self::closure(&cand, tasks, base, target);
                let cost = self.response_time(&devices, tasks, base, ctx);
                if round_best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                    round_best = Some((leaf, cost, devices));
                }
            }
            let Some((leaf, cost, devices)) = round_best else {
                break;
            };
            chosen[leaf] = true;
            if cost < best_cost {
                best_cost = cost;
                best_devices = devices;
            }
        }
        // Annotate each pick with its per-device kernel estimates so the
        // trace records what the search believed about either side.
        let device_count = ctx.topology.device_count();
        best_devices
            .into_iter()
            .zip(tasks)
            .map(|(d, t)| {
                let est = PerDevice::from_fn(device_count, |dev| {
                    self.model.estimate(t.op_class, dev, t.bytes_in, t.bytes_out_estimate)
                });
                Some(Placement::modeled(d, est))
            })
            .collect()
    }

    fn set_cost_model(&mut self, kind: CostModelKind) {
        if self.model.kind() != kind {
            self.model = build_cost_model(kind);
        }
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> Option<ModelUpdate> {
        Some(self.model.observe(op_class, device, bytes_in, bytes_out, kernel, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::runtime::test_support::{empty_db, fixture, fixture_k, task};
    use robustq_storage::{ColumnData, DataType, Database, Field, Schema, Table};

    /// Build a tiny 4-task plan: two scans (ids 0,1) joined (2), then
    /// aggregated (3). `col_a`/`col_b` are the scans' base columns.
    fn plan_tasks(bytes: u64) -> Vec<TaskInfo> {
        let mut scan_a = task(bytes);
        scan_a.task = 0;
        scan_a.base_columns = vec![robustq_storage::ColumnId(0)];
        scan_a.bytes_out_estimate = bytes / 2;
        let mut scan_b = task(bytes);
        scan_b.task = 1;
        scan_b.base_columns = vec![robustq_storage::ColumnId(1)];
        scan_b.bytes_out_estimate = bytes / 2;
        let mut join = task(bytes);
        join.task = 2;
        join.op_class = OpClass::HashJoin;
        join.children_tasks = vec![0, 1];
        join.bytes_out_estimate = bytes / 2;
        let mut agg = task(bytes / 2);
        agg.task = 3;
        agg.op_class = OpClass::Aggregation;
        agg.children_tasks = vec![2];
        agg.bytes_out_estimate = 64;
        vec![scan_a, scan_b, join, agg]
    }

    fn db_with_two_columns(rows: usize) -> Database {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("b", DataType::Int64),
                ]),
                vec![
                    ColumnData::Int64(vec![0; rows]),
                    ColumnData::Int64(vec![0; rows]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn trained() -> CriticalPath {
        let mut cp = CriticalPath::new();
        for class in robustq_sim::OpClass::ALL {
            for mb in [1u64, 8, 64] {
                let b = mb * 1_000_000;
                cp.observe(
                    class,
                    DeviceId::Cpu,
                    b,
                    0,
                    VirtualTime::from_secs_f64(b as f64 / 8.0e9),
                    VirtualTime::from_secs_f64(b as f64 / 8.0e9),
                );
                cp.observe(
                    class,
                    DeviceId::Gpu,
                    b,
                    0,
                    VirtualTime::from_secs_f64(b as f64 / 24.0e9),
                    VirtualTime::from_secs_f64(b as f64 / 24.0e9),
                );
            }
        }
        cp
    }

    #[test]
    fn cold_cache_with_big_columns_stays_on_cpu() {
        // 8 MB per column over a ~1.2 GB/s link dwarfs the kernel gain.
        let db = db_with_two_columns(1_000_000);
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut cp = trained();
        let out = cp.plan_query(&plan_tasks(8_000_000), &ctx);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|p| p.as_ref().unwrap().device == DeviceId::Cpu));
    }

    #[test]
    fn hot_cache_moves_chains_to_gpu() {
        let db = db_with_two_columns(1_000_000);
        let mut fx = fixture(1 << 30);
        fx.cache_mut(DeviceId::Gpu)
            .set_pinned(&[(CacheKey(0), 8_000_000), (CacheKey(1), 8_000_000)]);
        let ctx = fx.ctx(&db);
        let mut cp = trained();
        let out = cp.plan_query(&plan_tasks(8_000_000), &ctx);
        // Both scans cached: everything chains onto the co-processor.
        assert_eq!(out[0].as_ref().unwrap().device, DeviceId::Gpu);
        assert_eq!(out[1].as_ref().unwrap().device, DeviceId::Gpu);
        assert_eq!(
            out[2].as_ref().unwrap().device,
            DeviceId::Gpu,
            "binary op follows both children"
        );
        // Modeled estimates ride along for the trace.
        assert!(out[0].as_ref().unwrap().est[DeviceId::Cpu] > VirtualTime::ZERO);
    }

    #[test]
    fn single_cached_side_keeps_binary_on_cpu() {
        let db = db_with_two_columns(1_000_000);
        let mut fx = fixture(1 << 30);
        fx.cache_mut(DeviceId::Gpu).set_pinned(&[(CacheKey(0), 8_000_000)]);
        let ctx = fx.ctx(&db);
        let mut cp = trained();
        let out = cp.plan_query(&plan_tasks(8_000_000), &ctx);
        // The cold side stays on the CPU, so the join cannot chain.
        assert_eq!(out[1].as_ref().unwrap().device, DeviceId::Cpu);
        assert_eq!(out[2].as_ref().unwrap().device, DeviceId::Cpu);
    }

    #[test]
    fn chains_land_on_the_least_loaded_coprocessor() {
        let db = db_with_two_columns(1_000_000);
        let g2 = DeviceId::coprocessor(2);
        let mut fx = fixture_k(2, 1 << 30);
        // Pin the scans' columns on *both* devices so residency is equal.
        for d in [DeviceId::Gpu, g2] {
            fx.cache_mut(d)
                .set_pinned(&[(CacheKey(0), 8_000_000), (CacheKey(1), 8_000_000)]);
        }
        let mut ctx = fx.ctx(&db);
        ctx.queued_work[DeviceId::Gpu] = VirtualTime::from_secs_f64(10.0);
        let mut cp = trained();
        // Teach the second device too, so its estimates are fitted.
        for mb in [1u64, 8, 64] {
            let b = mb * 1_000_000;
            for class in robustq_sim::OpClass::ALL {
                let d = VirtualTime::from_secs_f64(b as f64 / 24.0e9);
                cp.observe(class, g2, b, 0, d, d);
            }
        }
        let out = cp.plan_query(&plan_tasks(8_000_000), &ctx);
        assert!(
            out.iter()
                .take(3)
                .all(|p| p.as_ref().unwrap().device == g2),
            "busy GPU1 is skipped; the whole chain targets GPU2"
        );
    }

    #[test]
    fn closure_respects_binary_rule() {
        let tasks = plan_tasks(1_000);
        let devices =
            CriticalPath::closure(&[true, false, false, false], &tasks, 0, DeviceId::Gpu);
        assert_eq!(devices[0], DeviceId::Gpu);
        assert_eq!(devices[2], DeviceId::Cpu, "join needs both children on GPU");
        let devices =
            CriticalPath::closure(&[true, true, false, false], &tasks, 0, DeviceId::Gpu);
        assert_eq!(devices[2], DeviceId::Gpu);
        assert_eq!(devices[3], DeviceId::Gpu, "unary chain continues");
    }

    #[test]
    fn empty_plan_is_handled() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut cp = CriticalPath::new();
        assert!(cp.plan_query(&[], &ctx).is_empty());
    }

    #[test]
    fn iteration_cap_limits_rounds() {
        let db = db_with_two_columns(10);
        let mut fx = fixture(1 << 20);
        fx.cache_mut(DeviceId::Gpu).set_pinned(&[(CacheKey(0), 80), (CacheKey(1), 80)]);
        let ctx = fx.ctx(&db);
        let mut cp = trained().with_max_iterations(1);
        let out = cp.plan_query(&plan_tasks(80), &ctx);
        // With tiny data the launch overheads decide; we only check the
        // cap does not break the search.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(Option::is_some));
    }
}
