//! Data-driven operator placement (Section 3) and its combination with
//! query chopping (Section 5.4).
//!
//! The storage adviser (our [`DataPlacementManager`]) pins the most
//! frequently used columns into the co-processor caches; the query
//! processor places an operator on a co-processor *if and only if* its
//! input is resident there. Scans check the pinned caches; downstream
//! operators chain — they run on a co-processor exactly when all their
//! children ran on that same device, so the chain breaks at the first
//! operator with a non-resident input and the rest of the query stays on
//! the CPU (Section 3.3). With K co-processors, each column has one home
//! device and the chain follows whichever device holds the data.

use crate::placement_mgr::{DataPlacementManager, PlacementPolicyKind};
use crate::strategies::runtime::RuntimePlacer;
use robustq_engine::{
    CostModelKind, ModelUpdate, Placement, PlacementPolicy, PlaceReason, PolicyCtx,
    TaskInfo,
};
use robustq_sim::{CacheKey, CacheSet, DeviceId, OpClass, VirtualTime};
use robustq_storage::Database;

/// Where `task`'s base columns are resident. A shard follows its own
/// *partition*: the device holding either its row-slice partition keys or
/// the whole columns counts, so the placement manager can home different
/// partitions of one table on different co-processors and the shards
/// fan out after the data.
fn resident_device(task: &TaskInfo, ctx: &PolicyCtx) -> Option<DeviceId> {
    match task.shard {
        Some(s) => ctx.shard_cached_device(&task.base_columns, s),
        None => ctx.cached_device(&task.base_columns),
    }
}

/// Per-query home co-processor under shard-aware placement, or `None`
/// when the classic chaining rule should decide.
///
/// Sharded leaf scans fan out after their partitions, but that leaves
/// every merge with children on *different* co-processors — the classic
/// chain rule would break there and drag the whole rest of the query
/// onto the CPU, erasing the fan-out's win. Instead each query gets a
/// home co-processor (`query % K`): merges (shard fan-ins) land on the
/// home, and a leaf scan whose columns are resident on the home (the
/// manager replicates small tables into every cache) starts the chain
/// there too, so different queries' post-merge pipelines spread across
/// the fleet instead of serialising on one device.
fn query_home(task: &TaskInfo, ctx: &PolicyCtx) -> Option<DeviceId> {
    let homes: Vec<DeviceId> = ctx.devices().collect();
    if homes.is_empty() {
        return None;
    }
    let home = homes[task.query % homes.len()];
    if task.children_tasks.is_empty() {
        // Leaf scan: the home only attracts it when its data is there
        // (the CPU reads host memory directly, so it never attracts one).
        (home.is_coprocessor()
            && !task.base_columns.is_empty()
            && ctx.all_cached_on(home, &task.base_columns))
        .then_some(home)
    } else {
        // Shard fan-in: children spread over several co-processors.
        let mut coprocs: Vec<DeviceId> = task
            .children_devices
            .iter()
            .copied()
            .filter(|d| d.is_coprocessor())
            .collect();
        coprocs.dedup();
        (coprocs.len() >= 2).then_some(home)
    }
}

/// Shared chaining rule: a co-processor iff every input is resident on
/// that one device. `cached_device` is the (first) co-processor whose
/// cache holds all of the task's base columns, if any.
fn data_driven_device(task: &TaskInfo, cached_device: Option<DeviceId>) -> DeviceId {
    if task.children_devices.is_empty() && task.children_tasks.is_empty() {
        // Leaf scan: follow the pinned data (no columns → no signal → CPU).
        if !task.base_columns.is_empty() {
            cached_device.unwrap_or(DeviceId::Cpu)
        } else {
            DeviceId::Cpu
        }
    } else {
        // Chain: all children on the same co-processor → stay there.
        match task.children_devices.first() {
            Some(&first)
                if first.is_coprocessor()
                    && task.children_devices.iter().all(|&d| d == first) =>
            {
                first
            }
            _ => DeviceId::Cpu,
        }
    }
}

/// Data-driven operator placement at compile time (Section 3).
///
/// The whole chain is fixed when the query is admitted, based on cache
/// residency at that moment; aborted operators restart on the CPU but
/// their successors keep their annotation (this is why Data-Driven alone
/// does not solve heap contention — Figure 7).
#[derive(Debug, Clone)]
pub struct DataDriven {
    manager: DataPlacementManager,
}

impl DataDriven {
    /// Data-driven placement with the given ranking criterion.
    pub fn new(kind: PlacementPolicyKind) -> Self {
        DataDriven { manager: DataPlacementManager::new(kind) }
    }

    /// Override the manager (e.g. to cap the pin budget in Figure 24).
    pub fn with_manager(manager: DataPlacementManager) -> Self {
        DataDriven { manager }
    }
}

impl PlacementPolicy for DataDriven {
    fn name(&self) -> &'static str {
        "Data-Driven"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        let base = tasks.first().map_or(0, |t| t.task);
        let mut devices: Vec<DeviceId> = Vec::with_capacity(tasks.len());
        for t in tasks {
            // Postorder: children already decided.
            let children: Vec<DeviceId> =
                t.children_tasks.iter().map(|&c| devices[c - base]).collect();
            let resolved = TaskInfo { children_devices: children, ..t.clone() };
            let cached = resident_device(&resolved, ctx);
            devices.push(data_driven_device(&resolved, cached));
        }
        devices
            .into_iter()
            .map(|d| Some(Placement::fixed(d).because(PlaceReason::DataResidency)))
            .collect()
    }

    fn caches_on_miss(&self) -> bool {
        false
    }

    fn update_data_placement(
        &mut self,
        db: &Database,
        caches: &mut CacheSet,
        epochs: &[u64],
    ) -> Vec<(DeviceId, CacheKey)> {
        self.manager.update_set(db, caches, epochs)
    }
}

/// Data-driven query chopping (Section 5.4): the combined, robust
/// strategy. Placement follows the pinned data like [`DataDriven`], but
/// is decided at run time per ready operator (so aborts re-route the rest
/// of the query), and the per-device thread pool bounds concurrent heap
/// use.
#[derive(Debug, Clone)]
pub struct DataDrivenChopping {
    manager: DataPlacementManager,
    placer: RuntimePlacer,
    slot_override: Option<usize>,
    /// Memoized device per `(standing query, task slot)`: residency
    /// rarely moves between window ticks, so the first tick's chain
    /// decision is replayed ([`PlaceReason::Recurring`]) until an abort
    /// invalidates it.
    recurring: std::collections::BTreeMap<(u32, u32), DeviceId>,
}

impl DataDrivenChopping {
    /// Data-driven chopping with the given ranking criterion.
    pub fn new(kind: PlacementPolicyKind) -> Self {
        DataDrivenChopping {
            manager: DataPlacementManager::new(kind),
            placer: RuntimePlacer::new(),
            slot_override: None,
            recurring: std::collections::BTreeMap::new(),
        }
    }

    /// Override the manager (pin-budget sweeps).
    pub fn with_manager(manager: DataPlacementManager) -> Self {
        DataDrivenChopping {
            manager,
            placer: RuntimePlacer::new(),
            slot_override: None,
            recurring: std::collections::BTreeMap::new(),
        }
    }

    /// Fix the worker-slot bound on all devices (ablations).
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slot_override = Some(slots);
        self
    }
}

impl PlacementPolicy for DataDrivenChopping {
    fn name(&self) -> &'static str {
        "Data-Driven Chopping"
    }

    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        // Standing-query ticks replay the previous tick's decision for
        // the same task slot; aborts drop the memo and re-derive.
        if let Some(slot) = task.recurring {
            if task.was_aborted {
                self.recurring.remove(&slot);
            } else if let Some(&device) = self.recurring.get(&slot) {
                return Placement::fixed(device).because(PlaceReason::Recurring);
            }
        }
        let placed = if self.manager.shard_ways() >= 2 && task.shard.is_none() {
            query_home(task, ctx)
                .map(|home| Placement::fixed(home).because(PlaceReason::ShardSpread))
        } else {
            None
        };
        let placed = placed.unwrap_or_else(|| {
            let cached = resident_device(task, ctx);
            Placement::fixed(data_driven_device(task, cached))
                .because(PlaceReason::DataResidency)
        });
        if let Some(slot) = task.recurring {
            if !task.was_aborted {
                self.recurring.insert(slot, placed.device);
            }
        }
        placed
    }

    fn worker_slots(&self, _device: DeviceId, spec_slots: usize) -> usize {
        self.slot_override.unwrap_or(spec_slots)
    }

    fn caches_on_miss(&self) -> bool {
        false
    }

    fn set_cost_model(&mut self, kind: CostModelKind) {
        self.placer.set_cost_model(kind);
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> Option<ModelUpdate> {
        Some(self.placer.observe(op_class, device, bytes_in, bytes_out, kernel, span))
    }

    fn update_data_placement(
        &mut self,
        db: &Database,
        caches: &mut CacheSet,
        epochs: &[u64],
    ) -> Vec<(DeviceId, CacheKey)> {
        self.manager.update_set(db, caches, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::runtime::test_support::{empty_db, fixture, fixture_k, task};
    use robustq_storage::ColumnId;

    fn scan_task(cols: Vec<ColumnId>) -> TaskInfo {
        TaskInfo { base_columns: cols, ..task(1_000) }
    }

    #[test]
    fn scan_follows_pinned_data() {
        let db = empty_db();
        let mut fx = fixture(1_000);
        fx.cache_mut(DeviceId::Gpu)
            .set_pinned(&[(CacheKey(1), 10), (CacheKey(2), 10)]);
        let ctx = fx.ctx(&db);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        // Both columns resident -> GPU.
        let t = scan_task(vec![ColumnId(1), ColumnId(2)]);
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Gpu);
        // One missing -> CPU.
        let t = scan_task(vec![ColumnId(1), ColumnId(3)]);
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn scan_follows_data_to_the_sibling_coprocessor() {
        let db = empty_db();
        let mut fx = fixture_k(2, 1_000);
        let g2 = DeviceId::coprocessor(2);
        fx.cache_mut(g2).set_pinned(&[(CacheKey(1), 10)]);
        let ctx = fx.ctx(&db);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        let t = scan_task(vec![ColumnId(1)]);
        assert_eq!(p.place_ready(&t, &ctx).device, g2, "data lives on GPU2");
        // A chain over GPU2 children stays on GPU2; mixed homes break it.
        let mut join = task(2_000);
        join.children_tasks = vec![0, 1];
        join.children_devices = vec![g2, g2];
        join.children_bytes = vec![10, 10];
        assert_eq!(p.place_ready(&join, &ctx).device, g2);
        join.children_devices = vec![DeviceId::Gpu, g2];
        assert_eq!(p.place_ready(&join, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn query_home_spreads_shard_merges_across_the_fleet() {
        let db = empty_db();
        let fx = fixture_k(2, 1_000);
        let g2 = DeviceId::coprocessor(2);
        let ctx = fx.ctx(&db);
        let mut p = DataDrivenChopping::with_manager(
            crate::DataPlacementManager::lfu().with_sharding(2, 0),
        );
        // A shard fan-in: children spread over both co-processors. The
        // classic chain rule would send it to the CPU; with sharding on,
        // it lands on the query's home device instead, and consecutive
        // queries get different homes.
        let mut merge = task(2_000);
        merge.children_tasks = vec![0, 1];
        merge.children_devices = vec![DeviceId::Gpu, g2];
        merge.children_bytes = vec![10, 10];
        let homes: Vec<DeviceId> = (0..3)
            .map(|q| {
                let mut m = merge.clone();
                m.query = q;
                p.place_ready(&m, &ctx).device
            })
            .collect();
        assert_eq!(homes.len(), 3);
        assert_eq!(
            homes.iter().collect::<std::collections::BTreeSet<_>>().len(),
            3,
            "three consecutive queries must get three distinct homes, got {homes:?}"
        );
        // Shard tasks themselves are exempt (the placer deals them), and
        // so is the whole rule when sharding is off.
        let mut shard = merge.clone();
        shard.shard = Some(robustq_engine::ShardSpec { index: 0, of: 2 });
        assert_eq!(p.place_ready(&shard, &ctx).device, DeviceId::Cpu);
        let mut off = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        assert_eq!(off.place_ready(&merge, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn chain_breaks_at_first_cpu_child() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        let mut t = task(1_000);
        t.children_tasks = vec![0, 1];
        t.children_devices = vec![DeviceId::Gpu, DeviceId::Gpu];
        t.children_bytes = vec![10, 10];
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Gpu);
        t.children_devices = vec![DeviceId::Gpu, DeviceId::Cpu];
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn compile_time_data_driven_chains_through_plan() {
        let db = empty_db();
        let mut fx = fixture(1_000);
        fx.cache_mut(DeviceId::Gpu).set_pinned(&[(CacheKey(7), 10)]);
        let ctx = fx.ctx(&db);
        let mut p = DataDriven::new(PlacementPolicyKind::Lfu);

        // Tasks 0,1 are scans; 2 joins them (postorder, ids offset by 40).
        let mut scan_hot = scan_task(vec![ColumnId(7)]);
        scan_hot.task = 40;
        let mut scan_cold = scan_task(vec![ColumnId(9)]);
        scan_cold.task = 41;
        let mut join = task(2_000);
        join.task = 42;
        join.children_tasks = vec![40, 41];
        let out = p.plan_query(&[scan_hot.clone(), scan_cold, join.clone()], &ctx);
        let devices: Vec<DeviceId> =
            out.iter().map(|p| p.as_ref().unwrap().device).collect();
        assert_eq!(
            devices,
            vec![DeviceId::Gpu, DeviceId::Cpu, DeviceId::Cpu],
            "join chains to CPU because one input scan is cold"
        );
        assert!(out
            .iter()
            .all(|p| p.as_ref().unwrap().reason == PlaceReason::DataResidency));

        // If both scans are hot the whole chain goes to the co-processor.
        let mut scan_hot2 = scan_task(vec![ColumnId(7)]);
        scan_hot2.task = 41;
        let out = p.plan_query(&[scan_hot, scan_hot2, join], &ctx);
        assert!(out.iter().all(|p| p.as_ref().unwrap().device == DeviceId::Gpu));
    }

    #[test]
    fn data_driven_never_caches_on_miss() {
        assert!(!DataDriven::new(PlacementPolicyKind::Lfu).caches_on_miss());
        assert!(!DataDrivenChopping::new(PlacementPolicyKind::Lfu).caches_on_miss());
    }

    #[test]
    fn placement_update_delegates_to_manager() {
        use robustq_storage::{ColumnData, DataType, Field, Schema, Table};
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![Field::new("x", DataType::Int32)]),
                vec![ColumnData::Int32(vec![1, 2, 3])],
            )
            .unwrap(),
        )
        .unwrap();
        db.stats().record_access(0);
        let mut fx = fixture(1_000);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        let newly = p.update_data_placement(&db, &mut fx.caches, &[]);
        assert_eq!(newly, vec![(DeviceId::Gpu, CacheKey(0))]);
        assert!(fx.caches.device(DeviceId::Gpu).contains(CacheKey(0)));
    }

    #[test]
    fn slot_bounds() {
        let p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 4);
        let p = p.with_slots(1);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 1);
        // Compile-time DataDriven does not chop.
        let p = DataDriven::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX);
    }

    #[test]
    fn scan_with_no_base_columns_stays_on_cpu() {
        let db = empty_db();
        let fx = fixture(0);
        let ctx = fx.ctx(&db);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.place_ready(&task(100), &ctx).device, DeviceId::Cpu);
    }
}
