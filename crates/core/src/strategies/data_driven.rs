//! Data-driven operator placement (Section 3) and its combination with
//! query chopping (Section 5.4).
//!
//! The storage adviser (our [`DataPlacementManager`]) pins the most
//! frequently used columns into the co-processor cache; the query
//! processor places an operator on the co-processor *if and only if* its
//! input is resident there. Scans check the pinned cache; downstream
//! operators chain — they run on the co-processor exactly when all their
//! children did, so the chain breaks at the first operator with a
//! non-resident input and the rest of the query stays on the CPU
//! (Section 3.3).

use crate::placement_mgr::{DataPlacementManager, PlacementPolicyKind};
use crate::strategies::runtime::RuntimePlacer;
use robustq_engine::{Placement, PlacementPolicy, PlaceReason, PolicyCtx, TaskInfo};
use robustq_sim::{CacheKey, DataCache, DeviceId, OpClass, VirtualTime};
use robustq_storage::Database;

/// Shared chaining rule: co-processor iff every input is resident.
fn data_driven_device(task: &TaskInfo, all_cached: bool) -> DeviceId {
    if task.children_devices.is_empty() && task.children_tasks.is_empty() {
        // Leaf scan: follow the pinned data.
        if all_cached && !task.base_columns.is_empty() {
            DeviceId::Gpu
        } else {
            DeviceId::Cpu
        }
    } else if task
        .children_devices
        .iter()
        .all(|&d| d == DeviceId::Gpu)
        && !task.children_devices.is_empty()
    {
        DeviceId::Gpu
    } else {
        DeviceId::Cpu
    }
}

/// Data-driven operator placement at compile time (Section 3).
///
/// The whole chain is fixed when the query is admitted, based on cache
/// residency at that moment; aborted operators restart on the CPU but
/// their successors keep their annotation (this is why Data-Driven alone
/// does not solve heap contention — Figure 7).
#[derive(Debug, Clone)]
pub struct DataDriven {
    manager: DataPlacementManager,
}

impl DataDriven {
    /// Data-driven placement with the given ranking criterion.
    pub fn new(kind: PlacementPolicyKind) -> Self {
        DataDriven { manager: DataPlacementManager::new(kind) }
    }

    /// Override the manager (e.g. to cap the pin budget in Figure 24).
    pub fn with_manager(manager: DataPlacementManager) -> Self {
        DataDriven { manager }
    }
}

impl PlacementPolicy for DataDriven {
    fn name(&self) -> &'static str {
        "Data-Driven"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        let base = tasks.first().map_or(0, |t| t.task);
        let mut devices: Vec<DeviceId> = Vec::with_capacity(tasks.len());
        for t in tasks {
            // Postorder: children already decided.
            let children: Vec<DeviceId> =
                t.children_tasks.iter().map(|&c| devices[c - base]).collect();
            let resolved = TaskInfo { children_devices: children, ..t.clone() };
            let cached = ctx.all_cached(&resolved.base_columns);
            devices.push(data_driven_device(&resolved, cached));
        }
        devices
            .into_iter()
            .map(|d| Some(Placement::fixed(d).because(PlaceReason::DataResidency)))
            .collect()
    }

    fn caches_on_miss(&self) -> bool {
        false
    }

    fn update_data_placement(
        &mut self,
        db: &Database,
        cache: &mut DataCache,
    ) -> Vec<CacheKey> {
        self.manager.update(db, cache)
    }
}

/// Data-driven query chopping (Section 5.4): the combined, robust
/// strategy. Placement follows the pinned data like [`DataDriven`], but
/// is decided at run time per ready operator (so aborts re-route the rest
/// of the query), and the per-device thread pool bounds concurrent heap
/// use.
#[derive(Debug, Clone)]
pub struct DataDrivenChopping {
    manager: DataPlacementManager,
    placer: RuntimePlacer,
    slot_override: Option<usize>,
}

impl DataDrivenChopping {
    /// Data-driven chopping with the given ranking criterion.
    pub fn new(kind: PlacementPolicyKind) -> Self {
        DataDrivenChopping {
            manager: DataPlacementManager::new(kind),
            placer: RuntimePlacer::new(),
            slot_override: None,
        }
    }

    /// Override the manager (pin-budget sweeps).
    pub fn with_manager(manager: DataPlacementManager) -> Self {
        DataDrivenChopping {
            manager,
            placer: RuntimePlacer::new(),
            slot_override: None,
        }
    }

    /// Fix the worker-slot bound on both devices (ablations).
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slot_override = Some(slots);
        self
    }
}

impl PlacementPolicy for DataDrivenChopping {
    fn name(&self) -> &'static str {
        "Data-Driven Chopping"
    }

    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        let cached = ctx.all_cached(&task.base_columns);
        Placement::fixed(data_driven_device(task, cached))
            .because(PlaceReason::DataResidency)
    }

    fn worker_slots(&self, _device: DeviceId, spec_slots: usize) -> usize {
        self.slot_override.unwrap_or(spec_slots)
    }

    fn caches_on_miss(&self) -> bool {
        false
    }

    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        duration: VirtualTime,
    ) {
        self.placer.observe(op_class, device, bytes_in, bytes_out, duration);
    }

    fn update_data_placement(
        &mut self,
        db: &Database,
        cache: &mut DataCache,
    ) -> Vec<CacheKey> {
        self.manager.update(db, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::runtime::test_support::{cache, ctx, empty_db, task};
    use robustq_storage::ColumnId;

    fn scan_task(cols: Vec<ColumnId>) -> TaskInfo {
        TaskInfo { base_columns: cols, ..task(1_000) }
    }

    #[test]
    fn scan_follows_pinned_data() {
        let db = empty_db();
        let mut c = cache(1_000);
        c.set_pinned(&[(CacheKey(1), 10), (CacheKey(2), 10)]);
        let ctx = ctx(&db, &c);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        // Both columns resident -> GPU.
        let t = scan_task(vec![ColumnId(1), ColumnId(2)]);
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Gpu);
        // One missing -> CPU.
        let t = scan_task(vec![ColumnId(1), ColumnId(3)]);
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn chain_breaks_at_first_cpu_child() {
        let db = empty_db();
        let c = cache(0);
        let ctx = ctx(&db, &c);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        let mut t = task(1_000);
        t.children_tasks = vec![0, 1];
        t.children_devices = vec![DeviceId::Gpu, DeviceId::Gpu];
        t.children_bytes = vec![10, 10];
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Gpu);
        t.children_devices = vec![DeviceId::Gpu, DeviceId::Cpu];
        assert_eq!(p.place_ready(&t, &ctx).device, DeviceId::Cpu);
    }

    #[test]
    fn compile_time_data_driven_chains_through_plan() {
        let db = empty_db();
        let mut c = cache(1_000);
        c.set_pinned(&[(CacheKey(7), 10)]);
        let ctx = ctx(&db, &c);
        let mut p = DataDriven::new(PlacementPolicyKind::Lfu);

        // Tasks 0,1 are scans; 2 joins them (postorder, ids offset by 40).
        let mut scan_hot = scan_task(vec![ColumnId(7)]);
        scan_hot.task = 40;
        let mut scan_cold = scan_task(vec![ColumnId(9)]);
        scan_cold.task = 41;
        let mut join = task(2_000);
        join.task = 42;
        join.children_tasks = vec![40, 41];
        let out = p.plan_query(&[scan_hot.clone(), scan_cold, join.clone()], &ctx);
        let devices: Vec<DeviceId> = out.iter().map(|p| p.unwrap().device).collect();
        assert_eq!(
            devices,
            vec![DeviceId::Gpu, DeviceId::Cpu, DeviceId::Cpu],
            "join chains to CPU because one input scan is cold"
        );
        assert!(out.iter().all(|p| p.unwrap().reason == PlaceReason::DataResidency));

        // If both scans are hot the whole chain goes to the co-processor.
        let mut scan_hot2 = scan_task(vec![ColumnId(7)]);
        scan_hot2.task = 41;
        let out = p.plan_query(&[scan_hot, scan_hot2, join], &ctx);
        assert!(out.iter().all(|p| p.unwrap().device == DeviceId::Gpu));
    }

    #[test]
    fn data_driven_never_caches_on_miss() {
        assert!(!DataDriven::new(PlacementPolicyKind::Lfu).caches_on_miss());
        assert!(!DataDrivenChopping::new(PlacementPolicyKind::Lfu).caches_on_miss());
    }

    #[test]
    fn placement_update_delegates_to_manager() {
        use robustq_storage::{ColumnData, DataType, Field, Schema, Table};
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![Field::new("x", DataType::Int32)]),
                vec![ColumnData::Int32(vec![1, 2, 3])],
            )
            .unwrap(),
        )
        .unwrap();
        db.stats().record_access(0);
        let mut c = cache(1_000);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        let newly = p.update_data_placement(&db, &mut c);
        assert_eq!(newly.len(), 1);
        assert!(c.contains(CacheKey(0)));
    }

    #[test]
    fn slot_bounds() {
        let p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 4);
        let p = p.with_slots(1);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), 1);
        // Compile-time DataDriven does not chop.
        let p = DataDriven::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX);
    }

    #[test]
    fn scan_with_no_base_columns_stays_on_cpu() {
        let db = empty_db();
        let c = cache(0);
        let ctx = ctx(&db, &c);
        let mut p = DataDrivenChopping::new(PlacementPolicyKind::Lfu);
        assert_eq!(p.place_ready(&task(100), &ctx).device, DeviceId::Cpu);
    }
}
