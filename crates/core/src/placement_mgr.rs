//! The data placement manager (Section 3.2, Algorithm 1).
//!
//! A background job that periodically re-decides which base columns live
//! in the co-processor's column cache. Columns are ranked by access
//! frequency (LFU, the paper's default) or recency (LRU, the Appendix E
//! variant) using the access counters the query processor maintains, and
//! the top of the ranking is pinned until the cache budget is exhausted —
//! exactly Algorithm 1: evict `old \ new`, cache `new \ old`.

use robustq_sim::{partition_bytes, CacheKey, CacheSet, DataCache, DeviceId};
use robustq_storage::{ColumnId, Database};
use std::collections::BTreeMap;

/// Ranking criterion for the pinned set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicyKind {
    /// Most frequently used first (the paper's default).
    Lfu,
    /// Most recently used first (Appendix E comparison).
    Lru,
}

/// The data placement manager.
#[derive(Debug, Clone)]
pub struct DataPlacementManager {
    kind: PlacementPolicyKind,
    /// Optional cap on cache bytes used (defaults to the full cache).
    budget: Option<u64>,
    /// Intra-operator sharding (DESIGN.md §12): partition large tables'
    /// columns across the fleet and replicate small tables everywhere.
    /// `0` disables sharding (the classic one-home-per-table layout).
    shard_ways: usize,
    /// Tables whose accessed columns total at most this many bytes are
    /// replicated into *every* cache instead of partitioned (small build
    /// sides each device can hold outright).
    replicate_max_bytes: u64,
    /// Sticky table→cache homes. Once a table is homed, later updates
    /// keep it there even when the ranking reshuffles — re-homing a hot
    /// table evicts and re-transfers its whole pinned set, which is how
    /// K > 1 fleets lose cache hits without any change in the workload.
    homes: BTreeMap<usize, usize>,
}

impl DataPlacementManager {
    /// A manager with the given ranking criterion and no byte cap.
    pub fn new(kind: PlacementPolicyKind) -> Self {
        DataPlacementManager {
            kind,
            budget: None,
            shard_ways: 0,
            replicate_max_bytes: 0,
            homes: BTreeMap::new(),
        }
    }

    /// LFU ranking (the paper's default).
    pub fn lfu() -> Self {
        Self::new(PlacementPolicyKind::Lfu)
    }

    /// LRU ranking (Appendix E variant).
    pub fn lru() -> Self {
        Self::new(PlacementPolicyKind::Lru)
    }

    /// Limit the bytes Algorithm 1 may pin (Figure 24 sweeps this).
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Enable shard-aware placement: large tables' columns are pinned as
    /// `ways`-way *partitions* dealt across the fleet (partition `p` of a
    /// table homed on slot `h` lands on cache `(h + p) % K`), while
    /// tables totalling at most `replicate_max_bytes` accessed bytes are
    /// replicated into every cache. `ways` should match the executor's
    /// `shard_ways` so a shard's partition key probe finds its slice.
    pub fn with_sharding(mut self, ways: usize, replicate_max_bytes: u64) -> Self {
        self.shard_ways = ways;
        self.replicate_max_bytes = replicate_max_bytes;
        self
    }

    /// The configured ranking criterion.
    pub fn kind(&self) -> PlacementPolicyKind {
        self.kind
    }

    /// The sharding degree this manager partitions for (0 = off).
    pub fn shard_ways(&self) -> usize {
        self.shard_ways
    }

    /// Rank all base columns by the configured criterion, best first.
    /// Columns never accessed rank last and are never pinned.
    pub fn ranking(&self, db: &Database) -> Vec<(ColumnId, u64)> {
        let stats = db.stats();
        let mut ranked: Vec<(ColumnId, u64)> = db
            .all_column_ids()
            .map(|id| {
                let score = match self.kind {
                    PlacementPolicyKind::Lfu => stats.access_count(id.index()),
                    PlacementPolicyKind::Lru => stats.last_access_tick(id.index()),
                };
                (id, score)
            })
            .filter(|&(_, score)| score > 0)
            .collect();
        // Descending score; ties broken by id for determinism.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Algorithm 1: fill the cache with the highest-ranked columns that
    /// fit, replacing the previous pinned set. Returns the keys newly
    /// cached (whose transfer the caller charges). `epochs` gives each
    /// column's current data epoch by [`ColumnId::index`] (empty = all
    /// epoch 0, the batch case), so pins target the live version and a
    /// re-run after an append re-pins only the touched columns.
    pub fn update(&self, db: &Database, cache: &mut DataCache, epochs: &[u64]) -> Vec<CacheKey> {
        let budget_cap = self.budget.unwrap_or(u64::MAX).min(cache.capacity());
        let mut used = 0u64;
        let mut pins: Vec<(CacheKey, u64)> = Vec::new();
        for (id, _) in self.ranking(db) {
            let bytes = db.column_size(id);
            let epoch = epochs.get(id.index()).copied().unwrap_or(0);
            if used + bytes <= budget_cap {
                used += bytes;
                pins.push((CacheKey::column_at(id.0, epoch), bytes));
            }
        }
        let (newly_cached, _evicted) = cache.set_pinned(&pins);
        newly_cached
    }

    /// Algorithm 1 over a fleet of co-processor caches. Each *table* is
    /// homed on one device — tables ranked by summed column score and
    /// dealt round-robin across the K caches — and every cache is then
    /// filled in global ranking order from its home tables' columns.
    /// Homing whole tables (rather than striping single columns) keeps a
    /// scan's inputs co-resident, so the data-driven chain rule still
    /// fires at K > 1; the pinned working set scales with the fleet one
    /// table at a time. With K = 1 this degenerates to
    /// [`DataPlacementManager::update`]. Returns `(device, key)` pairs
    /// newly cached so the caller can charge each device's host link.
    ///
    /// Homes are *sticky*: a table keeps its cache across updates even
    /// when the ranking reshuffles, so background placement never evicts
    /// one device's pinned set just to rebuild it on a sibling.
    ///
    /// With [`DataPlacementManager::with_sharding`], large tables are
    /// instead pinned as per-device *partitions* (shard `p` homed on
    /// cache `(home + p) % K`) and small tables replicated everywhere.
    pub fn update_set(
        &mut self,
        db: &Database,
        caches: &mut CacheSet,
        epochs: &[u64],
    ) -> Vec<(DeviceId, CacheKey)> {
        let k = caches.len();
        if k == 0 {
            return Vec::new();
        }
        let ranking = self.ranking(db);
        // Home each accessed table: hottest table first, ties broken by
        // registration index for determinism. Previously homed tables
        // keep their slot; only newcomers consume new round-robin slots.
        let mut table_scores: BTreeMap<usize, u64> = Default::default();
        let mut table_bytes: BTreeMap<usize, u64> = Default::default();
        for &(id, score) in &ranking {
            let table = db.table_of(id);
            *table_scores.entry(table).or_default() += score;
            *table_bytes.entry(table).or_default() += db.column_size(id);
        }
        let mut tables: Vec<(usize, u64)> = table_scores.into_iter().collect();
        tables.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (rank, &(table, _)) in tables.iter().enumerate() {
            self.homes.entry(table).or_insert(rank % k);
        }
        let budgets: Vec<u64> = caches
            .iter()
            .map(|(_, cache)| self.budget.unwrap_or(u64::MAX).min(cache.capacity()))
            .collect();
        let mut used = vec![0u64; k];
        let mut pins: Vec<Vec<(CacheKey, u64)>> = vec![Vec::new(); k];
        let ways = self.shard_ways.min(k);
        for (id, _) in ranking {
            let table = db.table_of(id);
            let home = self.homes[&table];
            let bytes = db.column_size(id);
            let epoch = epochs.get(id.index()).copied().unwrap_or(0);
            if ways >= 2 && k >= 2 {
                if table_bytes[&table] <= self.replicate_max_bytes {
                    // Small build side: replicate into every cache that
                    // has room, so any shard's probe/join runs locally.
                    for (slot, u) in used.iter_mut().enumerate() {
                        if *u + bytes <= budgets[slot] {
                            *u += bytes;
                            pins[slot].push((CacheKey::column_at(id.0, epoch), bytes));
                        }
                    }
                } else {
                    // Large table: deal its partitions across the fleet
                    // starting at the table's home.
                    for p in 0..ways as u32 {
                        let slot = (home + p as usize) % k;
                        let part = partition_bytes(bytes, p, ways as u32);
                        if used[slot] + part <= budgets[slot] {
                            used[slot] += part;
                            pins[slot].push((
                                CacheKey::partition_at(id.0, p, ways as u32, epoch),
                                part,
                            ));
                        }
                    }
                }
            } else if used[home] + bytes <= budgets[home] {
                used[home] += bytes;
                pins[home].push((CacheKey::column_at(id.0, epoch), bytes));
            }
        }
        let mut newly = Vec::new();
        for (slot, pin) in pins.iter().enumerate() {
            let device = DeviceId::from_index(slot + 1);
            let (newly_cached, _evicted) = caches.device_mut(device).set_pinned(pin);
            newly.extend(newly_cached.into_iter().map(|key| (device, key)));
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::CachePolicy;
    use robustq_storage::{ColumnData, DataType, Field, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![
                    Field::new("a", DataType::Int32), // 12 bytes
                    Field::new("b", DataType::Int32),
                    Field::new("c", DataType::Int32),
                ]),
                vec![
                    ColumnData::Int32(vec![1, 2, 3]),
                    ColumnData::Int32(vec![4, 5, 6]),
                    ColumnData::Int32(vec![7, 8, 9]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn touch(db: &Database, col: &str, times: usize) {
        let id = db.column_id("t", col).unwrap();
        for _ in 0..times {
            db.stats().record_access(id.index());
        }
    }

    #[test]
    fn lfu_pins_hottest_columns_within_budget() {
        let db = db();
        touch(&db, "a", 5);
        touch(&db, "b", 3);
        touch(&db, "c", 10);
        let mut cache = DataCache::new(24, CachePolicy::Lru); // room for 2 columns
        let mgr = DataPlacementManager::lfu();
        let newly = mgr.update(&db, &mut cache, &[]);
        assert_eq!(newly.len(), 2);
        let c = db.column_id("t", "c").unwrap();
        let a = db.column_id("t", "a").unwrap();
        assert!(cache.contains(CacheKey(c.0 as u64)));
        assert!(cache.contains(CacheKey(a.0 as u64)));
        assert_eq!(cache.used(), 24);
    }

    #[test]
    fn never_accessed_columns_are_not_pinned() {
        let db = db();
        touch(&db, "a", 1);
        let mut cache = DataCache::new(1_000, CachePolicy::Lru);
        let mgr = DataPlacementManager::lfu();
        mgr.update(&db, &mut cache, &[]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn update_is_incremental_algorithm_1() {
        let db = db();
        touch(&db, "a", 5);
        touch(&db, "b", 4);
        let mut cache = DataCache::new(24, CachePolicy::Lru);
        let mgr = DataPlacementManager::lfu();
        let first = mgr.update(&db, &mut cache, &[]);
        assert_eq!(first.len(), 2);
        // Shift the ranking: c becomes hottest; a survives, b is evicted.
        touch(&db, "c", 10);
        touch(&db, "a", 5);
        let second = mgr.update(&db, &mut cache, &[]);
        let c = db.column_id("t", "c").unwrap();
        let b = db.column_id("t", "b").unwrap();
        assert_eq!(second, vec![CacheKey(c.0 as u64)], "only c is newly cached");
        assert!(!cache.contains(CacheKey(b.0 as u64)));
    }

    #[test]
    fn update_set_homes_whole_tables_across_the_fleet() {
        use robustq_sim::{DeviceSpec, LinkParams, Topology};
        let mut db = db();
        db.add_table(
            Table::new(
                "dim",
                Schema::new(vec![Field::new("d", DataType::Int32)]),
                vec![ColumnData::Int32(vec![1, 2, 3])],
            )
            .unwrap(),
        )
        .unwrap();
        touch(&db, "a", 5);
        touch(&db, "c", 10);
        let dim_d = db.column_id("dim", "d").unwrap();
        for _ in 0..4 {
            db.stats().record_access(dim_d.index());
        }
        let topo = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 24),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(4, 1_000, 24), LinkParams::default());
        let mut caches = CacheSet::for_topology(&topo, CachePolicy::Lru);
        let newly = DataPlacementManager::lfu().update_set(&db, &mut caches, &[]);
        assert_eq!(newly.len(), 3, "all three accessed columns fit somewhere");
        let c = db.column_id("t", "c").unwrap();
        let a = db.column_id("t", "a").unwrap();
        let g1 = DeviceId::Gpu;
        let g2 = DeviceId::coprocessor(2);
        // Table scores: t = 15 → home g1, dim = 4 → home g2. Both of
        // t's hot columns stay co-resident on g1 (a scan of t still
        // places on one device); dim lives on g2.
        assert!(caches.device(g1).contains(CacheKey(c.0 as u64)));
        assert!(caches.device(g1).contains(CacheKey(a.0 as u64)));
        assert!(caches.device(g2).contains(CacheKey(dim_d.0 as u64)));
        assert!(!caches.device(g2).contains(CacheKey(c.0 as u64)), "one home per table");
    }

    #[test]
    fn update_set_with_one_device_matches_update() {
        use robustq_sim::{DeviceSpec, LinkParams, Topology};
        let db = db();
        touch(&db, "a", 5);
        touch(&db, "b", 3);
        touch(&db, "c", 10);
        let topo = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 24),
            LinkParams::default(),
        );
        let mut caches = CacheSet::for_topology(&topo, CachePolicy::Lru);
        let mut single = DataCache::new(24, CachePolicy::Lru);
        let mut mgr = DataPlacementManager::lfu();
        let newly_set = mgr.update_set(&db, &mut caches, &[]);
        let newly_one = mgr.update(&db, &mut single, &[]);
        assert_eq!(
            newly_set.iter().map(|&(_, k)| k).collect::<Vec<_>>(),
            newly_one
        );
        for key in newly_one {
            assert!(caches.device(DeviceId::Gpu).contains(key));
        }
    }

    #[test]
    fn sticky_homes_survive_ranking_reshuffles() {
        use robustq_sim::{DeviceSpec, LinkParams, Topology};
        let mut db = db();
        db.add_table(
            Table::new(
                "dim",
                Schema::new(vec![Field::new("d", DataType::Int32)]),
                vec![ColumnData::Int32(vec![1, 2, 3])],
            )
            .unwrap(),
        )
        .unwrap();
        touch(&db, "a", 10);
        let dim_d = db.column_id("dim", "d").unwrap();
        db.stats().record_access(dim_d.index());
        let topo = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 1_000),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(4, 1_000, 1_000), LinkParams::default());
        let mut caches = CacheSet::for_topology(&topo, CachePolicy::Lru);
        let mut mgr = DataPlacementManager::lfu();
        mgr.update_set(&db, &mut caches, &[]);
        let a = db.column_id("t", "a").unwrap();
        assert!(caches.device(DeviceId::Gpu).contains(CacheKey(a.0 as u64)));
        // Flip the ranking: dim becomes far hotter than t. Without sticky
        // homes the tables would swap devices, evicting both pinned sets.
        for _ in 0..100 {
            db.stats().record_access(dim_d.index());
        }
        let newly = mgr.update_set(&db, &mut caches, &[]);
        assert_eq!(newly, vec![], "a reshuffle must not re-home pinned tables");
        assert!(caches.device(DeviceId::Gpu).contains(CacheKey(a.0 as u64)));
        let g2 = DeviceId::coprocessor(2);
        assert!(caches.device(g2).contains(CacheKey(dim_d.0 as u64)));
    }

    #[test]
    fn sharding_partitions_large_tables_and_replicates_small_ones() {
        use robustq_sim::{DeviceSpec, LinkParams, Topology};
        let mut db = db();
        db.add_table(
            Table::new(
                "dim",
                Schema::new(vec![Field::new("d", DataType::Int32)]),
                vec![ColumnData::Int32(vec![1, 2, 3])], // 12 bytes
            )
            .unwrap(),
        )
        .unwrap();
        touch(&db, "a", 10);
        touch(&db, "b", 9);
        let dim_d = db.column_id("dim", "d").unwrap();
        for _ in 0..5 {
            db.stats().record_access(dim_d.index());
        }
        let topo = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 1_000),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(4, 1_000, 1_000), LinkParams::default());
        let mut caches = CacheSet::for_topology(&topo, CachePolicy::Lru);
        // t's accessed columns total 24 B (> 12), dim totals 12 B (≤ 12):
        // t is partitioned 2-ways, dim replicated everywhere.
        let mut mgr = DataPlacementManager::lfu().with_sharding(2, 12);
        mgr.update_set(&db, &mut caches, &[]);
        let a = db.column_id("t", "a").unwrap();
        let b = db.column_id("t", "b").unwrap();
        let g1 = DeviceId::Gpu;
        let g2 = DeviceId::coprocessor(2);
        for col in [a, b] {
            assert!(caches.device(g1).contains(CacheKey::partition(col.0, 0, 2)));
            assert!(caches.device(g2).contains(CacheKey::partition(col.0, 1, 2)));
            assert!(!caches.device(g1).contains(CacheKey::column(col.0)));
        }
        for dev in [g1, g2] {
            assert!(caches.device(dev).contains(CacheKey::column(dim_d.0)));
        }
        // Partition sizes tile the column exactly.
        assert_eq!(caches.device(g1).used(), 6 + 6 + 12);
        assert_eq!(caches.device(g2).used(), 6 + 6 + 12);
    }

    #[test]
    fn lru_ranks_by_recency() {
        let db = db();
        touch(&db, "a", 10); // frequent but old
        touch(&db, "b", 1); // recent
        let mgr = DataPlacementManager::lru();
        let ranking = mgr.ranking(&db);
        assert_eq!(ranking[0].0, db.column_id("t", "b").unwrap());
        assert_eq!(mgr.kind(), PlacementPolicyKind::Lru);
    }

    #[test]
    fn budget_caps_pinned_bytes() {
        let db = db();
        touch(&db, "a", 3);
        touch(&db, "b", 2);
        touch(&db, "c", 1);
        let mut cache = DataCache::new(1_000, CachePolicy::Lru);
        let mgr = DataPlacementManager::lfu().with_budget(12);
        mgr.update(&db, &mut cache, &[]);
        assert_eq!(cache.used(), 12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn skips_oversized_but_fills_smaller(){
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "big",
                Schema::new(vec![Field::new("x", DataType::Int64)]),
                vec![ColumnData::Int64(vec![0; 10])], // 80 bytes
            )
            .unwrap(),
        )
        .unwrap();
        db.add_table(
            Table::new(
                "small",
                Schema::new(vec![Field::new("y", DataType::Int32)]),
                vec![ColumnData::Int32(vec![0; 3])], // 12 bytes
            )
            .unwrap(),
        )
        .unwrap();
        db.stats().record_access(0);
        db.stats().record_access(0);
        db.stats().record_access(1);
        let mut cache = DataCache::new(20, CachePolicy::Lru);
        DataPlacementManager::lfu().update(&db, &mut cache, &[]);
        // big (80 B) cannot fit; small (12 B) still gets pinned.
        assert_eq!(cache.used(), 12);
    }
}
