//! Concrete cost models behind the engine's [`CostModel`] trait.
//!
//! Two implementations (DESIGN.md §15):
//!
//! * [`StaticCostModel`] — a thin adapter over the existing
//!   [`HypeEstimator`]: per-(class, device) least-squares regressions
//!   that stay on their cold-start priors until they have seen two
//!   *distinct* work sizes. This is the default and reproduces the
//!   pre-refactor behaviour bit for bit.
//! * [`AdaptiveCostModel`] — an online exponentially-weighted moving
//!   average over per-(class, device) *throughput*, refined from every
//!   traced span duration. The span includes processor sharing with
//!   concurrent operators — the duration a placement decision really
//!   pays — where the static regressions only ever see the idealized
//!   uncontended kernel time, so under load the adaptive estimates
//!   track the contended rates the static model structurally cannot
//!   represent. Priors carry a small seeded jitter so runs are
//!   deterministic per seed without every (class, device) cell starting
//!   from the identical number.
//!
//! [`build_cost_model`] maps an [`CostModelKind`] from `ExecOptions` to
//! a boxed model; placement policies call it from `set_cost_model`.

use crate::hype::HypeEstimator;
use robustq_engine::{CostModel, CostModelKind, ModelUpdate};
use robustq_sim::{DeviceId, OpClass, VirtualTime};

/// Construct the model a [`CostModelKind`] names.
pub fn build_cost_model(kind: CostModelKind) -> Box<dyn CostModel> {
    match kind {
        CostModelKind::Static => Box::new(StaticCostModel::new()),
        CostModelKind::Adaptive { seed } => Box::new(AdaptiveCostModel::new(seed)),
    }
}

/// The default model: the HyPE-style learned regressions, unchanged.
///
/// `observe` records the prediction *before* feeding the estimator, so
/// the reported error is the error the placement decision actually paid.
#[derive(Debug, Clone, Default)]
pub struct StaticCostModel {
    hype: HypeEstimator,
    observations: u64,
}

impl StaticCostModel {
    /// A fresh estimator on its cold-start priors.
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped estimator (tests inspect regression state directly).
    pub fn hype(&self) -> &HypeEstimator {
        &self.hype
    }
}

impl CostModel for StaticCostModel {
    fn name(&self) -> &'static str {
        "static"
    }

    fn kind(&self) -> CostModelKind {
        CostModelKind::Static
    }

    fn estimate(
        &self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
    ) -> VirtualTime {
        self.hype.estimate(class, device, bytes_in, bytes_out)
    }

    fn estimate_transfer(&self, bytes: u64) -> VirtualTime {
        self.hype.estimate_transfer(bytes)
    }

    fn observe(
        &mut self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> ModelUpdate {
        let predicted = self.hype.estimate(class, device, bytes_in, bytes_out);
        // The regressions keep learning from the uncontended kernel
        // duration, exactly as before the trait existed; the audit sample
        // is still measured against the span the operator really took.
        self.hype.observe(class, device, bytes_in, bytes_out, kernel);
        self.observations += 1;
        ModelUpdate { class, device, predicted, actual: span, refined: false }
    }

    fn total_observations(&self) -> u64 {
        self.observations
    }

    fn clone_box(&self) -> Box<dyn CostModel> {
        Box::new(self.clone())
    }
}

/// splitmix64 — the standard 64-bit seed scrambler (deterministic,
/// dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One throughput cell of the adaptive model: the current EWMA of
/// observed throughput (bytes/s). `None` cells are still on their
/// seeded prior.
#[derive(Debug, Clone, Copy)]
struct ThroughputCell {
    rate: f64,
    /// Learned per-dispatch overhead in seconds (queueing + launch).
    overhead: f64,
}

/// Online-adaptive cost model: per-(class, device) throughput EWMAs in
/// virtual time.
///
/// Each cell starts from the same rough priors the static model uses
/// (5 GB/s CPU, 15 GB/s co-processor), scaled by a deterministic ±10 %
/// jitter derived from `seed` and the cell index. Every observation
/// moves the cell a fixed fraction [`AdaptiveCostModel::ALPHA`] toward
/// the observed rate, so estimates track the simulated device rates
/// within a handful of operators — including throughput shifts the
/// regression's accumulated statistics would average away.
#[derive(Debug, Clone)]
pub struct AdaptiveCostModel {
    seed: u64,
    /// `cells[device.index()][class.index()]`, grown on demand.
    cells: Vec<[Option<ThroughputCell>; 5]>,
    observations: u64,
}

impl AdaptiveCostModel {
    /// EWMA smoothing factor: weight of the newest observation.
    pub const ALPHA: f64 = 0.25;
    const PRIOR_CPU: f64 = 5.0e9;
    const PRIOR_GPU: f64 = 15.0e9;
    /// Per-dispatch overhead priors: launching on a co-processor costs
    /// roughly an order of magnitude more than a host dispatch.
    const PRIOR_OVERHEAD_CPU: f64 = 20e-9;
    const PRIOR_OVERHEAD_GPU: f64 = 100e-9;
    const COPY_BANDWIDTH: f64 = 1.2e9;

    /// A fresh model whose priors are jittered deterministically from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        AdaptiveCostModel { seed, cells: Vec::new(), observations: 0 }
    }

    /// The same work measure the static estimator regresses on: reads
    /// plus half-weighted writes.
    fn work(bytes_in: u64, bytes_out: u64) -> f64 {
        bytes_in as f64 + bytes_out as f64 / 2.0
    }

    /// The seeded prior rate of one (class, device) cell: the base prior
    /// scaled by a deterministic factor in `[0.9, 1.1)`.
    fn prior(&self, class: OpClass, device: DeviceId) -> f64 {
        let base = if device.is_coprocessor() {
            Self::PRIOR_GPU
        } else {
            Self::PRIOR_CPU
        };
        let cell = (device.index() as u64) * 5 + class.index() as u64;
        let h = splitmix64(self.seed ^ splitmix64(cell));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        base * (0.9 + 0.2 * unit)
    }

    fn cell(&self, class: OpClass, device: DeviceId) -> Option<ThroughputCell> {
        self.cells
            .get(device.index())
            .and_then(|per_dev| per_dev[class.index()])
    }

    fn rate(&self, class: OpClass, device: DeviceId) -> f64 {
        match self.cell(class, device) {
            Some(c) => c.rate,
            None => self.prior(class, device),
        }
    }

    fn overhead(&self, class: OpClass, device: DeviceId) -> f64 {
        match self.cell(class, device) {
            Some(c) => c.overhead,
            None if device.is_coprocessor() => Self::PRIOR_OVERHEAD_GPU,
            None => Self::PRIOR_OVERHEAD_CPU,
        }
    }
}

impl CostModel for AdaptiveCostModel {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn kind(&self) -> CostModelKind {
        CostModelKind::Adaptive { seed: self.seed }
    }

    fn estimate(
        &self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
    ) -> VirtualTime {
        let work = Self::work(bytes_in, bytes_out);
        VirtualTime::from_secs_f64(
            self.overhead(class, device) + work / self.rate(class, device),
        )
    }

    fn estimate_transfer(&self, bytes: u64) -> VirtualTime {
        VirtualTime::from_secs_f64(bytes as f64 / Self::COPY_BANDWIDTH)
    }

    fn observe(
        &mut self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> ModelUpdate {
        let _ = kernel; // the EWMA learns from what placement pays: the span
        let predicted = self.estimate(class, device, bytes_in, bytes_out);
        let work = Self::work(bytes_in, bytes_out);
        let secs = span.as_secs_f64();
        // A zero-duration operator teaches nothing; a positive span
        // refines either the overhead (work-free or overhead-dominated
        // dispatches) or the throughput (everything else).
        let refined = secs > 0.0;
        if refined {
            let rate_prior = self.rate(class, device);
            let overhead_prior = self.overhead(class, device);
            let idx = device.index();
            if self.cells.len() <= idx {
                self.cells.resize_with(idx + 1, || [None; 5]);
            }
            let cell = &mut self.cells[idx][class.index()];
            let (mut rate, mut overhead) = match *cell {
                Some(c) => (c.rate, c.overhead),
                None => (rate_prior, overhead_prior),
            };
            let effective = secs - overhead;
            if work > 0.0 && effective > 0.0 {
                rate = (1.0 - Self::ALPHA) * rate + Self::ALPHA * (work / effective);
            } else {
                // The whole span was overhead: no throughput signal.
                overhead = (1.0 - Self::ALPHA) * overhead + Self::ALPHA * secs;
            }
            *cell = Some(ThroughputCell { rate, overhead });
        }
        self.observations += 1;
        ModelUpdate { class, device, predicted, actual: span, refined }
    }

    fn total_observations(&self) -> u64 {
        self.observations
    }

    fn clone_box(&self) -> Box<dyn CostModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> VirtualTime {
        VirtualTime::from_micros(v * 1_000)
    }

    #[test]
    fn build_maps_kinds_to_models() {
        assert_eq!(build_cost_model(CostModelKind::Static).name(), "static");
        let m = build_cost_model(CostModelKind::Adaptive { seed: 3 });
        assert_eq!(m.name(), "adaptive");
        assert_eq!(m.kind(), CostModelKind::Adaptive { seed: 3 });
    }

    #[test]
    fn static_model_matches_hype_and_marks_unrefined() {
        let mut m = StaticCostModel::new();
        let mut h = HypeEstimator::new();
        let est = m.estimate(OpClass::Selection, DeviceId::Cpu, 5_000_000_000, 0);
        assert_eq!(est, h.estimate(OpClass::Selection, DeviceId::Cpu, 5_000_000_000, 0));
        let pre = m.estimate(OpClass::Selection, DeviceId::Cpu, 1_000, 0);
        let u = m.observe(OpClass::Selection, DeviceId::Cpu, 1_000, 0, ms(1), ms(2));
        h.observe(OpClass::Selection, DeviceId::Cpu, 1_000, 0, ms(1));
        assert!(!u.refined, "static samples never refine");
        assert_eq!(u.predicted, pre, "prediction is captured before the update");
        assert_eq!(u.actual, ms(2), "the audit sample is against the span");
        assert_eq!(
            m.estimate(OpClass::Selection, DeviceId::Cpu, 2_000, 0),
            h.estimate(OpClass::Selection, DeviceId::Cpu, 2_000, 0),
            "adapter stays bit-identical to the bare estimator"
        );
        assert_eq!(m.total_observations(), 1);
    }

    #[test]
    fn adaptive_converges_on_repeated_identical_sizes() {
        // The degenerate-regression case: every operator has the same
        // work, so the static regression never fits. The EWMA converges.
        let mut m = AdaptiveCostModel::new(42);
        let bytes = 10_000_000u64;
        let actual = VirtualTime::from_secs_f64(bytes as f64 / 2.0e9); // 2 GB/s device
        let cold_err = m
            .observe(OpClass::Sort, DeviceId::Gpu, bytes, 0, actual, actual)
            .relative_error();
        for _ in 0..40 {
            m.observe(OpClass::Sort, DeviceId::Gpu, bytes, 0, actual, actual);
        }
        let warm = m.estimate(OpClass::Sort, DeviceId::Gpu, bytes, 0);
        let warm_err =
            (warm.as_secs_f64() - actual.as_secs_f64()).abs() / actual.as_secs_f64();
        assert!(warm_err < 0.01, "EWMA converged to the observed rate");
        assert!(warm_err < cold_err, "cold prior error was larger");
    }

    #[test]
    fn adaptive_is_deterministic_per_seed_and_jittered_across_seeds() {
        let a = AdaptiveCostModel::new(7);
        let b = AdaptiveCostModel::new(7);
        let c = AdaptiveCostModel::new(8);
        let est =
            |m: &AdaptiveCostModel| m.estimate(OpClass::HashJoin, DeviceId::Gpu, 1 << 20, 0);
        assert_eq!(est(&a), est(&b), "same seed, same priors");
        assert_ne!(est(&a), est(&c), "different seed, different jitter");
        // Jitter stays within ±10 % of the base prior.
        let base = VirtualTime::from_secs_f64((1u64 << 20) as f64 / 15.0e9);
        let lo = base.as_secs_f64() / 1.1;
        let hi = base.as_secs_f64() / 0.9;
        assert!((lo..=hi).contains(&est(&a).as_secs_f64()));
    }

    #[test]
    fn adaptive_refines_and_counts() {
        let mut m = AdaptiveCostModel::new(0);
        let u = m.observe(OpClass::Projection, DeviceId::Cpu, 4_096, 4_096, ms(1), ms(1));
        assert!(u.refined);
        let z = m.observe(OpClass::Projection, DeviceId::Cpu, 0, 0, ms(1), ms(1));
        assert!(z.refined, "a work-free span still refines the overhead");
        let z = m.observe(
            OpClass::Projection,
            DeviceId::Cpu,
            0,
            0,
            VirtualTime::ZERO,
            VirtualTime::ZERO,
        );
        assert!(!z.refined, "a zero-duration span teaches nothing");
        assert_eq!(m.total_observations(), 3);
        assert!(m.cell(OpClass::Projection, DeviceId::Cpu).is_some(), "cell warmed");
    }

    #[test]
    fn adaptive_learns_dispatch_overhead_from_work_free_spans() {
        let mut m = AdaptiveCostModel::new(3);
        // Overhead-only dispatches: 100 ns spans with no bytes moved.
        let oh = VirtualTime::from_nanos(100);
        for _ in 0..30 {
            m.observe(OpClass::Aggregation, DeviceId::Gpu, 0, 0, oh, oh);
        }
        let est = m.estimate(OpClass::Aggregation, DeviceId::Gpu, 0, 0);
        let err = (est.as_secs_f64() - oh.as_secs_f64()).abs() / oh.as_secs_f64();
        assert!(err < 0.05, "overhead converged: estimate {est:?} vs {oh:?}");
    }

    #[test]
    fn adaptive_tracks_contended_spans_where_static_cannot() {
        // Ground truth: kernels take `work / 10 GB/s` uncontended, but
        // processor sharing stretches every span 3x. The static
        // regression (fed kernel durations) predicts the kernel time and
        // keeps a ~200 % span error forever; the adaptive EWMA converges
        // onto the contended rate.
        let mut st = StaticCostModel::new();
        let mut ad = AdaptiveCostModel::new(5);
        let mut last_errs = (0.0f64, 0.0f64);
        for i in 1..=40u64 {
            let bytes = 1_000_000 + i * 10_000; // distinct sizes: regression fits
            let kernel = VirtualTime::from_secs_f64(bytes as f64 / 10.0e9);
            let span = VirtualTime::from_secs_f64(3.0 * bytes as f64 / 10.0e9);
            let us = st.observe(OpClass::HashJoin, DeviceId::Gpu, bytes, 0, kernel, span);
            let ua = ad.observe(OpClass::HashJoin, DeviceId::Gpu, bytes, 0, kernel, span);
            last_errs = (us.relative_error(), ua.relative_error());
        }
        assert!(last_errs.0 > 0.5, "static stays ~3x off the span: {last_errs:?}");
        assert!(last_errs.1 < 0.05, "adaptive converged on the span: {last_errs:?}");
    }

    #[test]
    fn boxed_models_clone() {
        let mut m = build_cost_model(CostModelKind::Adaptive { seed: 1 });
        m.observe(OpClass::Selection, DeviceId::Gpu, 1 << 16, 1 << 10, ms(2), ms(2));
        let c = m.clone();
        assert_eq!(c.total_observations(), 1);
        assert_eq!(
            c.estimate(OpClass::Selection, DeviceId::Gpu, 1 << 16, 0),
            m.estimate(OpClass::Selection, DeviceId::Gpu, 1 << 16, 0)
        );
    }
}
