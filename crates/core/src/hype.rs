//! HyPE-style learned cost estimation.
//!
//! CoGaDB delegates operator placement to HyPE, whose cost models are
//! *learned* from observed executions rather than derived analytically.
//! We reproduce that split: one online simple linear regression
//! (`duration ≈ a + b·work_bytes`) per (operator class, device), updated
//! after every completed operator via [`HypeEstimator::observe`]. The
//! estimator never reads the simulator's ground-truth model — before
//! enough observations exist it falls back to deliberately rough priors,
//! exactly the cold-start behaviour learning-based optimizers exhibit.

use robustq_sim::{DeviceId, OpClass, VirtualTime};

/// Online simple linear regression through accumulated sufficient
/// statistics (exact least squares, O(1) per update).
#[derive(Debug, Clone, Default)]
pub struct LinearModel {
    n: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl LinearModel {
    /// An unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations.
    pub fn observations(&self) -> u64 {
        self.n as u64
    }

    /// Add one observation `(x, y)`.
    pub fn observe(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Current `(intercept, slope)`; `None` until two distinct x values
    /// have been seen.
    pub fn coefficients(&self) -> Option<(f64, f64)> {
        if self.n < 2.0 {
            return None;
        }
        let det = self.n * self.sum_xx - self.sum_x * self.sum_x;
        if det.abs() < f64::EPSILON * self.n * self.sum_xx.max(1.0) {
            return None;
        }
        let slope = (self.n * self.sum_xy - self.sum_x * self.sum_y) / det;
        let intercept = (self.sum_y - slope * self.sum_x) / self.n;
        Some((intercept, slope))
    }

    /// Predict `y` for `x`; `None` until the model is fitted.
    pub fn predict(&self, x: f64) -> Option<f64> {
        let (a, b) = self.coefficients()?;
        Some((a + b * x).max(0.0))
    }
}

/// The learned estimator: one model per (class, device). The model
/// table grows on demand, so one estimator serves any topology size —
/// a device never observed simply stays on its cold-start prior.
#[derive(Debug, Clone)]
pub struct HypeEstimator {
    models: Vec<[LinearModel; 5]>,
    /// Prior throughputs (bytes/s) used before models are fitted.
    prior_cpu: f64,
    prior_gpu: f64,
    /// Measured copy bandwidth (bytes/s) used for transfer estimates —
    /// HyPE measures this once at startup on real hardware.
    copy_bandwidth: f64,
}

impl Default for HypeEstimator {
    fn default() -> Self {
        HypeEstimator {
            models: Vec::new(),
            // Rough cold-start priors: a co-processor is assumed ~3× faster.
            prior_cpu: 5.0e9,
            prior_gpu: 15.0e9,
            copy_bandwidth: 1.2e9,
        }
    }
}

impl HypeEstimator {
    /// An estimator with default priors and no observations.
    pub fn new() -> Self {
        Self::default()
    }

    fn model(&self, class: OpClass, device: DeviceId) -> Option<&LinearModel> {
        self.models.get(device.index()).map(|per_dev| &per_dev[class.index()])
    }

    fn model_mut(&mut self, class: OpClass, device: DeviceId) -> &mut LinearModel {
        let idx = device.index();
        if self.models.len() <= idx {
            self.models.resize_with(idx + 1, Default::default);
        }
        &mut self.models[idx][class.index()]
    }

    /// Work measure fed to the per-class regressions (mirrors the shape,
    /// not the constants, of the real cost: reads plus half-weighted
    /// writes).
    fn work(bytes_in: u64, bytes_out: u64) -> f64 {
        bytes_in as f64 + bytes_out as f64 / 2.0
    }

    /// Record one completed operator.
    pub fn observe(
        &mut self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        duration: VirtualTime,
    ) {
        self.model_mut(class, device)
            .observe(Self::work(bytes_in, bytes_out), duration.as_secs_f64());
    }

    /// Estimated kernel duration of one operator.
    pub fn estimate(
        &self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
    ) -> VirtualTime {
        let work = Self::work(bytes_in, bytes_out);
        match self.model(class, device).and_then(|m| m.predict(work)) {
            Some(secs) => VirtualTime::from_secs_f64(secs),
            None => {
                let prior = if device.is_coprocessor() {
                    self.prior_gpu
                } else {
                    self.prior_cpu
                };
                VirtualTime::from_secs_f64(work / prior)
            }
        }
    }

    /// Estimated one-way transfer time for `bytes`.
    pub fn estimate_transfer(&self, bytes: u64) -> VirtualTime {
        VirtualTime::from_secs_f64(bytes as f64 / self.copy_bandwidth)
    }

    /// Total observations across all models (used in reports/tests).
    pub fn total_observations(&self) -> u64 {
        self.models
            .iter()
            .flat_map(|per_dev| per_dev.iter())
            .map(LinearModel::observations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_recovers_line() {
        let mut m = LinearModel::new();
        for x in [1.0, 2.0, 5.0, 10.0] {
            m.observe(x, 3.0 + 2.0 * x);
        }
        let (a, b) = m.coefficients().unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((m.predict(7.0).unwrap() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn unfitted_model_predicts_none() {
        let mut m = LinearModel::new();
        assert!(m.predict(1.0).is_none());
        m.observe(4.0, 2.0);
        assert!(m.predict(1.0).is_none(), "one point is not a line");
        // Two observations at the same x are still degenerate.
        m.observe(4.0, 3.0);
        assert!(m.predict(1.0).is_none());
    }

    #[test]
    fn prediction_clamps_negative_durations() {
        let mut m = LinearModel::new();
        m.observe(10.0, 1.0);
        m.observe(20.0, 3.0);
        // Extrapolating to x=0 gives a negative intercept; clamp to 0.
        assert_eq!(m.predict(0.0).unwrap(), 0.0);
    }

    #[test]
    fn estimator_uses_priors_then_learns() {
        let mut e = HypeEstimator::new();
        let cold = e.estimate(OpClass::Selection, DeviceId::Cpu, 5_000_000_000, 0);
        assert_eq!(cold, VirtualTime::from_secs_f64(1.0), "prior is 5 GB/s");

        // Teach it a 10 GB/s device.
        for mb in [1u64, 10, 100] {
            let bytes = mb * 1_000_000;
            e.observe(
                OpClass::Selection,
                DeviceId::Cpu,
                bytes,
                0,
                VirtualTime::from_secs_f64(bytes as f64 / 10.0e9),
            );
        }
        let warm = e.estimate(OpClass::Selection, DeviceId::Cpu, 5_000_000_000, 0);
        assert!((warm.as_secs_f64() - 0.5).abs() < 0.01, "learned 10 GB/s");
    }

    #[test]
    fn models_are_per_class_and_device() {
        let mut e = HypeEstimator::new();
        e.observe(OpClass::Sort, DeviceId::Gpu, 1_000, 0, VirtualTime::from_micros(10));
        assert_eq!(e.total_observations(), 1);
        // Selection/CPU is untouched and still on priors.
        let est = e.estimate(OpClass::Selection, DeviceId::Cpu, 5_000_000_000, 0);
        assert_eq!(est, VirtualTime::from_secs_f64(1.0));
    }

    #[test]
    fn extra_coprocessors_get_their_own_models_and_gpu_prior() {
        let mut e = HypeEstimator::new();
        let g2 = DeviceId::coprocessor(2);
        // Cold: any co-processor falls back to the GPU prior (15 GB/s).
        let cold = e.estimate(OpClass::Selection, g2, 15_000_000_000, 0);
        assert_eq!(cold, VirtualTime::from_secs_f64(1.0));
        // Teach GPU2 a 5 GB/s rate; GPU1 stays on its prior.
        for mb in [1u64, 10, 100] {
            let bytes = mb * 1_000_000;
            e.observe(
                OpClass::Selection,
                g2,
                bytes,
                0,
                VirtualTime::from_secs_f64(bytes as f64 / 5.0e9),
            );
        }
        let warm = e.estimate(OpClass::Selection, g2, 15_000_000_000, 0);
        assert!((warm.as_secs_f64() - 3.0).abs() < 0.05, "learned 5 GB/s");
        let g1 = e.estimate(OpClass::Selection, DeviceId::Gpu, 15_000_000_000, 0);
        assert_eq!(g1, VirtualTime::from_secs_f64(1.0), "GPU1 unaffected");
    }

    #[test]
    fn transfer_estimate_scales_linearly() {
        let e = HypeEstimator::new();
        let t1 = e.estimate_transfer(1_200_000_000);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = e.estimate_transfer(2_400_000_000);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn output_bytes_contribute_half_work() {
        let e = HypeEstimator::new();
        let with_out = e.estimate(OpClass::Projection, DeviceId::Cpu, 1_000_000, 2_000_000);
        let doubled_in = e.estimate(OpClass::Projection, DeviceId::Cpu, 2_000_000, 0);
        assert_eq!(with_out, doubled_in);
    }
}
