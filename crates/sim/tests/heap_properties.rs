//! Property tests for the device heap: byte conservation against a
//! naive model, peak monotonicity, no-op frees and reset, under random
//! allocate/free sequences.

use std::collections::HashMap;

use proptest::prelude::*;
use robustq_sim::HeapAllocator;

const CAPACITY: u64 = 10_000;

/// One scripted heap operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc { tag: u64, bytes: u64 },
    Free { tag: u64 },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    // (selector, tag, bytes): selector 0..3 → alloc, 3 → free, so the
    // sequence leans towards filling the heap and forcing failures.
    prop::collection::vec((0u8..4, 0u64..8, 0u64..4_000), 0..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, tag, bytes)| {
                if sel < 3 {
                    Op::Alloc { tag, bytes }
                } else {
                    Op::Free { tag }
                }
            })
            .collect()
    })
}

proptest! {
    /// After every operation the heap agrees with a naive model: `used`
    /// equals the model's total, equals the recomputed allocation-list
    /// sum, never exceeds capacity, and `live_tags` matches the model.
    #[test]
    fn conservation_against_model(ops in ops_strategy()) {
        let mut heap = HeapAllocator::new(CAPACITY);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Alloc { tag, bytes } => {
                    let model_total: u64 = model.values().sum();
                    let fits = bytes <= CAPACITY - model_total;
                    let ok = heap.try_alloc(tag, bytes);
                    prop_assert_eq!(ok, fits, "alloc admission diverged from model");
                    if ok && bytes > 0 {
                        *model.entry(tag).or_insert(0) += bytes;
                    }
                }
                Op::Free { tag } => {
                    let expected = model.remove(&tag).unwrap_or(0);
                    prop_assert_eq!(heap.free_tag(tag), expected);
                }
            }
            let model_total: u64 = model.values().sum();
            prop_assert_eq!(heap.used(), model_total);
            prop_assert_eq!(heap.accounted_bytes(), heap.used());
            prop_assert!(heap.used() <= heap.capacity());
            let mut tags: Vec<u64> = model.keys().copied().collect();
            tags.sort_unstable();
            prop_assert_eq!(heap.live_tags(), tags);
            for (&tag, &bytes) in &model {
                prop_assert_eq!(heap.bytes_of(tag), bytes);
            }
        }
    }

    /// The high-water mark never decreases, always covers `used`, and
    /// equals the running maximum of `used` over the history.
    #[test]
    fn peak_is_the_running_maximum(ops in ops_strategy()) {
        let mut heap = HeapAllocator::new(CAPACITY);
        let mut high = 0;
        for op in ops {
            let before = heap.peak();
            match op {
                Op::Alloc { tag, bytes } => { let _ = heap.try_alloc(tag, bytes); }
                Op::Free { tag } => { let _ = heap.free_tag(tag); }
            }
            high = high.max(heap.used());
            prop_assert!(heap.peak() >= before, "peak decreased");
            prop_assert_eq!(heap.peak(), high);
        }
    }

    /// Freeing a tag that was never allocated is a no-op returning 0,
    /// whatever state the heap is in.
    #[test]
    fn unknown_free_is_a_noop(ops in ops_strategy(), ghost in 100u64..200) {
        let mut heap = HeapAllocator::new(CAPACITY);
        for op in ops {
            match op {
                Op::Alloc { tag, bytes } => { let _ = heap.try_alloc(tag, bytes); }
                Op::Free { tag } => { let _ = heap.free_tag(tag); }
            }
            let used = heap.used();
            let tags = heap.live_tags();
            prop_assert_eq!(heap.free_tag(ghost), 0);
            prop_assert_eq!(heap.used(), used);
            prop_assert_eq!(heap.live_tags(), tags);
        }
    }

    /// Reset always restores the empty heap (but keeps the peak as a
    /// report of the past run), and the full capacity is usable again.
    #[test]
    fn reset_restores_empty(ops in ops_strategy()) {
        let mut heap = HeapAllocator::new(CAPACITY);
        for op in ops {
            match op {
                Op::Alloc { tag, bytes } => { let _ = heap.try_alloc(tag, bytes); }
                Op::Free { tag } => { let _ = heap.free_tag(tag); }
            }
        }
        heap.reset();
        prop_assert_eq!(heap.used(), 0);
        prop_assert_eq!(heap.accounted_bytes(), 0);
        prop_assert!(heap.live_tags().is_empty());
        prop_assert!(heap.try_alloc(0, CAPACITY));
    }
}
