//! Property tests for the device column cache: exact byte accounting
//! under random operation sequences, pinned entries surviving any
//! eviction pressure, and LRU/LFU picking the right victim.

use proptest::prelude::*;
use robustq_sim::{CacheKey, CachePolicy, DataCache};

const CAPACITY: u64 = 1_000;

fn k(v: u64) -> CacheKey {
    CacheKey(v)
}

/// One scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, bytes: u64 },
    Probe { key: u64 },
    /// Replace the pinned set with `keys` (each 100 bytes, ≤ 8 keys, so
    /// the pinned set always fits the 1000-byte capacity).
    Pin { keys: Vec<u64> },
    Clear,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..8, 0u64..12, 1u64..500, prop::collection::vec(0u64..12, 0..6)),
        0..80,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, key, bytes, mut pins)| match sel {
                0..=3 => Op::Insert { key, bytes },
                4..=5 => Op::Probe { key },
                6 => {
                    pins.sort_unstable();
                    pins.dedup();
                    Op::Pin { keys: pins }
                }
                _ => Op::Clear,
            })
            .collect()
    })
}

fn policy_of(flag: bool) -> CachePolicy {
    if flag {
        CachePolicy::Lru
    } else {
        CachePolicy::Lfu
    }
}

proptest! {
    /// After every operation: `used` equals the recomputed per-entry sum
    /// and never exceeds capacity; every eviction reported by an insert
    /// left the cache; a reported insert is resident.
    #[test]
    fn byte_accounting_is_exact(ops in ops_strategy(), lru in proptest::bool::ANY) {
        let mut c = DataCache::new(CAPACITY, policy_of(lru));
        for op in ops {
            match op {
                Op::Insert { key, bytes } => {
                    let out = c.insert(k(key), bytes);
                    for &(victim, _) in &out.evicted {
                        prop_assert!(!c.contains(victim), "evicted key still resident");
                        prop_assert_ne!(victim, k(key));
                    }
                    prop_assert_eq!(out.inserted, c.contains(k(key)));
                    if !out.inserted {
                        prop_assert!(out.evicted.is_empty(), "failed insert evicted");
                    }
                }
                Op::Probe { key } => {
                    prop_assert_eq!(c.probe(k(key)), c.contains(k(key)));
                }
                Op::Pin { keys } => {
                    let set: Vec<(CacheKey, u64)> =
                        keys.iter().map(|&v| (k(v), 100)).collect();
                    let (cached, evicted) = c.set_pinned(&set);
                    let pinned = c.pinned_keys();
                    prop_assert_eq!(
                        &pinned,
                        &keys.iter().copied().map(k).collect::<Vec<_>>()
                    );
                    for &key in &cached {
                        prop_assert!(c.contains(key));
                    }
                    // An evicted key may only remain pinned if it was
                    // re-cached at the declared size in the same call.
                    for key in &evicted {
                        prop_assert!(
                            !pinned.contains(key) || cached.contains(key),
                            "evicted a pinned key without re-caching it"
                        );
                    }
                }
                Op::Clear => {
                    c.clear();
                    prop_assert!(c.is_empty());
                }
            }
            prop_assert_eq!(c.used(), c.accounted_bytes());
            prop_assert!(c.used() <= c.capacity());
            prop_assert_eq!(c.len(), c.resident_keys().len());
        }
    }

    /// Pinned entries survive arbitrary operator-driven insert pressure;
    /// only unpinned entries are ever evicted.
    #[test]
    fn pinned_entries_are_never_evicted(
        pins in prop::collection::vec(0u64..6, 1..6),
        inserts in prop::collection::vec((10u64..30, 1u64..400), 0..60),
        lru in proptest::bool::ANY,
    ) {
        let mut c = DataCache::new(CAPACITY, policy_of(lru));
        let mut pins = pins;
        pins.sort_unstable();
        pins.dedup();
        let set: Vec<(CacheKey, u64)> = pins.iter().map(|&v| (k(v), 100)).collect();
        c.set_pinned(&set);
        for (key, bytes) in inserts {
            let out = c.insert(k(key), bytes);
            for &(victim, _) in &out.evicted {
                prop_assert!(
                    !pins.iter().any(|&p| k(p) == victim),
                    "evicted pinned key {victim:?}"
                );
            }
            for &p in &pins {
                prop_assert!(c.contains(k(p)), "pinned key {p} missing");
            }
            prop_assert_eq!(c.used(), c.accounted_bytes());
        }
    }

    /// LRU evicts exactly the least recently touched unpinned entry: fill
    /// the cache with equal-size entries, refresh them in a random
    /// permutation, then overflow — the evicted entry is the one whose
    /// refresh came first.
    #[test]
    fn lru_evicts_in_recency_order(perm_seed in prop::collection::vec(0u64..1_000, 5)) {
        let mut c = DataCache::new(CAPACITY, CachePolicy::Lru);
        for key in 0..5u64 {
            prop_assert!(c.insert(k(key), 200).inserted);
        }
        // A deterministic permutation of 0..5 from the random ranks.
        let mut order: Vec<u64> = (0..5).collect();
        order.sort_by_key(|&key| (perm_seed[key as usize], key));
        for &key in &order {
            prop_assert!(c.probe(k(key)), "refresh of resident key missed");
        }
        let out = c.insert(k(100), 200);
        prop_assert!(out.inserted);
        prop_assert_eq!(out.evicted.len(), 1);
        prop_assert_eq!(out.evicted[0].0, k(order[0]), "LRU victim out of order");
    }

    /// LFU evicts the least frequently used unpinned entry (recency as
    /// the tie-break): give each entry a distinct probe count and
    /// overflow — the evicted entry has the smallest count.
    #[test]
    fn lfu_evicts_in_frequency_order(extra in prop::collection::vec(0u64..3, 5)) {
        let mut c = DataCache::new(CAPACITY, CachePolicy::Lfu);
        // Entry `key` ends with access_count = 1 (insert) + 2*key + extra
        // probes biased so counts stay distinct per key.
        let mut counts = Vec::new();
        for key in 0..5u64 {
            prop_assert!(c.insert(k(key), 200).inserted);
            let probes = 3 * key + extra[key as usize];
            for _ in 0..probes {
                c.probe(k(key));
            }
            counts.push((1 + probes, key));
        }
        counts.sort();
        let out = c.insert(k(100), 200);
        prop_assert!(out.inserted);
        prop_assert_eq!(out.evicted.len(), 1);
        // The victim must have the minimal access count (ties broken by
        // recency, which for equal counts is the smaller key here since
        // probes ran in key order).
        let min_count = counts[0].0;
        let victim = out.evicted[0].0;
        let victim_count = 1 + 3 * victim.0 + extra[victim.0 as usize];
        prop_assert_eq!(victim_count, min_count, "LFU victim not least frequent");
    }
}
