//! Device column cache.
//!
//! Part of the co-processor memory is used as a cache for base columns
//! (Section 2.1). Two modes are exercised by the paper:
//!
//! * **operator-driven** (the classic approach): an operator placed on the
//!   co-processor pulls its inputs into the cache on demand, evicting by
//!   LRU or LFU — this is what thrashes when the working set exceeds the
//!   cache (Figure 2);
//! * **data-driven** (Section 3): a placement manager *pins* the most
//!   frequently used columns (Algorithm 1), and operators only run on the
//!   co-processor when their inputs are pinned.

use std::collections::HashMap;

/// Opaque cache key; the engine uses the base-column id, or a
/// column-partition id for sharded scans (see [`CacheKey::partition`]),
/// each versioned by the column's epoch of last append (see
/// [`CacheKey::column_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

/// Bit layout of partition keys: flag | epoch | of | index | column id.
const PARTITION_FLAG: u64 = 1 << 63;
/// Partition keys carry the epoch in bits 49..63 (14 bits).
const PART_EPOCH_SHIFT: u64 = 49;
const PART_EPOCH_MAX: u64 = (1 << 14) - 1;
/// Whole-column keys carry the epoch in bits 32..62 (30 bits).
const COL_EPOCH_SHIFT: u64 = 32;
const COL_EPOCH_MAX: u64 = (1 << 30) - 1;

impl CacheKey {
    /// Key of a whole base column at epoch 0 (a never-appended column).
    pub fn column(id: u32) -> CacheKey {
        CacheKey::column_at(id, 0)
    }

    /// Key of a whole base column as of the epoch of its last append.
    ///
    /// The epoch is part of the key, so staging after an append can never
    /// hit a stale pre-append copy: entries for older epochs simply stop
    /// matching (and are actively dropped by
    /// [`DataCache::invalidate_column`]). Epoch 0 keys are bit-identical
    /// to the pre-epoch encoding, which keeps every batch golden intact.
    pub fn column_at(id: u32, epoch: u64) -> CacheKey {
        debug_assert!(epoch <= COL_EPOCH_MAX, "epoch out of key range");
        CacheKey(((epoch & COL_EPOCH_MAX) << COL_EPOCH_SHIFT) | id as u64)
    }

    /// Key of row-range partition `index` of `of` of a base column at
    /// epoch 0. The encoding keeps partition keys disjoint from
    /// whole-column keys, so a partitioned and a fully cached copy of the
    /// same column can coexist without colliding.
    pub fn partition(id: u32, index: u32, of: u32) -> CacheKey {
        CacheKey::partition_at(id, index, of, 0)
    }

    /// Key of a column partition as of the epoch of its last append.
    pub fn partition_at(id: u32, index: u32, of: u32, epoch: u64) -> CacheKey {
        debug_assert!(index < of, "partition index out of range");
        debug_assert!(of <= u8::MAX as u32 + 1, "at most 256 partitions");
        debug_assert!(epoch <= PART_EPOCH_MAX, "epoch out of key range");
        CacheKey(
            PARTITION_FLAG
                | ((epoch & PART_EPOCH_MAX) << PART_EPOCH_SHIFT)
                | ((of as u64) << 40)
                | ((index as u64) << 32)
                | id as u64,
        )
    }

    /// The base-column id this key caches (whole or partitioned).
    pub fn column_id(self) -> u32 {
        self.0 as u32
    }

    /// `(index, of)` if this is a partition key, `None` for whole columns.
    pub fn partition_of(self) -> Option<(u32, u32)> {
        if self.0 & PARTITION_FLAG == 0 {
            return None;
        }
        Some(((self.0 >> 32) as u8 as u32, (self.0 >> 40) as u32 & 0x1ff))
    }

    /// The append epoch this key was staged under (0 = never appended).
    pub fn epoch(self) -> u64 {
        if self.0 & PARTITION_FLAG == 0 {
            (self.0 >> COL_EPOCH_SHIFT) & COL_EPOCH_MAX
        } else {
            (self.0 >> PART_EPOCH_SHIFT) & PART_EPOCH_MAX
        }
    }
}

/// Bytes of partition `index` of `of` of a `full`-byte column: the exact
/// slice sizes sum back to `full` across all partitions.
pub fn partition_bytes(full: u64, index: u32, of: u32) -> u64 {
    let of = of.max(1) as u64;
    let lo = full * index as u64 / of;
    let hi = full * (index as u64 + 1) / of;
    hi - lo
}

/// Eviction policy for unpinned entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least recently used entry.
    Lru,
    /// Evict the least frequently used entry (ties: least recent).
    Lfu,
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    last_tick: u64,
    access_count: u64,
    pinned: bool,
}

/// Result of an insert attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the entry now resides in the cache.
    pub inserted: bool,
    /// Entries evicted to make room, with their sizes.
    pub evicted: Vec<(CacheKey, u64)>,
}

/// Why entries left the cache, cumulative over its lifetime. Separating
/// the two pressures shows *who* is thrashing: operator-driven inserts
/// displacing each other, or the placement manager's re-pins churning
/// the resident set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvictionReasons {
    /// Evicted to make room for an operator-driven [`DataCache::insert`].
    pub for_insert: u64,
    /// Dropped or displaced by a [`DataCache::set_pinned`] re-pin
    /// (stale pins, resized pins, and room made for new pins).
    pub for_pin: u64,
}

impl EvictionReasons {
    /// Total evictions for any reason.
    pub fn total(&self) -> u64 {
        self.for_insert + self.for_pin
    }
}

/// The device column cache.
#[derive(Debug, Clone)]
pub struct DataCache {
    capacity: u64,
    used: u64,
    policy: CachePolicy,
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: EvictionReasons,
}

impl DataCache {
    /// An empty cache of `capacity` bytes with the given policy.
    pub fn new(capacity: u64, policy: CachePolicy) -> Self {
        DataCache {
            capacity,
            used: 0,
            policy,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: EvictionReasons::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cache hits/misses recorded through [`DataCache::probe`].
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Cumulative eviction counts broken down by reason.
    pub fn eviction_reasons(&self) -> EvictionReasons {
        self.evictions
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Record an access: returns `true` on hit (updating recency and
    /// frequency), `false` on miss.
    pub fn probe(&mut self, key: CacheKey) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_tick = tick;
            e.access_count += 1;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `key` (`bytes` large), evicting unpinned entries as needed.
    ///
    /// If the entry cannot fit even after evicting every unpinned entry,
    /// nothing changes and `inserted` is `false` — the caller then
    /// processes the data without caching it.
    pub fn insert(&mut self, key: CacheKey, bytes: u64) -> InsertOutcome {
        if self.contains(key) {
            self.probe(key);
            return InsertOutcome { inserted: true, evicted: Vec::new() };
        }
        let unpinned: u64 =
            self.entries.values().filter(|e| !e.pinned).map(|e| e.bytes).sum();
        if bytes > self.capacity - self.used + unpinned {
            return InsertOutcome { inserted: false, evicted: Vec::new() };
        }
        let mut evicted = Vec::new();
        while self.capacity - self.used < bytes {
            let victim = self
                .victim_key()
                .expect("unpinned bytes were sufficient, so a victim exists");
            let e = self.entries.remove(&victim).expect("victim is resident");
            self.used -= e.bytes;
            self.evictions.for_insert += 1;
            evicted.push((victim, e.bytes));
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry { bytes, last_tick: self.tick, access_count: 1, pinned: false },
        );
        self.used += bytes;
        InsertOutcome { inserted: true, evicted }
    }

    /// Pick the next eviction victim among unpinned entries.
    fn victim_key(&self) -> Option<CacheKey> {
        let candidates = self.entries.iter().filter(|(_, e)| !e.pinned);
        match self.policy {
            CachePolicy::Lru => candidates
                .min_by_key(|(k, e)| (e.last_tick, **k))
                .map(|(k, _)| *k),
            CachePolicy::Lfu => candidates
                .min_by_key(|(k, e)| (e.access_count, e.last_tick, **k))
                .map(|(k, _)| *k),
        }
    }

    /// Make the *pinned* portion of the cache exactly `entries`
    /// (Algorithm 1: evict `old \ new`, cache `new \ old`).
    ///
    /// Previously pinned entries not in `entries` are unpinned and
    /// removed. Unpinned (operator-driven) entries are evicted as needed
    /// to make room. Returns `(newly cached, evicted)` key lists; the
    /// caller charges transfer time for the newly cached ones.
    ///
    /// # Panics
    /// Panics if the pinned set itself exceeds the cache capacity — the
    /// placement manager is responsible for respecting the budget.
    pub fn set_pinned(&mut self, entries: &[(CacheKey, u64)]) -> (Vec<CacheKey>, Vec<CacheKey>) {
        let total: u64 = entries.iter().map(|&(_, b)| b).sum();
        assert!(
            total <= self.capacity,
            "pinned set ({total}B) exceeds cache capacity ({}B)",
            self.capacity
        );
        let new_keys: HashMap<CacheKey, u64> = entries.iter().copied().collect();
        let mut evicted = Vec::new();
        // Drop stale pinned entries.
        let stale: Vec<CacheKey> = self
            .entries
            .iter()
            .filter(|(k, e)| e.pinned && !new_keys.contains_key(k))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            let e = self.entries.remove(&k).expect("stale key is resident");
            self.used -= e.bytes;
            self.evictions.for_pin += 1;
            evicted.push(k);
        }
        // Pin already-resident entries in place. An entry resident at a
        // *different* size than declared is dropped and re-cached below
        // at the declared size — keeping it would let the pinned set
        // exceed its declared budget (and strand the eviction loop with
        // nothing left to evict).
        for (&k, &bytes) in &new_keys {
            match self.entries.get_mut(&k) {
                Some(e) if e.bytes == bytes => e.pinned = true,
                Some(_) => {
                    let e = self.entries.remove(&k).expect("entry is resident");
                    self.used -= e.bytes;
                    self.evictions.for_pin += 1;
                    evicted.push(k);
                }
                None => {}
            }
        }
        // Insert the missing ones, evicting unpinned entries as needed.
        let mut newly_cached = Vec::new();
        for (&k, &bytes) in &new_keys {
            if self.contains(k) {
                continue;
            }
            while self.capacity - self.used < bytes {
                let victim = self
                    .victim_key()
                    .expect("pinned set fits capacity, so unpinned victims suffice");
                let e = self.entries.remove(&victim).expect("victim is resident");
                self.used -= e.bytes;
                self.evictions.for_pin += 1;
                evicted.push(victim);
            }
            self.tick += 1;
            self.entries.insert(
                k,
                Entry { bytes, last_tick: self.tick, access_count: 0, pinned: true },
            );
            self.used += bytes;
            newly_cached.push(k);
        }
        newly_cached.sort();
        evicted.sort();
        (newly_cached, evicted)
    }

    /// Bytes held across all resident entries, recomputed from the entry
    /// table. Accounting invariant (chaos/property tests):
    /// `accounted_bytes() == used()` must hold after every operation.
    pub fn accounted_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Keys of all resident entries, sorted.
    pub fn resident_keys(&self) -> Vec<CacheKey> {
        let mut v: Vec<CacheKey> = self.entries.keys().copied().collect();
        v.sort();
        v
    }

    /// Bytes of `key` if resident.
    pub fn bytes_of(&self, key: CacheKey) -> Option<u64> {
        self.entries.get(&key).map(|e| e.bytes)
    }

    /// Keys of all pinned entries.
    pub fn pinned_keys(&self) -> Vec<CacheKey> {
        let mut v: Vec<CacheKey> =
            self.entries.iter().filter(|(_, e)| e.pinned).map(|(k, _)| *k).collect();
        v.sort();
        v
    }

    /// Drop every resident copy (whole or partitioned, pinned or not) of
    /// `column_id` staged under an epoch older than `current_epoch`.
    ///
    /// This is the append-invalidation primitive: an append bumps the
    /// column's epoch, so anything staged under an earlier epoch is a
    /// stale prefix copy. Entries for other columns are untouched —
    /// appends invalidate only the columns they touch. Returns the
    /// dropped `(key, bytes)` pairs, sorted by key.
    pub fn invalidate_column(
        &mut self,
        column_id: u32,
        current_epoch: u64,
    ) -> Vec<(CacheKey, u64)> {
        let stale: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|k| k.column_id() == column_id && k.epoch() < current_epoch)
            .copied()
            .collect();
        let mut dropped = Vec::with_capacity(stale.len());
        for k in stale {
            let e = self.entries.remove(&k).expect("stale key is resident");
            self.used -= e.bytes;
            dropped.push((k, e.bytes));
        }
        dropped.sort();
        dropped
    }

    /// Remove everything, including pinned entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

/// One [`DataCache`] per co-processor of a topology.
///
/// Callers that persist cache state across runs (the data-driven
/// strategies warm their pins once per workload) hold a `CacheSet` and
/// hand it to the executor, which routes every probe/insert to the
/// cache of the device the operator landed on.
#[derive(Debug, Clone)]
pub struct CacheSet {
    /// `caches[k]` belongs to co-processor `k + 1`.
    caches: Vec<DataCache>,
}

impl CacheSet {
    /// Empty caches sized from each co-processor's `cache_bytes`.
    pub fn for_topology(topology: &crate::topology::Topology, policy: CachePolicy) -> Self {
        CacheSet {
            caches: topology
                .coprocessors()
                .map(|d| DataCache::new(topology.spec(d).cache_bytes, policy))
                .collect(),
        }
    }

    /// Number of caches (= co-processors).
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// Whether the set holds no caches (CPU-only topology).
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// The cache of co-processor `device`.
    ///
    /// # Panics
    /// Panics for the CPU (it has no column cache) or an unknown device.
    pub fn device(&self, device: crate::device::DeviceId) -> &DataCache {
        assert!(device.is_coprocessor(), "the CPU has no column cache");
        &self.caches[device.index() - 1]
    }

    /// Mutable access to co-processor `device`'s cache.
    pub fn device_mut(&mut self, device: crate::device::DeviceId) -> &mut DataCache {
        assert!(device.is_coprocessor(), "the CPU has no column cache");
        &mut self.caches[device.index() - 1]
    }

    /// `(device, cache)` pairs in dense device order.
    pub fn iter(&self) -> impl Iterator<Item = (crate::device::DeviceId, &DataCache)> {
        self.caches
            .iter()
            .enumerate()
            .map(|(i, c)| (crate::device::DeviceId::from_index(i + 1), c))
    }

    /// Mutable `(device, cache)` pairs in dense device order.
    pub fn iter_mut(
        &mut self,
    ) -> impl Iterator<Item = (crate::device::DeviceId, &mut DataCache)> {
        self.caches
            .iter_mut()
            .enumerate()
            .map(|(i, c)| (crate::device::DeviceId::from_index(i + 1), c))
    }

    /// Fleet-wide eviction counts broken down by reason.
    pub fn eviction_reasons(&self) -> EvictionReasons {
        self.caches.iter().fold(EvictionReasons::default(), |a, c| {
            let e = c.eviction_reasons();
            EvictionReasons {
                for_insert: a.for_insert + e.for_insert,
                for_pin: a.for_pin + e.for_pin,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> CacheKey {
        CacheKey(v)
    }

    #[test]
    fn insert_and_probe() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        assert!(c.insert(k(1), 40).inserted);
        assert!(c.probe(k(1)));
        assert!(!c.probe(k(2)));
        assert_eq!(c.hit_miss(), (1, 1));
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.insert(k(1), 40);
        c.insert(k(2), 40);
        c.probe(k(1)); // 2 is now least recent
        let out = c.insert(k(3), 40);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![(k(2), 40)]);
        assert!(c.contains(k(1)) && c.contains(k(3)));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = DataCache::new(100, CachePolicy::Lfu);
        c.insert(k(1), 40);
        c.insert(k(2), 40);
        c.probe(k(1));
        c.probe(k(1));
        c.probe(k(2)); // counts: 1 -> 3, 2 -> 2
        let out = c.insert(k(3), 40);
        assert_eq!(out.evicted, vec![(k(2), 40)]);
    }

    #[test]
    fn oversized_insert_refused_without_damage() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.insert(k(1), 60);
        let out = c.insert(k(2), 150);
        assert!(!out.inserted);
        assert!(out.evicted.is_empty());
        assert!(c.contains(k(1)));
        assert_eq!(c.used(), 60);
    }

    #[test]
    fn reinserting_resident_key_is_a_hit() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.insert(k(1), 60);
        let out = c.insert(k(1), 60);
        assert!(out.inserted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.used(), 60);
    }

    #[test]
    fn pinning_replaces_the_pinned_set() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        let (cached, evicted) = c.set_pinned(&[(k(1), 30), (k(2), 30)]);
        assert_eq!(cached, vec![k(1), k(2)]);
        assert!(evicted.is_empty());
        assert_eq!(c.pinned_keys(), vec![k(1), k(2)]);

        let (cached, evicted) = c.set_pinned(&[(k(2), 30), (k(3), 50)]);
        assert_eq!(cached, vec![k(3)]);
        assert_eq!(evicted, vec![k(1)]);
        assert_eq!(c.used(), 80);
    }

    #[test]
    fn pinned_entries_survive_operator_driven_pressure() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.set_pinned(&[(k(1), 70)]);
        // Unpinned insert fits next to the pin...
        assert!(c.insert(k(2), 30).inserted);
        // ...a second unpinned one evicts only the unpinned entry...
        let out = c.insert(k(3), 25);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![(k(2), 30)]);
        assert!(c.contains(k(1)));
        // ...and one bigger than capacity-minus-pin is refused outright.
        let out = c.insert(k(4), 40);
        assert!(!out.inserted);
        assert!(c.contains(k(3)));
    }

    #[test]
    fn pinning_a_resident_key_at_a_new_size_recaches_it() {
        let mut c = DataCache::new(1_000, CachePolicy::Lru);
        // Resident unpinned at 450 bytes; the pin declares it at 100.
        assert!(c.insert(k(1), 450).inserted);
        let (cached, evicted) = c.set_pinned(&[(k(1), 100), (k(2), 100)]);
        assert_eq!(cached, vec![k(1), k(2)]);
        assert_eq!(evicted, vec![k(1)]); // dropped at the old size
        assert_eq!(c.bytes_of(k(1)), Some(100));
        assert_eq!(c.used(), 200);
        assert_eq!(c.used(), c.accounted_bytes());
    }

    #[test]
    #[should_panic(expected = "exceeds cache capacity")]
    fn oversized_pin_set_panics() {
        let mut c = DataCache::new(50, CachePolicy::Lfu);
        c.set_pinned(&[(k(1), 60)]);
    }

    #[test]
    fn eviction_reasons_distinguish_insert_from_pin_pressure() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.insert(k(1), 60);
        c.insert(k(2), 60); // evicts 1 for the insert
        assert_eq!(c.eviction_reasons(), EvictionReasons { for_insert: 1, for_pin: 0 });
        c.set_pinned(&[(k(3), 90)]); // evicts 2 to make room for the pin
        assert_eq!(c.eviction_reasons(), EvictionReasons { for_insert: 1, for_pin: 1 });
        c.set_pinned(&[(k(4), 50)]); // drops stale pin 3
        let reasons = c.eviction_reasons();
        assert_eq!(reasons, EvictionReasons { for_insert: 1, for_pin: 2 });
        assert_eq!(reasons.total(), 3);
    }

    #[test]
    fn partition_keys_round_trip_and_never_collide_with_columns() {
        let whole = CacheKey::column(7);
        assert_eq!(whole.column_id(), 7);
        assert_eq!(whole.partition_of(), None);
        for of in [1u32, 2, 4, 8] {
            for index in 0..of {
                let p = CacheKey::partition(7, index, of);
                assert_eq!(p.column_id(), 7);
                assert_eq!(p.partition_of(), Some((index, of)));
                assert_ne!(p, whole);
                assert_ne!(p, CacheKey::partition(8, index, of));
            }
        }
        // Distinct (index, of) pairs are distinct keys.
        assert_ne!(CacheKey::partition(7, 0, 2), CacheKey::partition(7, 0, 4));
        assert_ne!(CacheKey::partition(7, 0, 4), CacheKey::partition(7, 1, 4));
    }

    #[test]
    fn epoch0_keys_match_the_pre_epoch_encoding() {
        // Batch goldens depend on this: a never-appended database keys
        // its cache exactly as before epochs existed.
        assert_eq!(CacheKey::column_at(7, 0), CacheKey(7));
        assert_eq!(CacheKey::column_at(7, 0), CacheKey::column(7));
        assert_eq!(CacheKey::partition_at(7, 1, 4, 0), CacheKey::partition(7, 1, 4));
        assert_eq!(CacheKey::column(7).epoch(), 0);
        assert_eq!(CacheKey::partition(7, 1, 4).epoch(), 0);
    }

    #[test]
    fn epoch_keys_round_trip_and_stay_disjoint() {
        for epoch in [0u64, 1, 2, 1000, 16_000] {
            let w = CacheKey::column_at(9, epoch);
            assert_eq!(w.column_id(), 9);
            assert_eq!(w.epoch(), epoch);
            assert_eq!(w.partition_of(), None);
            let p = CacheKey::partition_at(9, 3, 8, epoch);
            assert_eq!(p.column_id(), 9);
            assert_eq!(p.epoch(), epoch);
            assert_eq!(p.partition_of(), Some((3, 8)));
            assert_ne!(w, p);
            if epoch > 0 {
                assert_ne!(w, CacheKey::column(9));
                assert_ne!(p, CacheKey::partition(9, 3, 8));
            }
        }
        // Max partition count and max partition epoch coexist.
        let p = CacheKey::partition_at(u32::MAX, 255, 256, (1 << 14) - 1);
        assert_eq!(p.column_id(), u32::MAX);
        assert_eq!(p.partition_of(), Some((255, 256)));
        assert_eq!(p.epoch(), (1 << 14) - 1);
    }

    #[test]
    fn invalidation_drops_only_stale_copies_of_the_column() {
        let mut c = DataCache::new(1_000, CachePolicy::Lru);
        c.insert(CacheKey::column_at(1, 0), 100);
        c.insert(CacheKey::partition_at(1, 0, 2, 0), 50);
        c.insert(CacheKey::column_at(2, 0), 200); // other column
        c.set_pinned(&[(CacheKey::column_at(3, 0), 80)]);
        let dropped = c.invalidate_column(1, 5);
        assert_eq!(
            dropped,
            vec![
                (CacheKey::column_at(1, 0), 100),
                (CacheKey::partition_at(1, 0, 2, 0), 50),
            ]
        );
        // Untouched columns survive — appends invalidate only what they
        // touch.
        assert!(c.contains(CacheKey::column_at(2, 0)));
        assert!(c.contains(CacheKey::column_at(3, 0)));
        assert_eq!(c.used(), 280);
        assert_eq!(c.used(), c.accounted_bytes());
        // Current-epoch copies are not stale.
        c.insert(CacheKey::column_at(1, 5), 100);
        assert!(c.invalidate_column(1, 5).is_empty());
        assert!(c.contains(CacheKey::column_at(1, 5)));
    }

    #[test]
    fn partition_bytes_sum_to_the_whole() {
        for full in [0u64, 1, 7, 1_000, 65_537] {
            for of in [1u32, 2, 3, 4, 7] {
                let total: u64 =
                    (0..of).map(|i| partition_bytes(full, i, of)).sum();
                assert_eq!(total, full, "full={full} of={of}");
            }
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = DataCache::new(100, CachePolicy::Lru);
        c.set_pinned(&[(k(1), 50)]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn cache_set_is_per_coprocessor() {
        use crate::device::{DeviceId, DeviceSpec};
        use crate::link::LinkParams;
        use crate::topology::Topology;

        let t = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 600),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(4, 1_000, 300), LinkParams::default());
        let mut set = CacheSet::for_topology(&t, CachePolicy::Lru);
        assert_eq!(set.len(), 2);
        assert_eq!(set.device(DeviceId::Gpu).capacity(), 600);
        assert_eq!(set.device(DeviceId::coprocessor(2)).capacity(), 300);

        set.device_mut(DeviceId::Gpu).insert(k(1), 100);
        assert!(set.device(DeviceId::Gpu).contains(k(1)));
        assert!(!set.device(DeviceId::coprocessor(2)).contains(k(1)));
        assert_eq!(
            set.iter().map(|(d, _)| d).collect::<Vec<_>>(),
            vec![DeviceId::Gpu, DeviceId::coprocessor(2)]
        );
    }

    #[test]
    #[should_panic(expected = "no column cache")]
    fn cache_set_rejects_cpu() {
        use crate::device::{DeviceId, DeviceSpec};
        use crate::link::LinkParams;
        use crate::topology::Topology;

        let t = Topology::cpu_gpu(
            DeviceSpec::cpu(1),
            DeviceSpec::coprocessor(1, 100, 50),
            LinkParams::default(),
        );
        let set = CacheSet::for_topology(&t, CachePolicy::Lru);
        let _ = set.device(DeviceId::Cpu);
    }
}
