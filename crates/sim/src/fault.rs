//! Deterministic fault injection.
//!
//! The paper's robustness argument rests on operators *failing* — heap
//! allocations that do not fit (Section 2.5.1), transfers that stall the
//! bus, kernels that abort mid-flight — and on the placement strategies
//! absorbing those failures gracefully (Figures 8, 13, 20). This module
//! turns the simulator into a fault *injector*: a [`FaultPlan`] built from
//! a seed and a declarative [`FaultSpec`] decides, deterministically,
//! which allocation attempts fail, which transfers suffer transient or
//! permanent errors or latency spikes, which device worker slots stall for
//! virtual-time windows, and which kernels abort outright.
//!
//! Design rules:
//!
//! * **Pure virtual time.** Every trigger is a function of the seed, the
//!   decision site and the per-site decision counter — never of wall
//!   clock. Two runs with the same seed and the same workload make
//!   identical decisions.
//! * **Independent streams per site.** Allocation, transfer and kernel
//!   decisions each consume their own counter, so adding (say) an extra
//!   transfer to the executor does not reshuffle which allocation fails.
//! * **Zero-cost when disabled.** [`FaultPlan::disabled`] short-circuits
//!   every query without touching the generator: a run with a disabled
//!   plan is bit-identical to a run on a build without the fault layer.
//!
//! The engine consults the plan; this module never schedules anything
//! itself. Injected faults surface to the engine through the *same* code
//! paths as organic ones (an injected allocation failure is just
//! `try_alloc == false`), so recovery machinery cannot distinguish them —
//! which is the point: chaos runs exercise exactly the production paths.

use crate::costmodel::OpClass;
use crate::device::DeviceId;
use crate::link::Direction;
use crate::time::VirtualTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the fault layer does to one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferFault {
    /// The transfer fails after occupying the bus; a retry may succeed.
    Transient,
    /// The transfer can never complete (link error persists). Only
    /// injected host→device; device→host faults degrade to transient so
    /// results can always return to the host.
    Permanent,
    /// The transfer completes but its service time is multiplied by the
    /// given factor (≥ 1) — a latency spike.
    Spike(f64),
}

/// One virtual-time window during which a device's worker slots stall:
/// operators scheduled on the device cannot start computing until the
/// window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled device.
    pub device: DeviceId,
    /// Window start (inclusive).
    pub from: VirtualTime,
    /// Window end (exclusive) — compute resumes at this instant.
    pub until: VirtualTime,
}

/// Declarative fault model. All probabilities are per *decision*
/// (allocation attempt, transfer attempt, kernel start) in `[0, 1]`.
///
/// The default spec injects nothing; [`FaultPlan::new`] with a default
/// spec behaves exactly like [`FaultPlan::disabled`] in effect (it draws
/// from the generator but every decision comes out clean).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability that any single co-processor heap allocation attempt
    /// fails as if out of memory.
    pub alloc_fail_prob: f64,
    /// Staged-allocation steps that *always* fail (0 = the upfront input
    /// slice, 1..=3 = the mid-execution growth stages). Targets the exact
    /// abort point; useful for reproducing Figure 20's wasted-time shape.
    pub alloc_fail_stages: Vec<u32>,
    /// Probability a transfer attempt fails transiently (retryable).
    pub transfer_transient_prob: f64,
    /// Probability a host→device transfer fails permanently (the operator
    /// must fall back to the CPU). Device→host draws of this class are
    /// degraded to transient.
    pub transfer_permanent_prob: f64,
    /// Probability a transfer suffers a latency spike.
    pub transfer_spike_prob: f64,
    /// Maximum spike multiplier; the actual factor is drawn uniformly
    /// from `[1, transfer_spike_factor]`. Values ≤ 1 disable spikes.
    pub transfer_spike_factor: f64,
    /// Probability a matching co-processor kernel aborts right before it
    /// would start computing (after paying its transfers).
    pub kernel_abort_prob: f64,
    /// Operator classes `kernel_abort_prob` applies to; empty = all.
    pub kernel_abort_classes: Vec<OpClass>,
    /// Explicit stall windows (merged with any randomly generated ones).
    pub stall_windows: Vec<StallWindow>,
    /// Number of co-processor stall windows to generate from the seed.
    pub random_stalls: u32,
    /// Generated stall windows start uniformly in `[0, stall_horizon)`.
    pub stall_horizon: VirtualTime,
    /// Generated stall window length range (uniform).
    pub stall_len: (VirtualTime, VirtualTime),
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            alloc_fail_prob: 0.0,
            alloc_fail_stages: Vec::new(),
            transfer_transient_prob: 0.0,
            transfer_permanent_prob: 0.0,
            transfer_spike_prob: 0.0,
            transfer_spike_factor: 1.0,
            kernel_abort_prob: 0.0,
            kernel_abort_classes: Vec::new(),
            stall_windows: Vec::new(),
            random_stalls: 0,
            stall_horizon: VirtualTime::ZERO,
            stall_len: (VirtualTime::ZERO, VirtualTime::ZERO),
        }
    }
}

/// Running injection counters, kept by the plan as it is consulted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faults injected (all kinds, spikes included).
    pub injected: u64,
    /// Allocation attempts failed by injection.
    pub alloc_failures: u64,
    /// Transient transfer faults injected.
    pub transfer_transient: u64,
    /// Permanent transfer faults injected.
    pub transfer_permanent: u64,
    /// Latency spikes injected.
    pub transfer_spikes: u64,
    /// Kernel aborts injected.
    pub kernel_aborts: u64,
    /// Virtual time operators spent waiting out stall windows.
    pub stall_time: VirtualTime,
}

/// Decision-site families, each with an independent derived stream.
#[derive(Clone, Copy)]
enum Site {
    Alloc = 0,
    Transfer = 1,
    Kernel = 2,
}

/// A seeded, deterministic fault plan.
///
/// Construct with [`FaultPlan::new`] (or [`FaultPlan::disabled`] for the
/// no-op plan) and hand it to the executor; consult [`FaultPlan::stats`]
/// afterwards. The executor clones the plan out of its options at run
/// start, so a freshly built plan value can seed many runs; use
/// [`FaultPlan::reset`] to replay a consulted plan from the top.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    enabled: bool,
    stalls: Vec<StallWindow>,
    counters: [u64; 3],
    stats: FaultStats,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// The no-op plan: injects nothing, draws nothing, costs nothing.
    pub fn disabled() -> Self {
        FaultPlan {
            spec: FaultSpec::default(),
            seed: 0,
            enabled: false,
            stalls: Vec::new(),
            counters: [0; 3],
            stats: FaultStats::default(),
        }
    }

    /// A plan whose every decision is determined by `seed` and `spec`.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        let mut stalls = spec.stall_windows.clone();
        if spec.random_stalls > 0 && spec.stall_horizon > VirtualTime::ZERO {
            // Windows are derived from the seed once, up front, so they
            // are independent of anything the run does.
            let mut rng = StdRng::seed_from_u64(seed ^ STALL_STREAM_SALT);
            for _ in 0..spec.random_stalls {
                let from =
                    VirtualTime::from_nanos(rng.gen_range(0..spec.stall_horizon.as_nanos()));
                let (lo, hi) = spec.stall_len;
                let len = if hi > lo {
                    VirtualTime::from_nanos(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
                } else {
                    lo
                };
                stalls.push(StallWindow { device: DeviceId::Gpu, from, until: from + len });
            }
        }
        FaultPlan {
            spec,
            seed,
            enabled: true,
            stalls,
            counters: [0; 3],
            stats: FaultStats::default(),
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declarative spec behind the plan.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Injection counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Reset counters and stats; the plan replays the same decisions.
    pub fn reset(&mut self) {
        self.counters = [0; 3];
        self.stats = FaultStats::default();
    }

    /// Next uniform draw in `[0, 1)` for `site`.
    ///
    /// Each decision derives a one-shot generator from
    /// `(seed, site, counter)`, so streams at different sites are
    /// independent and a decision's outcome depends only on *how many*
    /// decisions of its own kind preceded it.
    fn draw(&mut self, site: Site) -> f64 {
        let i = site as usize;
        let n = self.counters[i];
        self.counters[i] = n + 1;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (0x9E37_79B9 + i as u64) ^ n.rotate_left(17),
        );
        rng.gen_range(0.0..1.0)
    }

    /// Should this co-processor heap allocation attempt fail? `stage` is
    /// the staged-allocation step (0 = upfront, 1..=3 = growth stages).
    pub fn fail_alloc(&mut self, stage: u32) -> bool {
        if !self.enabled {
            return false;
        }
        if self.spec.alloc_fail_stages.contains(&stage) {
            self.stats.injected += 1;
            self.stats.alloc_failures += 1;
            return true;
        }
        if self.spec.alloc_fail_prob > 0.0 && self.draw(Site::Alloc) < self.spec.alloc_fail_prob
        {
            self.stats.injected += 1;
            self.stats.alloc_failures += 1;
            return true;
        }
        false
    }

    /// Fault decision for one transfer attempt in `dir`, or `None` for a
    /// clean transfer.
    pub fn transfer_fault(&mut self, dir: Direction) -> Option<TransferFault> {
        if !self.enabled {
            return None;
        }
        let s = &self.spec;
        let any = s.transfer_permanent_prob + s.transfer_transient_prob + s.transfer_spike_prob;
        if any <= 0.0 {
            return None;
        }
        let u = self.draw(Site::Transfer);
        let s = &self.spec;
        if u < s.transfer_permanent_prob {
            self.stats.injected += 1;
            if dir == Direction::HostToDevice {
                self.stats.transfer_permanent += 1;
                return Some(TransferFault::Permanent);
            }
            // Results must be able to return to the host: degrade.
            self.stats.transfer_transient += 1;
            return Some(TransferFault::Transient);
        }
        if u < s.transfer_permanent_prob + s.transfer_transient_prob {
            self.stats.injected += 1;
            self.stats.transfer_transient += 1;
            return Some(TransferFault::Transient);
        }
        if u < s.transfer_permanent_prob + s.transfer_transient_prob + s.transfer_spike_prob {
            let span = (s.transfer_spike_factor - 1.0).max(0.0);
            if span == 0.0 {
                return None;
            }
            // Reuse the decision draw's low-order structure for the
            // factor by drawing again from the same site stream.
            let f = 1.0 + span * self.draw(Site::Transfer);
            self.stats.injected += 1;
            self.stats.transfer_spikes += 1;
            return Some(TransferFault::Spike(f));
        }
        None
    }

    /// Should a kernel of `class` abort right before computing on
    /// `device`? Only co-processor kernels abort (the CPU is the fallback
    /// device and must always make progress).
    pub fn abort_kernel(&mut self, class: OpClass, device: DeviceId) -> bool {
        if !self.enabled || !device.is_coprocessor() || self.spec.kernel_abort_prob <= 0.0 {
            return false;
        }
        if !self.spec.kernel_abort_classes.is_empty()
            && !self.spec.kernel_abort_classes.contains(&class)
        {
            return false;
        }
        if self.draw(Site::Kernel) < self.spec.kernel_abort_prob {
            self.stats.injected += 1;
            self.stats.kernel_aborts += 1;
            return true;
        }
        false
    }

    /// If `now` falls inside a stall window for `device`, return when the
    /// window closes (and account the stall); otherwise `None`. Windows
    /// are half-open `[from, until)`, so re-checking at the returned
    /// instant proceeds.
    pub fn stall_until(&mut self, device: DeviceId, now: VirtualTime) -> Option<VirtualTime> {
        if !self.enabled {
            return None;
        }
        let mut until: Option<VirtualTime> = None;
        for w in &self.stalls {
            if w.device == device && w.from <= now && now < w.until {
                until = Some(match until {
                    Some(u) => u.max(w.until),
                    None => w.until,
                });
            }
        }
        if let Some(u) = until {
            self.stats.injected += 1;
            self.stats.stall_time += u - now;
        }
        until
    }

    /// The resolved stall windows (explicit plus generated).
    pub fn stall_windows(&self) -> &[StallWindow] {
        &self.stalls
    }
}

/// Retry policy for transient transfer faults: bounded exponential
/// backoff in *virtual* time. After `max_retries` failed attempts a
/// host→device transfer is treated as permanently failed (the operator
/// falls back to the CPU); device→host transfers then complete cleanly
/// (the fault layer stops injecting) so results always reach the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: VirtualTime,
    /// Backoff multiplier per subsequent retry (integer to stay exact).
    pub backoff_mult: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: VirtualTime::from_micros(20),
            backoff_mult: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff to wait before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> VirtualTime {
        let mult = self.backoff_mult.max(1) as u64;
        VirtualTime::from_nanos(
            self.backoff_base.as_nanos().saturating_mul(mult.saturating_pow(attempt.saturating_sub(1))),
        )
    }
}

/// Decorrelates the stall-window stream from the decision streams.
const STALL_STREAM_SALT: u64 = 0x57A1_157A_1157_A110;

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_spec() -> FaultSpec {
        FaultSpec {
            alloc_fail_prob: 0.3,
            transfer_transient_prob: 0.2,
            transfer_permanent_prob: 0.05,
            transfer_spike_prob: 0.1,
            transfer_spike_factor: 4.0,
            kernel_abort_prob: 0.25,
            ..FaultSpec::default()
        }
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut p = FaultPlan::disabled();
        assert!(!p.is_enabled());
        for stage in 0..4 {
            assert!(!p.fail_alloc(stage));
        }
        assert_eq!(p.transfer_fault(Direction::HostToDevice), None);
        assert!(!p.abort_kernel(OpClass::Selection, DeviceId::Gpu));
        assert_eq!(p.stall_until(DeviceId::Gpu, VirtualTime::ZERO), None);
        assert_eq!(*p.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultPlan::new(42, chaos_spec());
        let (mut a, mut b) = (mk(), mk());
        for stage in 0..64u32 {
            assert_eq!(a.fail_alloc(stage % 4), b.fail_alloc(stage % 4));
            assert_eq!(
                a.transfer_fault(Direction::HostToDevice),
                b.transfer_fault(Direction::HostToDevice)
            );
            assert_eq!(
                a.abort_kernel(OpClass::HashJoin, DeviceId::Gpu),
                b.abort_kernel(OpClass::HashJoin, DeviceId::Gpu)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_have_independent_streams() {
        // Consuming transfer decisions must not change alloc outcomes.
        let mut a = FaultPlan::new(7, chaos_spec());
        let mut b = FaultPlan::new(7, chaos_spec());
        for _ in 0..10 {
            let _ = b.transfer_fault(Direction::DeviceToHost);
        }
        let sa: Vec<bool> = (0..32).map(|_| a.fail_alloc(1)).collect();
        let sb: Vec<bool> = (0..32).map(|_| b.fail_alloc(1)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1, chaos_spec());
        let mut b = FaultPlan::new(2, chaos_spec());
        let sa: Vec<bool> = (0..64).map(|_| a.fail_alloc(0)).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.fail_alloc(0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn forced_stage_always_fails() {
        let spec = FaultSpec { alloc_fail_stages: vec![2], ..FaultSpec::default() };
        let mut p = FaultPlan::new(0, spec);
        assert!(!p.fail_alloc(0));
        assert!(!p.fail_alloc(1));
        assert!(p.fail_alloc(2));
        assert!(p.fail_alloc(2));
        assert!(!p.fail_alloc(3));
        assert_eq!(p.stats().alloc_failures, 2);
    }

    #[test]
    fn permanent_degrades_to_transient_on_d2h() {
        let spec = FaultSpec { transfer_permanent_prob: 1.0, ..FaultSpec::default() };
        let mut p = FaultPlan::new(3, spec);
        assert_eq!(
            p.transfer_fault(Direction::HostToDevice),
            Some(TransferFault::Permanent)
        );
        assert_eq!(
            p.transfer_fault(Direction::DeviceToHost),
            Some(TransferFault::Transient)
        );
        assert_eq!(p.stats().transfer_permanent, 1);
        assert_eq!(p.stats().transfer_transient, 1);
    }

    #[test]
    fn spikes_are_bounded_and_at_least_one() {
        let spec = FaultSpec {
            transfer_spike_prob: 1.0,
            transfer_spike_factor: 3.0,
            ..FaultSpec::default()
        };
        let mut p = FaultPlan::new(11, spec);
        for _ in 0..64 {
            match p.transfer_fault(Direction::HostToDevice) {
                Some(TransferFault::Spike(f)) => assert!((1.0..=3.0).contains(&f)),
                other => panic!("expected spike, got {other:?}"),
            }
        }
    }

    #[test]
    fn kernel_abort_respects_class_filter_and_device() {
        let spec = FaultSpec {
            kernel_abort_prob: 1.0,
            kernel_abort_classes: vec![OpClass::Sort],
            ..FaultSpec::default()
        };
        let mut p = FaultPlan::new(5, spec);
        assert!(p.abort_kernel(OpClass::Sort, DeviceId::Gpu));
        assert!(!p.abort_kernel(OpClass::Selection, DeviceId::Gpu));
        assert!(!p.abort_kernel(OpClass::Sort, DeviceId::Cpu), "CPU never aborts");
    }

    #[test]
    fn stall_windows_cover_and_account() {
        let w = StallWindow {
            device: DeviceId::Gpu,
            from: VirtualTime::from_millis(1),
            until: VirtualTime::from_millis(3),
        };
        let spec = FaultSpec { stall_windows: vec![w], ..FaultSpec::default() };
        let mut p = FaultPlan::new(0, spec);
        assert_eq!(p.stall_until(DeviceId::Gpu, VirtualTime::ZERO), None);
        assert_eq!(
            p.stall_until(DeviceId::Gpu, VirtualTime::from_millis(2)),
            Some(VirtualTime::from_millis(3))
        );
        // Half-open: at the closing instant compute proceeds.
        assert_eq!(p.stall_until(DeviceId::Gpu, VirtualTime::from_millis(3)), None);
        assert_eq!(p.stall_until(DeviceId::Cpu, VirtualTime::from_millis(2)), None);
        assert_eq!(p.stats().stall_time, VirtualTime::from_millis(1));
    }

    #[test]
    fn random_stalls_are_seed_deterministic() {
        let spec = FaultSpec {
            random_stalls: 4,
            stall_horizon: VirtualTime::from_millis(100),
            stall_len: (VirtualTime::from_micros(10), VirtualTime::from_micros(500)),
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(9, spec.clone());
        let b = FaultPlan::new(9, spec.clone());
        let c = FaultPlan::new(10, spec);
        assert_eq!(a.stall_windows(), b.stall_windows());
        assert_ne!(a.stall_windows(), c.stall_windows());
        assert_eq!(a.stall_windows().len(), 4);
        for w in a.stall_windows() {
            assert!(w.until > w.from);
        }
    }

    #[test]
    fn reset_replays_the_same_decisions() {
        let mut p = FaultPlan::new(4, chaos_spec());
        let first: Vec<bool> = (0..16).map(|_| p.fail_alloc(0)).collect();
        p.reset();
        assert_eq!(p.counters, [0; 3]);
        assert_eq!(*p.stats(), FaultStats::default());
        let second: Vec<bool> = (0..16).map(|_| p.fail_alloc(0)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_retries: 5,
            backoff_base: VirtualTime::from_micros(10),
            backoff_mult: 2,
        };
        assert_eq!(r.backoff(1), VirtualTime::from_micros(10));
        assert_eq!(r.backoff(2), VirtualTime::from_micros(20));
        assert_eq!(r.backoff(3), VirtualTime::from_micros(40));
    }
}
