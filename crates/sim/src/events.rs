//! Deterministic discrete-event queue.
//!
//! A thin priority queue over `(VirtualTime, sequence)` keys. The sequence
//! number breaks timestamp ties in insertion order, which makes every
//! simulation run bit-for-bit reproducible.

use crate::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: VirtualTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list ordered by virtual time, FIFO within equal times.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `at`.
    pub fn push(&mut self, at: VirtualTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_nanos(30), "c");
        q.push(VirtualTime::from_nanos(10), "a");
        q.push(VirtualTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((VirtualTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((VirtualTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((VirtualTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_nanos(10), 1);
        q.push(VirtualTime::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(VirtualTime::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
