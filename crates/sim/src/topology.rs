//! Machine topology: 1 CPU + K co-processors.
//!
//! The paper evaluates one CPU and one GPU; its conclusion names
//! multiple co-processors as the natural extension. This module makes
//! the device count data: a [`Topology`] is an ordered device table —
//! device 0 is always the host CPU, devices 1.. are co-processors —
//! plus a per-link interconnect table giving the [`LinkParams`]
//! (latency + bytes/bandwidth) for every (src, dst) pair. There is no
//! peer-to-peer fabric in the model: every link has the CPU on one
//! side, and inter-co-processor data routes through host memory, as on
//! a PCIe tree without NVLink.

use crate::device::{DeviceId, DeviceKind, DeviceSpec};
use crate::link::LinkParams;

/// The simulated machine's device table and interconnect table.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Device specs; index = [`DeviceId::index`]. `devices[0]` is the CPU.
    devices: Vec<DeviceSpec>,
    /// `links[k]` connects the CPU and co-processor `k + 1` (both
    /// directions; the [`crate::link::Direction`] disambiguates).
    links: Vec<LinkParams>,
}

impl Topology {
    /// A topology holding only the host CPU; co-processors are attached
    /// with [`Topology::with_coprocessor`].
    pub fn cpu_only(cpu: DeviceSpec) -> Self {
        assert!(cpu.kind == DeviceKind::Cpu, "device 0 must be the host CPU");
        Topology { devices: vec![cpu], links: Vec::new() }
    }

    /// The paper's testbed shape: one CPU and one co-processor behind
    /// one link.
    pub fn cpu_gpu(cpu: DeviceSpec, gpu: DeviceSpec, link: LinkParams) -> Self {
        Topology::cpu_only(cpu).with_coprocessor(gpu, link)
    }

    /// Attach one more co-processor behind its own host link. Returns
    /// the extended topology (builder style).
    pub fn with_coprocessor(mut self, spec: DeviceSpec, link: LinkParams) -> Self {
        assert!(
            spec.kind == DeviceKind::CoProcessor,
            "devices 1.. must be co-processors"
        );
        self.devices.push(spec);
        self.links.push(link);
        self
    }

    /// Total number of devices (CPU included).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of co-processors (K).
    pub fn coprocessor_count(&self) -> usize {
        self.devices.len() - 1
    }

    /// All device ids, CPU first.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId::from_index)
    }

    /// The co-processor ids, in dense order.
    pub fn coprocessors(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (1..self.devices.len()).map(DeviceId::from_index)
    }

    /// The spec of `device`.
    ///
    /// # Panics
    /// Panics if `device` is not part of the topology.
    pub fn spec(&self, device: DeviceId) -> &DeviceSpec {
        &self.devices[device.index()]
    }

    /// The host CPU's spec.
    pub fn cpu(&self) -> &DeviceSpec {
        &self.devices[0]
    }

    /// The first co-processor's spec (the default machine's GPU).
    ///
    /// # Panics
    /// Panics on a CPU-only topology.
    pub fn gpu(&self) -> &DeviceSpec {
        &self.devices[1]
    }

    /// Mutable spec access (configuration builders).
    pub fn spec_mut(&mut self, device: DeviceId) -> &mut DeviceSpec {
        &mut self.devices[device.index()]
    }

    /// Whether `device` exists in this topology.
    pub fn contains(&self, device: DeviceId) -> bool {
        device.index() < self.devices.len()
    }

    /// The host link of co-processor `device`.
    ///
    /// # Panics
    /// Panics for the CPU (it is on the host side of every link) or an
    /// unknown device.
    pub fn link(&self, device: DeviceId) -> &LinkParams {
        assert!(device.is_coprocessor(), "the CPU has no host link");
        &self.links[device.index() - 1]
    }

    /// Mutable link access (configuration builders).
    pub fn link_mut(&mut self, device: DeviceId) -> &mut LinkParams {
        assert!(device.is_coprocessor(), "the CPU has no host link");
        &mut self.links[device.index() - 1]
    }

    /// The link carrying traffic from `src` to `dst`, or `None` when the
    /// pair is not directly connected. Exactly the pairs with the CPU on
    /// one side are connected; co-processor-to-co-processor traffic must
    /// be routed through the host (two transfers).
    pub fn link_between(&self, src: DeviceId, dst: DeviceId) -> Option<&LinkParams> {
        match (src.is_coprocessor(), dst.is_coprocessor()) {
            (false, true) => Some(self.link(dst)),
            (true, false) => Some(self.link(src)),
            _ => None,
        }
    }

    /// The device aborted co-processor operators restart on. The CPU is
    /// always the abort-restart target: it has unbounded memory and its
    /// kernels never abort, so progress is guaranteed.
    pub fn fallback_device(&self) -> DeviceId {
        DeviceId::Cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu() -> Topology {
        Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 600),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(2, 2_000, 500), LinkParams::default())
    }

    #[test]
    fn counts_and_iteration() {
        let t = two_gpu();
        assert_eq!(t.device_count(), 3);
        assert_eq!(t.coprocessor_count(), 2);
        assert_eq!(
            t.devices().collect::<Vec<_>>(),
            vec![DeviceId::Cpu, DeviceId::Gpu, DeviceId::coprocessor(2)]
        );
        assert_eq!(
            t.coprocessors().collect::<Vec<_>>(),
            vec![DeviceId::Gpu, DeviceId::coprocessor(2)]
        );
        assert!(t.contains(DeviceId::coprocessor(2)));
        assert!(!t.contains(DeviceId::coprocessor(3)));
    }

    #[test]
    fn specs_are_positional() {
        let t = two_gpu();
        assert_eq!(t.cpu().worker_slots, 4);
        assert_eq!(t.gpu().memory_bytes, 1_000);
        assert_eq!(t.spec(DeviceId::coprocessor(2)).worker_slots, 2);
    }

    #[test]
    fn links_connect_host_pairs_only() {
        let t = two_gpu();
        assert!(t.link_between(DeviceId::Cpu, DeviceId::Gpu).is_some());
        assert!(t.link_between(DeviceId::coprocessor(2), DeviceId::Cpu).is_some());
        assert!(t.link_between(DeviceId::Gpu, DeviceId::coprocessor(2)).is_none());
        assert!(t.link_between(DeviceId::Cpu, DeviceId::Cpu).is_none());
    }

    #[test]
    fn fallback_is_the_cpu() {
        assert_eq!(two_gpu().fallback_device(), DeviceId::Cpu);
    }

    #[test]
    #[should_panic(expected = "must be co-processors")]
    fn cpu_cannot_be_attached_as_coprocessor() {
        let _ = Topology::cpu_only(DeviceSpec::cpu(1))
            .with_coprocessor(DeviceSpec::cpu(1), LinkParams::default());
    }

    #[test]
    #[should_panic(expected = "no host link")]
    fn cpu_has_no_host_link() {
        let t = two_gpu();
        let _ = t.link(DeviceId::Cpu);
    }
}
