//! Simulation configuration.

use crate::cache::CachePolicy;
use crate::costmodel::CostParams;
use crate::device::{DeviceSpec, PerDevice};
use crate::link::LinkParams;
use crate::topology::Topology;

/// Everything the simulated machine needs: the device topology (1 CPU +
/// K co-processors with their host links), the ground-truth cost model
/// and the cache policy.
///
/// The `with_gpu_*` builders apply to *every* co-processor — the
/// simulated fleets are uniform, which keeps the K = 1 configuration's
/// spelling unchanged while making K a one-call sweep axis
/// ([`SimConfig::with_coprocessors`]).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine's device and interconnect tables.
    pub topology: Topology,
    /// Ground-truth kernel durations and footprints.
    pub cost: CostParams,
    /// Eviction policy of the co-processor column caches.
    pub cache_policy: CachePolicy,
}

impl Default for SimConfig {
    /// A machine shaped like the paper's testbed, scaled to the default
    /// generator downscale: 4 CPU worker slots (the Xeon E5-1607's four
    /// cores), one co-processor with 40 MB device memory (4 GB ÷ 100,
    /// the default data downscale), 60 % of which is column cache.
    fn default() -> Self {
        let memory = 40 * 1024 * 1024;
        SimConfig {
            topology: Topology::cpu_gpu(
                DeviceSpec::cpu(4),
                DeviceSpec::coprocessor(4, memory, memory * 6 / 10),
                LinkParams::default(),
            ),
            cost: CostParams::default(),
            cache_policy: CachePolicy::Lru,
        }
    }
}

impl SimConfig {
    /// The host CPU's spec.
    pub fn cpu(&self) -> &DeviceSpec {
        self.topology.cpu()
    }

    /// The first co-processor's spec (the default machine's GPU).
    pub fn gpu(&self) -> &DeviceSpec {
        self.topology.gpu()
    }

    /// The spec of any device.
    pub fn spec(&self, device: crate::device::DeviceId) -> &DeviceSpec {
        self.topology.spec(device)
    }

    /// Per-device worker-slot counts, topology-sized.
    pub fn worker_slots(&self) -> PerDevice<usize> {
        PerDevice::from_fn(self.topology.device_count(), |d| {
            self.topology.spec(d).worker_slots
        })
    }

    /// Replace every co-processor's total memory, keeping each one's
    /// cache fraction.
    pub fn with_gpu_memory(mut self, memory_bytes: u64) -> Self {
        for d in self.topology.devices().skip(1).collect::<Vec<_>>() {
            let spec = self.topology.spec_mut(d);
            let frac = if spec.memory_bytes == 0 {
                0.6
            } else {
                spec.cache_bytes as f64 / spec.memory_bytes as f64
            };
            spec.memory_bytes = memory_bytes;
            spec.cache_bytes = (memory_bytes as f64 * frac) as u64;
        }
        self
    }

    /// Replace every co-processor's cache size in bytes.
    ///
    /// # Panics
    /// Panics if larger than the device memory.
    pub fn with_gpu_cache(mut self, cache_bytes: u64) -> Self {
        for d in self.topology.devices().skip(1).collect::<Vec<_>>() {
            let spec = self.topology.spec_mut(d);
            assert!(cache_bytes <= spec.memory_bytes);
            spec.cache_bytes = cache_bytes;
        }
        self
    }

    /// Replace every co-processor's worker-slot count (the chopping
    /// thread-pool bound).
    pub fn with_gpu_workers(mut self, slots: usize) -> Self {
        for d in self.topology.devices().skip(1).collect::<Vec<_>>() {
            self.topology.spec_mut(d).worker_slots = slots;
        }
        self
    }

    /// Replace the number of CPU worker slots.
    pub fn with_cpu_workers(mut self, slots: usize) -> Self {
        self.topology.spec_mut(crate::device::DeviceId::Cpu).worker_slots = slots;
        self
    }

    /// Replace the cache eviction policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Replace every host link's parameters.
    pub fn with_link(mut self, params: LinkParams) -> Self {
        for d in self.topology.coprocessors().collect::<Vec<_>>() {
            *self.topology.link_mut(d) = params;
        }
        self
    }

    /// Set the co-processor count to `k`, cloning the first
    /// co-processor's spec and link for the added devices (a uniform
    /// fleet). `k = 1` is the default machine.
    ///
    /// # Panics
    /// Panics if `k` is zero — the executor needs at least one
    /// co-processor (use the CPU-only *strategy* to ignore it).
    pub fn with_coprocessors(mut self, k: usize) -> Self {
        assert!(k >= 1, "at least one co-processor is required");
        let template_spec = self.topology.gpu().clone();
        let template_link = *self.topology.link(crate::device::DeviceId::Gpu);
        let mut t = Topology::cpu_only(self.topology.cpu().clone());
        for i in 0..k {
            let d = crate::device::DeviceId::coprocessor(1 + i as u16);
            let (spec, link) = if self.topology.contains(d) {
                (self.topology.spec(d).clone(), *self.topology.link(d))
            } else {
                (template_spec.clone(), template_link)
            };
            t = t.with_coprocessor(spec, link);
        }
        self.topology = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;

    #[test]
    fn default_is_self_consistent() {
        let c = SimConfig::default();
        assert_eq!(c.topology.coprocessor_count(), 1);
        assert!(c.gpu().cache_bytes < c.gpu().memory_bytes);
        assert!(c.gpu().heap_bytes() > 0);
        assert!(c.cpu().worker_slots > 0);
    }

    #[test]
    fn with_gpu_memory_preserves_cache_fraction() {
        let c = SimConfig::default().with_gpu_memory(1_000);
        assert_eq!(c.gpu().memory_bytes, 1_000);
        assert_eq!(c.gpu().cache_bytes, 600);
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_gpu_memory(10_000)
            .with_gpu_cache(1_234)
            .with_gpu_workers(2)
            .with_cpu_workers(8)
            .with_cache_policy(CachePolicy::Lfu);
        assert_eq!(c.gpu().cache_bytes, 1_234);
        assert_eq!(c.gpu().worker_slots, 2);
        assert_eq!(c.cpu().worker_slots, 8);
        assert_eq!(c.cache_policy, CachePolicy::Lfu);
    }

    #[test]
    fn coprocessor_fleet_is_uniform() {
        let c = SimConfig::default()
            .with_gpu_memory(10_000)
            .with_coprocessors(4)
            .with_gpu_workers(3);
        assert_eq!(c.topology.coprocessor_count(), 4);
        for d in c.topology.coprocessors() {
            assert_eq!(c.spec(d).memory_bytes, 10_000);
            assert_eq!(c.spec(d).worker_slots, 3);
        }
        // Shrinking keeps the leading devices.
        let c = c.with_coprocessors(2);
        assert_eq!(c.topology.coprocessor_count(), 2);
        assert_eq!(c.spec(DeviceId::Gpu).memory_bytes, 10_000);
    }

    #[test]
    fn gpu_builders_apply_to_every_coprocessor() {
        let c = SimConfig::default().with_coprocessors(3).with_gpu_cache(2_048);
        for d in c.topology.coprocessors() {
            assert_eq!(c.spec(d).cache_bytes, 2_048);
        }
        assert_eq!(c.worker_slots().len(), 4);
    }

    #[test]
    #[should_panic]
    fn oversized_cache_panics() {
        let _ = SimConfig::default().with_gpu_memory(100).with_gpu_cache(200);
    }

    #[test]
    #[should_panic(expected = "at least one co-processor")]
    fn zero_coprocessors_panics() {
        let _ = SimConfig::default().with_coprocessors(0);
    }
}
