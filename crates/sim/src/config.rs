//! Simulation configuration.

use crate::cache::CachePolicy;
use crate::costmodel::CostParams;
use crate::device::DeviceSpec;
use crate::link::LinkParams;

/// Everything the simulated machine needs: two devices, the link between
/// them, the ground-truth cost model and the cache policy.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The host CPU.
    pub cpu: DeviceSpec,
    /// The co-processor.
    pub gpu: DeviceSpec,
    /// The interconnect between them.
    pub link: LinkParams,
    /// Ground-truth kernel durations and footprints.
    pub cost: CostParams,
    /// Eviction policy of the co-processor column cache.
    pub cache_policy: CachePolicy,
}

impl Default for SimConfig {
    /// A machine shaped like the paper's testbed, scaled to the default
    /// generator downscale: 4 CPU worker slots (the Xeon E5-1607's four
    /// cores), a co-processor with 40 MB device memory (4 GB ÷ 100, the
    /// default data downscale), 60 % of which is column cache.
    fn default() -> Self {
        let memory = 40 * 1024 * 1024;
        SimConfig {
            cpu: DeviceSpec::cpu(4),
            gpu: DeviceSpec::coprocessor(4, memory, memory * 6 / 10),
            link: LinkParams::default(),
            cost: CostParams::default(),
            cache_policy: CachePolicy::Lru,
        }
    }
}

impl SimConfig {
    /// Replace the co-processor's total memory, keeping the cache fraction.
    pub fn with_gpu_memory(mut self, memory_bytes: u64) -> Self {
        let frac = if self.gpu.memory_bytes == 0 {
            0.6
        } else {
            self.gpu.cache_bytes as f64 / self.gpu.memory_bytes as f64
        };
        self.gpu.memory_bytes = memory_bytes;
        self.gpu.cache_bytes = (memory_bytes as f64 * frac) as u64;
        self
    }

    /// Replace the co-processor's cache size in bytes.
    ///
    /// # Panics
    /// Panics if larger than the device memory.
    pub fn with_gpu_cache(mut self, cache_bytes: u64) -> Self {
        assert!(cache_bytes <= self.gpu.memory_bytes);
        self.gpu.cache_bytes = cache_bytes;
        self
    }

    /// Replace the number of co-processor worker slots (the chopping
    /// thread-pool bound).
    pub fn with_gpu_workers(mut self, slots: usize) -> Self {
        self.gpu.worker_slots = slots;
        self
    }

    /// Replace the number of CPU worker slots.
    pub fn with_cpu_workers(mut self, slots: usize) -> Self {
        self.cpu.worker_slots = slots;
        self
    }

    /// Replace the cache eviction policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_self_consistent() {
        let c = SimConfig::default();
        assert!(c.gpu.cache_bytes < c.gpu.memory_bytes);
        assert!(c.gpu.heap_bytes() > 0);
        assert!(c.cpu.worker_slots > 0);
    }

    #[test]
    fn with_gpu_memory_preserves_cache_fraction() {
        let c = SimConfig::default().with_gpu_memory(1_000);
        assert_eq!(c.gpu.memory_bytes, 1_000);
        assert_eq!(c.gpu.cache_bytes, 600);
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_gpu_memory(10_000)
            .with_gpu_cache(1_234)
            .with_gpu_workers(2)
            .with_cpu_workers(8)
            .with_cache_policy(CachePolicy::Lfu);
        assert_eq!(c.gpu.cache_bytes, 1_234);
        assert_eq!(c.gpu.worker_slots, 2);
        assert_eq!(c.cpu.worker_slots, 8);
        assert_eq!(c.cache_policy, CachePolicy::Lfu);
    }

    #[test]
    #[should_panic]
    fn oversized_cache_panics() {
        let _ = SimConfig::default().with_gpu_memory(100).with_gpu_cache(200);
    }
}
