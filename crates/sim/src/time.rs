//! Virtual time.
//!
//! All simulated durations and timestamps are integer nanoseconds, which
//! keeps the discrete-event executor fully deterministic (no float
//! accumulation order effects across runs).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000_000)
    }

    /// From fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return VirtualTime::ZERO;
        }
        VirtualTime((secs * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Subtraction clamping at zero.
    pub fn saturating_sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(rhs.0))
    }

    /// Scale a duration by a non-negative factor.
    pub fn scale(self, factor: f64) -> VirtualTime {
        debug_assert!(factor >= 0.0);
        VirtualTime((self.0 as f64 * factor).round() as u64)
    }

    /// The later of two instants.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.min(other.0))
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        iter.fold(VirtualTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(VirtualTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(VirtualTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(VirtualTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((VirtualTime::from_nanos(250).as_secs_f64() - 2.5e-7).abs() < 1e-15);
    }

    #[test]
    fn degenerate_seconds_clamp_to_zero() {
        assert_eq!(VirtualTime::from_secs_f64(-1.0), VirtualTime::ZERO);
        assert_eq!(VirtualTime::from_secs_f64(f64::NAN), VirtualTime::ZERO);
        assert_eq!(VirtualTime::from_secs_f64(f64::INFINITY), VirtualTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = VirtualTime::from_nanos(10);
        let b = VirtualTime::from_nanos(4);
        assert_eq!(a + b, VirtualTime::from_nanos(14));
        assert_eq!(a - b, VirtualTime::from_nanos(6));
        assert_eq!(b.saturating_sub(a), VirtualTime::ZERO);
        assert_eq!(a.scale(2.5), VirtualTime::from_nanos(25));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualTime =
            [1u64, 2, 3].into_iter().map(VirtualTime::from_nanos).sum();
        assert_eq!(total, VirtualTime::from_nanos(6));
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(VirtualTime::from_millis(12).to_string(), "12.000ms");
    }
}
