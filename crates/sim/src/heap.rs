//! Byte-accurate device heap.
//!
//! The co-processor heap is where operators allocate intermediate data
//! structures and results. Exceeding its capacity is *the* failure mode
//! behind the paper's heap-contention effect: an allocation that does not
//! fit fails immediately and the operator must abort (Section 2.5.1 —
//! CoGaDB aborts rather than waiting, to stay deadlock-free).

/// A simple counting allocator over a fixed capacity.
///
/// Allocations are tracked by opaque tag so that an aborting operator can
/// release everything it holds without the caller doing bookkeeping.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    capacity: u64,
    used: u64,
    /// `(tag, bytes)` live allocations; tags are engine-chosen (task ids).
    allocations: Vec<(u64, u64)>,
    /// High-water mark, for reporting.
    peak: u64,
}

impl HeapAllocator {
    /// An empty heap of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        HeapAllocator { capacity, used: 0, allocations: Vec::new(), peak: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of `used`.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Try to allocate `bytes` under `tag`.
    ///
    /// Returns `false` (allocating nothing) when the heap cannot satisfy
    /// the request — the caller then aborts the operator.
    #[must_use]
    pub fn try_alloc(&mut self, tag: u64, bytes: u64) -> bool {
        if bytes > self.capacity - self.used {
            return false;
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        if bytes > 0 {
            self.allocations.push((tag, bytes));
        }
        true
    }

    /// Release every allocation held under `tag`; returns bytes freed.
    pub fn free_tag(&mut self, tag: u64) -> u64 {
        let mut freed = 0;
        self.allocations.retain(|&(t, b)| {
            if t == tag {
                freed += b;
                false
            } else {
                true
            }
        });
        self.used -= freed;
        freed
    }

    /// Bytes currently held under `tag`.
    pub fn bytes_of(&self, tag: u64) -> u64 {
        self.allocations.iter().filter(|&&(t, _)| t == tag).map(|&(_, b)| b).sum()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocations.len()
    }

    /// Bytes held across all live allocations, recomputed from the tag
    /// list. Conservation invariant (chaos/property tests):
    /// `accounted_bytes() == used()` must hold after every operation.
    pub fn accounted_bytes(&self) -> u64 {
        self.allocations.iter().map(|&(_, b)| b).sum()
    }

    /// Distinct tags with live allocations, sorted.
    pub fn live_tags(&self) -> Vec<u64> {
        let mut tags: Vec<u64> = self.allocations.iter().map(|&(t, _)| t).collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Release everything.
    pub fn reset(&mut self) {
        self.allocations.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free() {
        let mut h = HeapAllocator::new(100);
        assert!(h.try_alloc(1, 60));
        assert!(h.try_alloc(2, 30));
        assert_eq!(h.used(), 90);
        assert_eq!(h.free_bytes(), 10);
        assert_eq!(h.free_tag(1), 60);
        assert_eq!(h.used(), 30);
        assert_eq!(h.bytes_of(2), 30);
    }

    #[test]
    fn over_allocation_fails_atomically() {
        let mut h = HeapAllocator::new(100);
        assert!(h.try_alloc(1, 80));
        assert!(!h.try_alloc(2, 30));
        // Failed allocation must not consume anything.
        assert_eq!(h.used(), 80);
        assert_eq!(h.bytes_of(2), 0);
    }

    #[test]
    fn multiple_allocations_same_tag() {
        let mut h = HeapAllocator::new(100);
        assert!(h.try_alloc(7, 10));
        assert!(h.try_alloc(7, 20));
        assert_eq!(h.bytes_of(7), 30);
        assert_eq!(h.live_allocations(), 2);
        assert_eq!(h.free_tag(7), 30);
        assert_eq!(h.used(), 0);
    }

    #[test]
    fn peak_tracking() {
        let mut h = HeapAllocator::new(100);
        assert!(h.try_alloc(1, 70));
        h.free_tag(1);
        assert!(h.try_alloc(2, 40));
        assert_eq!(h.peak(), 70);
    }

    #[test]
    fn zero_byte_alloc_always_succeeds() {
        let mut h = HeapAllocator::new(0);
        assert!(h.try_alloc(1, 0));
        assert_eq!(h.live_allocations(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = HeapAllocator::new(50);
        assert!(h.try_alloc(1, 50));
        h.reset();
        assert_eq!(h.used(), 0);
        assert!(h.try_alloc(2, 50));
    }
}
