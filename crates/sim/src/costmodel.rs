//! Ground-truth device cost model.
//!
//! This is the simulator's stand-in for physical silicon: it decides how
//! long a kernel *actually* takes and how much device memory it *actually*
//! needs. The optimizer never reads it — HyPE-style strategies learn their
//! own estimates from observed durations (crate `robustq-core`), exactly as
//! the paper separates learned cost models from real hardware.
//!
//! Calibration: throughputs are set so that (a) co-processor kernels beat
//! the CPU per byte once data is resident — by ~1.7–2× for the classes
//! the block-evaluated SIMD CPU kernels cover (selection, hash join,
//! aggregation; see DESIGN.md §14 and `BENCH_kernels.json`) and ~2.5×
//! for the rest — and (b) the effective link bandwidth is ~20× below the
//! co-processor's selection throughput — the ratios behind Figure 1 and
//! the 24× cache-thrashing degradation of Figure 2. EXPERIMENTS.md
//! records measured vs paper numbers for every figure.

use crate::device::DeviceKind;
use crate::time::VirtualTime;

/// Operator classes distinguished by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Predicate evaluation + materialization of qualifying rows.
    Selection,
    /// Hash join (build + probe).
    HashJoin,
    /// Group-by aggregation.
    Aggregation,
    /// Sort / top-k ordering.
    Sort,
    /// Column arithmetic / projection.
    Projection,
}

impl OpClass {
    /// All classes, for building per-class tables.
    pub const ALL: [OpClass; 5] = [
        OpClass::Selection,
        OpClass::HashJoin,
        OpClass::Aggregation,
        OpClass::Sort,
        OpClass::Projection,
    ];

    /// Dense index (for per-class tables).
    pub fn index(self) -> usize {
        match self {
            OpClass::Selection => 0,
            OpClass::HashJoin => 1,
            OpClass::Aggregation => 2,
            OpClass::Sort => 3,
            OpClass::Projection => 4,
        }
    }

    /// Snake-case class name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Selection => "selection",
            OpClass::HashJoin => "hash_join",
            OpClass::Aggregation => "aggregation",
            OpClass::Sort => "sort",
            OpClass::Projection => "projection",
        }
    }
}

/// Per-class device parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClassParams {
    /// Processing throughput in bytes/second (over input + half output).
    pub throughput: f64,
    /// Fixed per-invocation overhead (dispatch, kernel launch).
    pub overhead: VirtualTime,
}

/// Device memory footprint factors for one operator class.
///
/// `footprint = in_factor·bytes_in + out_factor·bytes_out`. The selection
/// factor 3.25 is the constant the paper reports for the He et al. GPU
/// selection (Section 3.4), which makes the heap-contention break-even
/// point land where the paper's does.
#[derive(Debug, Clone, Copy)]
pub struct FootprintParams {
    /// Multiplier on input bytes.
    pub in_factor: f64,
    /// Multiplier on output bytes.
    pub out_factor: f64,
}

/// The full ground-truth cost model.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Per-class CPU parameters, indexed by [`OpClass::index`].
    pub cpu: [ClassParams; 5],
    /// Per-class co-processor parameters, indexed by [`OpClass::index`].
    pub gpu: [ClassParams; 5],
    /// Co-processor heap footprints per class (CPU footprints are not
    /// modelled: host memory is never the bottleneck in the paper).
    pub gpu_footprint: [FootprintParams; 5],
}

impl Default for CostParams {
    fn default() -> Self {
        // Overheads are scaled down with the data downscale (DESIGN.md
        // §1): what matters is the overhead-to-kernel-duration ratio, and
        // real kernels are ~1000x longer than launch overheads.
        let ns = VirtualTime::from_nanos;
        CostParams {
            // CPU throughputs reflect the block-evaluated SIMD kernels
            // (branch-free selection, flat-array join probe, column-wise
            // aggregation accumulators): selection/join/aggregation run
            // ~1.4–1.5× the scalar-reference rates this table used to
            // encode — enough to shift placement break-evens without
            // erasing the resident co-processor advantage Figure 14
            // depends on. Sort is untouched by the kernel work and keeps
            // its rate.
            cpu: [
                ClassParams { throughput: 20.0e9, overhead: ns(20) }, // selection
                ClassParams { throughput: 12.0e9, overhead: ns(20) }, // hash join
                ClassParams { throughput: 15.0e9, overhead: ns(20) }, // aggregation
                ClassParams { throughput: 4.0e9, overhead: ns(20) },  // sort
                ClassParams { throughput: 16.0e9, overhead: ns(10) }, // projection
            ],
            gpu: [
                ClassParams { throughput: 40.0e9, overhead: ns(100) },
                ClassParams { throughput: 20.0e9, overhead: ns(100) },
                ClassParams { throughput: 25.0e9, overhead: ns(100) },
                ClassParams { throughput: 10.0e9, overhead: ns(100) },
                ClassParams { throughput: 45.0e9, overhead: ns(80) },
            ],
            gpu_footprint: [
                FootprintParams { in_factor: 3.25, out_factor: 0.0 }, // selection
                FootprintParams { in_factor: 2.0, out_factor: 1.0 },  // hash join
                FootprintParams { in_factor: 1.0, out_factor: 2.0 },  // aggregation
                FootprintParams { in_factor: 2.0, out_factor: 1.0 },  // sort
                FootprintParams { in_factor: 1.0, out_factor: 1.0 },  // projection
            ],
        }
    }
}

/// Ground-truth durations and footprints.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// A model over the given parameters.
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    fn class_params(&self, class: OpClass, kind: DeviceKind) -> ClassParams {
        match kind {
            DeviceKind::Cpu => self.params.cpu[class.index()],
            DeviceKind::CoProcessor => self.params.gpu[class.index()],
        }
    }

    /// True execution time of one operator invocation.
    ///
    /// Charged over `bytes_in + bytes_out/2`: operators read their whole
    /// input and materialize their output, but writes are roughly half as
    /// expensive as the processing itself in a bulk engine.
    pub fn duration(
        &self,
        class: OpClass,
        kind: DeviceKind,
        bytes_in: u64,
        bytes_out: u64,
    ) -> VirtualTime {
        let p = self.class_params(class, kind);
        let work = bytes_in as f64 + bytes_out as f64 / 2.0;
        p.overhead + VirtualTime::from_secs_f64(work / p.throughput)
    }

    /// Device heap bytes an operator of `class` needs on the co-processor,
    /// excluding its (separately retained) output.
    pub fn gpu_working_footprint(&self, class: OpClass, bytes_in: u64, bytes_out: u64) -> u64 {
        let f = self.params.gpu_footprint[class.index()];
        (f.in_factor * bytes_in as f64 + f.out_factor * bytes_out as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_kernels_beat_cpu_when_resident() {
        let m = CostModel::default();
        for class in OpClass::ALL {
            let cpu = m.duration(class, DeviceKind::Cpu, 100_000_000, 10_000_000);
            let gpu = m.duration(class, DeviceKind::CoProcessor, 100_000_000, 10_000_000);
            assert!(gpu < cpu, "{}: GPU {} !< CPU {}", class.name(), gpu, cpu);
        }
    }

    #[test]
    fn tiny_inputs_favor_cpu_due_to_launch_overhead() {
        let m = CostModel::default();
        let cpu = m.duration(OpClass::Selection, DeviceKind::Cpu, 1_000, 100);
        let gpu = m.duration(OpClass::Selection, DeviceKind::CoProcessor, 1_000, 100);
        assert!(cpu < gpu);
    }

    #[test]
    fn selection_footprint_matches_paper_constant() {
        let m = CostModel::default();
        assert_eq!(m.gpu_working_footprint(OpClass::Selection, 1_000, 500), 3_250);
    }

    #[test]
    fn duration_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.duration(OpClass::HashJoin, DeviceKind::Cpu, 1_000_000, 0);
        let large = m.duration(OpClass::HashJoin, DeviceKind::Cpu, 10_000_000, 0);
        assert!(large.as_nanos() > 5 * small.as_nanos());
    }

    #[test]
    fn output_bytes_cost_half() {
        let m = CostModel::default();
        let in_only = m.duration(OpClass::Projection, DeviceKind::Cpu, 1_000_000, 0);
        let with_out = m.duration(OpClass::Projection, DeviceKind::Cpu, 1_000_000, 2_000_000);
        let in_double = m.duration(OpClass::Projection, DeviceKind::Cpu, 2_000_000, 0);
        assert!(with_out > in_only);
        assert_eq!(with_out, in_double);
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
