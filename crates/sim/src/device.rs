//! Device descriptions.
//!
//! Since the N-device topology refactor the device count is *data*, not
//! a type: [`DeviceId`] is a dense index into the machine's
//! [`crate::topology::Topology`] (device 0 is always the host CPU,
//! devices 1.. are co-processors), and [`PerDevice`] is a boxed slice
//! sized by the topology rather than a fixed pair. The paper's testbed
//! — one CPU, one GPU — is simply the K = 1 configuration and remains
//! the default.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Identifier of a (co-)processor in the simulated machine: a dense
/// index into the topology's device table.
///
/// Device 0 is always the host CPU (the fallback device for aborted
/// co-processor operators); devices 1.. are co-processors. The named
/// constants [`DeviceId::Cpu`] and [`DeviceId::Gpu`] denote the CPU and
/// the *first* co-processor — the only two devices that exist in the
/// default one-GPU machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(u16);

#[allow(non_upper_case_globals)]
impl DeviceId {
    /// The host CPU (device 0).
    pub const Cpu: DeviceId = DeviceId(0);
    /// The first co-processor (device 1) — *the* GPU in the default
    /// one-co-processor machine.
    pub const Gpu: DeviceId = DeviceId(1);

    /// The device at dense index `index` (0 = CPU, 1.. = co-processors).
    pub fn from_index(index: usize) -> DeviceId {
        DeviceId(u16::try_from(index).expect("device index fits u16"))
    }

    /// The `ordinal`-th co-processor, 1-based: `coprocessor(1)` is
    /// [`DeviceId::Gpu`].
    pub fn coprocessor(ordinal: u16) -> DeviceId {
        assert!(ordinal >= 1, "co-processor ordinals are 1-based");
        DeviceId(ordinal)
    }

    /// Dense index (for per-device tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The device's processor family.
    pub fn kind(self) -> DeviceKind {
        if self.0 == 0 {
            DeviceKind::Cpu
        } else {
            DeviceKind::CoProcessor
        }
    }

    /// True for co-processors (every device except the host CPU).
    pub fn is_coprocessor(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("CPU"),
            1 => f.write_str("GPU"),
            n => write!(f, "GPU{n}"),
        }
    }
}

/// One value per device, indexable by [`DeviceId`].
///
/// Replaces bare `[T; 2]` fields plus `.index()` arithmetic at call
/// sites: `busy[DeviceId::Gpu]` instead of `busy[1]`. Backed by a boxed
/// slice sized by the topology, so the same code runs at any device
/// count; an empty table stands for "no per-device values recorded".
///
/// Equality pads the shorter side with `T::default()`: a table grown
/// lazily from an event stream compares equal to one sized eagerly by
/// the topology as long as the untouched tail is all default.
#[derive(Debug, Clone)]
pub struct PerDevice<T>(Box<[T]>);

impl<T> Default for PerDevice<T> {
    fn default() -> Self {
        PerDevice(Box::from([]))
    }
}

impl<T> PerDevice<T> {
    /// A table with no per-device values (grows on demand via
    /// [`PerDevice::get_mut_or_grow`]).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Construct the default two-device table from explicit CPU and
    /// (first) co-processor values.
    pub fn new(cpu: T, gpu: T) -> Self {
        PerDevice(Box::from([cpu, gpu]))
    }

    /// The same value for each of `devices` devices.
    pub fn splat(value: T, devices: usize) -> Self
    where
        T: Clone,
    {
        PerDevice(vec![value; devices].into_boxed_slice())
    }

    /// Build a table of `devices` entries from a per-device function.
    pub fn from_fn(devices: usize, mut f: impl FnMut(DeviceId) -> T) -> Self {
        PerDevice((0..devices).map(|i| f(DeviceId::from_index(i))).collect())
    }

    /// Number of devices the table holds values for.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no per-device values are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The host CPU's value.
    pub fn cpu(&self) -> &T {
        &self.0[0]
    }

    /// The first co-processor's value.
    pub fn gpu(&self) -> &T {
        &self.0[1]
    }

    /// The value for `device`, if the table extends that far.
    pub fn get(&self, device: DeviceId) -> Option<&T> {
        self.0.get(device.index())
    }

    /// The value for `device`, defaulting for devices past the end —
    /// the read-side counterpart of [`PerDevice::get_mut_or_grow`].
    pub fn get_padded(&self, device: DeviceId) -> T
    where
        T: Copy + Default,
    {
        self.0.get(device.index()).copied().unwrap_or_default()
    }

    /// Mutable access to `device`'s value, growing the table with
    /// defaults as needed (for consumers that learn the device count
    /// from the data, e.g. metric re-derivation from an event stream).
    pub fn get_mut_or_grow(&mut self, device: DeviceId) -> &mut T
    where
        T: Default,
    {
        let i = device.index();
        if i >= self.0.len() {
            let mut v = std::mem::take(&mut self.0).into_vec();
            v.resize_with(i + 1, T::default);
            self.0 = v.into_boxed_slice();
        }
        &mut self.0[i]
    }

    /// `(device, value)` pairs in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &T)> {
        self.0.iter().enumerate().map(|(i, v)| (DeviceId::from_index(i), v))
    }

    /// The values alone, in dense-index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.0.iter()
    }

    /// Apply `f` per device, preserving the association.
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> PerDevice<U> {
        PerDevice(self.0.into_vec().into_iter().map(f).collect())
    }
}

impl<T: PartialEq + Default> PartialEq for PerDevice<T> {
    fn eq(&self, other: &Self) -> bool {
        let n = self.0.len().max(other.0.len());
        let pad = T::default();
        (0..n).all(|i| {
            self.0.get(i).unwrap_or(&pad) == other.0.get(i).unwrap_or(&pad)
        })
    }
}

impl<T: Eq + Default> Eq for PerDevice<T> {}

impl<T> Index<DeviceId> for PerDevice<T> {
    type Output = T;
    fn index(&self, device: DeviceId) -> &T {
        &self.0[device.index()]
    }
}

impl<T> IndexMut<DeviceId> for PerDevice<T> {
    fn index_mut(&mut self, device: DeviceId) -> &mut T {
        &mut self.0[device.index()]
    }
}

/// Processor family, used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A general-purpose host processor.
    Cpu,
    /// An accelerator behind the interconnect.
    CoProcessor,
}

/// Static description of one device. Its identity is positional: the
/// topology assigns ids by the order specs are registered.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Number of operators that may run concurrently on this device.
    ///
    /// This is the thread-pool bound of Section 5 ("query chopping");
    /// strategies that do not chop use an effectively unbounded value.
    pub worker_slots: usize,
    /// Total device memory in bytes (`u64::MAX` for the host CPU, whose
    /// memory is never the bottleneck in the paper's experiments).
    pub memory_bytes: u64,
    /// Portion of `memory_bytes` reserved as the column cache; the rest is
    /// the operator heap (Section 2.1).
    pub cache_bytes: u64,
    /// The processor family (decides which cost-model table applies).
    pub kind: DeviceKind,
}

impl DeviceSpec {
    /// The host CPU: no device cache, unbounded memory.
    pub fn cpu(worker_slots: usize) -> Self {
        DeviceSpec {
            worker_slots,
            memory_bytes: u64::MAX,
            cache_bytes: 0,
            kind: DeviceKind::Cpu,
        }
    }

    /// A co-processor with `memory_bytes` total, `cache_bytes` of which is
    /// the column cache.
    ///
    /// # Panics
    /// Panics if `cache_bytes > memory_bytes`.
    pub fn coprocessor(worker_slots: usize, memory_bytes: u64, cache_bytes: u64) -> Self {
        assert!(
            cache_bytes <= memory_bytes,
            "cache ({cache_bytes}) larger than device memory ({memory_bytes})"
        );
        DeviceSpec {
            worker_slots,
            memory_bytes,
            cache_bytes,
            kind: DeviceKind::CoProcessor,
        }
    }

    /// Bytes available as operator heap.
    pub fn heap_bytes(&self) -> u64 {
        self.memory_bytes.saturating_sub(self.cache_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_kinds() {
        assert_eq!(DeviceId::Cpu.index(), 0);
        assert_eq!(DeviceId::Gpu.index(), 1);
        assert_eq!(DeviceId::coprocessor(1), DeviceId::Gpu);
        assert_eq!(DeviceId::coprocessor(3).index(), 3);
        assert_eq!(DeviceId::from_index(2), DeviceId::coprocessor(2));
        assert!(DeviceId::Gpu.is_coprocessor());
        assert!(DeviceId::coprocessor(4).is_coprocessor());
        assert!(!DeviceId::Cpu.is_coprocessor());
        assert_eq!(DeviceId::Cpu.kind(), DeviceKind::Cpu);
        assert_eq!(DeviceId::coprocessor(2).kind(), DeviceKind::CoProcessor);
    }

    #[test]
    fn heap_is_memory_minus_cache() {
        let d = DeviceSpec::coprocessor(4, 1_000, 600);
        assert_eq!(d.heap_bytes(), 400);
        let c = DeviceSpec::cpu(8);
        assert_eq!(c.heap_bytes(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "larger than device memory")]
    fn cache_cannot_exceed_memory() {
        DeviceSpec::coprocessor(1, 100, 200);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceId::Cpu.to_string(), "CPU");
        assert_eq!(DeviceId::Gpu.to_string(), "GPU");
        assert_eq!(DeviceId::coprocessor(2).to_string(), "GPU2");
        assert_eq!(DeviceId::coprocessor(4).to_string(), "GPU4");
    }

    #[test]
    fn per_device_indexing_and_iter() {
        let mut v: PerDevice<u64> = PerDevice::splat(0, 2);
        v[DeviceId::Gpu] = 7;
        v[DeviceId::Cpu] += 3;
        assert_eq!(v[DeviceId::Cpu], 3);
        assert_eq!(*v.gpu(), 7);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![(DeviceId::Cpu, &3), (DeviceId::Gpu, &7)]
        );
        let doubled = v.clone().map(|x| x * 2);
        assert_eq!(doubled, PerDevice::new(6, 14));
        assert_eq!(PerDevice::splat(5u32, 2), PerDevice::new(5, 5));
    }

    #[test]
    fn per_device_grows_and_pads() {
        let mut v: PerDevice<u64> = PerDevice::empty();
        assert!(v.is_empty());
        assert_eq!(v.get_padded(DeviceId::coprocessor(2)), 0);
        *v.get_mut_or_grow(DeviceId::coprocessor(2)) = 9;
        assert_eq!(v.len(), 3);
        assert_eq!(v.get_padded(DeviceId::coprocessor(2)), 9);
        assert_eq!(v.get_padded(DeviceId::Gpu), 0);
        assert_eq!(v.get(DeviceId::coprocessor(5)), None);
    }

    #[test]
    fn equality_pads_with_defaults() {
        let a: PerDevice<u64> = PerDevice::new(3, 7);
        let mut b: PerDevice<u64> = PerDevice::splat(0, 4);
        b[DeviceId::Cpu] = 3;
        b[DeviceId::Gpu] = 7;
        assert_eq!(a, b);
        b[DeviceId::coprocessor(3)] = 1;
        assert_ne!(a, b);
        assert_eq!(PerDevice::<u64>::empty(), PerDevice::splat(0, 3));
    }

    #[test]
    fn debug_format_matches_pair_layout() {
        // The golden trace/metrics fingerprints print `PerDevice([..])`;
        // the boxed-slice representation must keep that shape.
        let v: PerDevice<u64> = PerDevice::new(1, 2);
        assert_eq!(format!("{v:?}"), "PerDevice([1, 2])");
    }

    #[test]
    fn from_fn_builds_dense_tables() {
        let v = PerDevice::from_fn(3, |d| d.index() * 10);
        assert_eq!(v[DeviceId::Cpu], 0);
        assert_eq!(v[DeviceId::Gpu], 10);
        assert_eq!(v[DeviceId::coprocessor(2)], 20);
    }
}
