//! Device descriptions.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Identifier of a (co-)processor in the simulated machine.
///
/// The machine layout mirrors the paper's testbed: one CPU and one
/// co-processor, so a two-variant enum is both faithful and cheap. The
/// placement strategies and the executor treat the set of devices
/// generically through [`DeviceId::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceId {
    /// The host CPU.
    Cpu,
    /// The co-processor (the paper's GPU).
    Gpu,
}

impl DeviceId {
    /// All devices in the simulated machine.
    pub const ALL: [DeviceId; 2] = [DeviceId::Cpu, DeviceId::Gpu];

    /// The other device.
    pub fn other(self) -> DeviceId {
        match self {
            DeviceId::Cpu => DeviceId::Gpu,
            DeviceId::Gpu => DeviceId::Cpu,
        }
    }

    /// Dense index (for per-device arrays).
    pub fn index(self) -> usize {
        match self {
            DeviceId::Cpu => 0,
            DeviceId::Gpu => 1,
        }
    }

    /// The device's processor family.
    pub fn kind(self) -> DeviceKind {
        match self {
            DeviceId::Cpu => DeviceKind::Cpu,
            DeviceId::Gpu => DeviceKind::CoProcessor,
        }
    }

    /// True for the co-processor.
    pub fn is_coprocessor(self) -> bool {
        matches!(self, DeviceId::Gpu)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Cpu => f.write_str("CPU"),
            DeviceId::Gpu => f.write_str("GPU"),
        }
    }
}

/// One value per device, indexable by [`DeviceId`].
///
/// Replaces bare `[T; 2]` fields plus `.index()` arithmetic at call
/// sites: `busy[DeviceId::Gpu]` instead of `busy[DeviceId::Gpu.index()]`.
/// The layout stays a plain fixed-size array, so the newtype is free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PerDevice<T>([T; 2]);

impl<T> PerDevice<T> {
    /// Construct from explicit CPU and co-processor values.
    pub const fn new(cpu: T, gpu: T) -> Self {
        PerDevice([cpu, gpu])
    }

    /// The same value for every device.
    pub fn splat(value: T) -> Self
    where
        T: Clone,
    {
        PerDevice([value.clone(), value])
    }

    /// The host CPU's value.
    pub fn cpu(&self) -> &T {
        &self.0[0]
    }

    /// The co-processor's value.
    pub fn gpu(&self) -> &T {
        &self.0[1]
    }

    /// `(device, value)` pairs in [`DeviceId::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &T)> {
        DeviceId::ALL.into_iter().zip(self.0.iter())
    }

    /// Apply `f` per device, preserving the association.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> PerDevice<U> {
        let [cpu, gpu] = self.0;
        PerDevice([f(cpu), f(gpu)])
    }
}

impl<T> Index<DeviceId> for PerDevice<T> {
    type Output = T;
    fn index(&self, device: DeviceId) -> &T {
        &self.0[device.index()]
    }
}

impl<T> IndexMut<DeviceId> for PerDevice<T> {
    fn index_mut(&mut self, device: DeviceId) -> &mut T {
        &mut self.0[device.index()]
    }
}

impl<T> From<[T; 2]> for PerDevice<T> {
    fn from(values: [T; 2]) -> Self {
        PerDevice(values)
    }
}

/// Processor family, used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A general-purpose host processor.
    Cpu,
    /// An accelerator behind the interconnect.
    CoProcessor,
}

/// Static description of one device.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Which device this describes.
    pub id: DeviceId,
    /// Number of operators that may run concurrently on this device.
    ///
    /// This is the thread-pool bound of Section 5 ("query chopping");
    /// strategies that do not chop use an effectively unbounded value.
    pub worker_slots: usize,
    /// Total device memory in bytes (`u64::MAX` for the host CPU, whose
    /// memory is never the bottleneck in the paper's experiments).
    pub memory_bytes: u64,
    /// Portion of `memory_bytes` reserved as the column cache; the rest is
    /// the operator heap (Section 2.1).
    pub cache_bytes: u64,
}

impl DeviceSpec {
    /// The host CPU: no device cache, unbounded memory.
    pub fn cpu(worker_slots: usize) -> Self {
        DeviceSpec {
            id: DeviceId::Cpu,
            worker_slots,
            memory_bytes: u64::MAX,
            cache_bytes: 0,
        }
    }

    /// A co-processor with `memory_bytes` total, `cache_bytes` of which is
    /// the column cache.
    ///
    /// # Panics
    /// Panics if `cache_bytes > memory_bytes`.
    pub fn coprocessor(worker_slots: usize, memory_bytes: u64, cache_bytes: u64) -> Self {
        assert!(
            cache_bytes <= memory_bytes,
            "cache ({cache_bytes}) larger than device memory ({memory_bytes})"
        );
        DeviceSpec { id: DeviceId::Gpu, worker_slots, memory_bytes, cache_bytes }
    }

    /// Bytes available as operator heap.
    pub fn heap_bytes(&self) -> u64 {
        self.memory_bytes.saturating_sub(self.cache_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_and_index() {
        assert_eq!(DeviceId::Cpu.other(), DeviceId::Gpu);
        assert_eq!(DeviceId::Gpu.other(), DeviceId::Cpu);
        assert_eq!(DeviceId::Cpu.index(), 0);
        assert_eq!(DeviceId::Gpu.index(), 1);
        assert!(DeviceId::Gpu.is_coprocessor());
        assert!(!DeviceId::Cpu.is_coprocessor());
    }

    #[test]
    fn heap_is_memory_minus_cache() {
        let d = DeviceSpec::coprocessor(4, 1_000, 600);
        assert_eq!(d.heap_bytes(), 400);
        let c = DeviceSpec::cpu(8);
        assert_eq!(c.heap_bytes(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "larger than device memory")]
    fn cache_cannot_exceed_memory() {
        DeviceSpec::coprocessor(1, 100, 200);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceId::Cpu.to_string(), "CPU");
        assert_eq!(DeviceId::Gpu.to_string(), "GPU");
    }

    #[test]
    fn per_device_indexing_and_iter() {
        let mut v: PerDevice<u64> = PerDevice::default();
        v[DeviceId::Gpu] = 7;
        v[DeviceId::Cpu] += 3;
        assert_eq!(v[DeviceId::Cpu], 3);
        assert_eq!(*v.gpu(), 7);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![(DeviceId::Cpu, &3), (DeviceId::Gpu, &7)]
        );
        let doubled = v.map(|x| x * 2);
        assert_eq!(doubled, PerDevice::new(6, 14));
        assert_eq!(PerDevice::splat(5u32), PerDevice::from([5, 5]));
    }
}
