//! Interconnect (PCIe) model.
//!
//! Transfers pay a fixed latency, a staging copy into page-locked host
//! memory (Section 2.5.3: asynchronous CUDA transfers require a pinned
//! staging area) and the bus itself. Each direction is a FIFO resource:
//! concurrent requests queue behind each other, which is how multi-user
//! workloads amplify transfer cost in the simulator just as they congest
//! the real bus.

use crate::time::VirtualTime;

/// Transfer direction over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host (CPU) to device (co-processor).
    HostToDevice,
    /// Device (co-processor) to host.
    DeviceToHost,
}

impl Direction {
    /// Dense index (for per-direction arrays).
    pub fn index(self) -> usize {
        match self {
            Direction::HostToDevice => 0,
            Direction::DeviceToHost => 1,
        }
    }
}

/// A scheduled transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the transfer actually started (after queueing).
    pub start: VirtualTime,
    /// When the last byte arrived.
    pub end: VirtualTime,
    /// Pure service time (latency + staging + bus), excluding queueing.
    pub service: VirtualTime,
    /// Bytes moved.
    pub bytes: u64,
}

/// Link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Bus bandwidth in bytes per second.
    pub bus_bandwidth: f64,
    /// Staging (pinned host memory copy) bandwidth in bytes per second.
    pub staging_bandwidth: f64,
    /// Fixed setup latency per transfer.
    pub latency: VirtualTime,
}

impl Default for LinkParams {
    fn default() -> Self {
        // Calibrated so that the effective end-to-end bandwidth is
        // ~0.86 GB/s: ~3x below the CPU's effective query throughput
        // (Figure 1's cold-cache slowdown) and ~20-25x below the
        // co-processor selection throughput (Figure 2's thrashing factor).
        // EXPERIMENTS.md records the calibration.
        LinkParams {
            bus_bandwidth: 2.0e9,
            staging_bandwidth: 1.5e9,
            latency: VirtualTime::from_micros(2),
        }
    }
}

impl LinkParams {
    /// Pure service time to move `bytes` one way.
    pub fn service_time(&self, bytes: u64) -> VirtualTime {
        let b = bytes as f64;
        self.latency
            + VirtualTime::from_secs_f64(b / self.staging_bandwidth)
            + VirtualTime::from_secs_f64(b / self.bus_bandwidth)
    }
}

/// Accumulated traffic statistics for one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Total bytes moved.
    pub bytes: u64,
    /// Number of transfers.
    pub transfers: u64,
    /// Sum of pure service times.
    pub busy_time: VirtualTime,
}

/// The bidirectional link with FIFO contention per direction.
#[derive(Debug, Clone)]
pub struct Interconnect {
    params: LinkParams,
    busy_until: [VirtualTime; 2],
    stats: [LinkStats; 2],
}

impl Interconnect {
    /// An idle link with the given parameters.
    pub fn new(params: LinkParams) -> Self {
        Interconnect {
            params,
            busy_until: [VirtualTime::ZERO; 2],
            stats: [LinkStats::default(); 2],
        }
    }

    /// The link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Enqueue a transfer of `bytes` in `dir` at time `now`; returns the
    /// scheduled window.
    pub fn transfer(&mut self, now: VirtualTime, dir: Direction, bytes: u64) -> Transfer {
        self.transfer_scaled(now, dir, bytes, 1.0)
    }

    /// Like [`Interconnect::transfer`] but with the service time
    /// multiplied by `factor` (≥ 1) — an injected latency spike
    /// (degraded link, contention from outside the model). The slowed
    /// transfer occupies the FIFO for its full stretched window.
    pub fn transfer_scaled(
        &mut self,
        now: VirtualTime,
        dir: Direction,
        bytes: u64,
        factor: f64,
    ) -> Transfer {
        debug_assert!(factor >= 1.0, "spike factor must not speed the link up");
        let mut service = self.params.service_time(bytes);
        if factor != 1.0 {
            service = service.scale(factor);
        }
        let start = now.max(self.busy_until[dir.index()]);
        let end = start + service;
        self.busy_until[dir.index()] = end;
        let s = &mut self.stats[dir.index()];
        s.bytes += bytes;
        s.transfers += 1;
        s.busy_time += service;
        Transfer { start, end, service, bytes }
    }

    /// Traffic statistics for `dir`.
    pub fn stats(&self, dir: Direction) -> LinkStats {
        self.stats[dir.index()]
    }

    /// When the link in `dir` becomes idle.
    pub fn busy_until(&self, dir: Direction) -> VirtualTime {
        self.busy_until[dir.index()]
    }

    /// Reset queues and statistics (used between experiment runs).
    pub fn reset(&mut self) {
        self.busy_until = [VirtualTime::ZERO; 2];
        self.stats = [LinkStats::default(); 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Interconnect {
        Interconnect::new(LinkParams {
            bus_bandwidth: 1e9,
            staging_bandwidth: 1e9,
            latency: VirtualTime::from_micros(1),
        })
    }

    #[test]
    fn service_time_components() {
        let l = link();
        // 1e9 bytes at 1 GB/s staging + 1 GB/s bus = 2 s + 1 us.
        let t = l.params().service_time(1_000_000_000);
        assert_eq!(t.as_nanos(), 2_000_000_000 + 1_000);
    }

    #[test]
    fn fifo_contention_queues_transfers() {
        let mut l = link();
        let t0 = l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 500_000_000);
        let t1 = l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 500_000_000);
        assert_eq!(t0.start, VirtualTime::ZERO);
        assert_eq!(t1.start, t0.end);
        assert!(t1.end > t0.end);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let down = l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 1_000_000);
        let up = l.transfer(VirtualTime::ZERO, Direction::DeviceToHost, 1_000_000);
        assert_eq!(down.start, VirtualTime::ZERO);
        assert_eq!(up.start, VirtualTime::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = link();
        l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 100);
        l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 200);
        let s = l.stats(Direction::HostToDevice);
        assert_eq!(s.bytes, 300);
        assert_eq!(s.transfers, 2);
        assert!(s.busy_time > VirtualTime::ZERO);
        assert_eq!(l.stats(Direction::DeviceToHost), LinkStats::default());
    }

    #[test]
    fn later_requests_start_at_request_time_when_idle() {
        let mut l = link();
        let t = l.transfer(VirtualTime::from_millis(5), Direction::DeviceToHost, 10);
        assert_eq!(t.start, VirtualTime::from_millis(5));
    }

    #[test]
    fn reset_clears_queues() {
        let mut l = link();
        l.transfer(VirtualTime::ZERO, Direction::HostToDevice, 1_000_000_000);
        l.reset();
        assert_eq!(l.busy_until(Direction::HostToDevice), VirtualTime::ZERO);
        assert_eq!(l.stats(Direction::HostToDevice).transfers, 0);
    }
}
