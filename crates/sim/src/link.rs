//! Interconnect (PCIe) model.
//!
//! Transfers pay a fixed latency, a staging copy into page-locked host
//! memory (Section 2.5.3: asynchronous CUDA transfers require a pinned
//! staging area) and the bus itself. Each direction of each host link is
//! a FIFO resource: concurrent requests queue behind each other, which
//! is how multi-user workloads amplify transfer cost in the simulator
//! just as they congest the real bus.
//!
//! With the N-device topology the interconnect is a *set* of host links
//! — one FIFO pair per co-processor, with its own [`LinkParams`] from
//! the topology's link table. Links are independent: traffic to one
//! co-processor never queues behind traffic to another, but the two
//! directions of a single link still serialize per direction.

use crate::device::DeviceId;
use crate::time::VirtualTime;
use crate::topology::Topology;

/// Transfer direction over a host link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host (CPU) to device (co-processor).
    HostToDevice,
    /// Device (co-processor) to host.
    DeviceToHost,
}

impl Direction {
    /// Dense index (for per-direction tables; a link has exactly two
    /// directions, so this is not a device-count assumption).
    pub fn index(self) -> usize {
        match self {
            Direction::HostToDevice => 0,
            Direction::DeviceToHost => 1,
        }
    }
}

/// A scheduled transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the transfer actually started (after queueing).
    pub start: VirtualTime,
    /// When the last byte arrived.
    pub end: VirtualTime,
    /// Pure service time (latency + staging + bus), excluding queueing.
    pub service: VirtualTime,
    /// Bytes moved.
    pub bytes: u64,
}

/// Link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Bus bandwidth in bytes per second.
    pub bus_bandwidth: f64,
    /// Staging (pinned host memory copy) bandwidth in bytes per second.
    pub staging_bandwidth: f64,
    /// Fixed setup latency per transfer.
    pub latency: VirtualTime,
}

impl Default for LinkParams {
    fn default() -> Self {
        // Calibrated so that the effective end-to-end bandwidth is
        // ~0.86 GB/s: ~3x below the CPU's effective query throughput
        // (Figure 1's cold-cache slowdown) and ~20-25x below the
        // co-processor selection throughput (Figure 2's thrashing factor).
        // EXPERIMENTS.md records the calibration.
        LinkParams {
            bus_bandwidth: 2.0e9,
            staging_bandwidth: 1.5e9,
            latency: VirtualTime::from_micros(2),
        }
    }
}

impl LinkParams {
    /// Pure service time to move `bytes` one way.
    pub fn service_time(&self, bytes: u64) -> VirtualTime {
        let b = bytes as f64;
        self.latency
            + VirtualTime::from_secs_f64(b / self.staging_bandwidth)
            + VirtualTime::from_secs_f64(b / self.bus_bandwidth)
    }
}

/// Accumulated traffic statistics for one direction of one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Total bytes moved.
    pub bytes: u64,
    /// Number of transfers.
    pub transfers: u64,
    /// Sum of pure service times.
    pub busy_time: VirtualTime,
}

impl LinkStats {
    /// Fold `other` into `self` (aggregating across links).
    pub fn absorb(&mut self, other: &LinkStats) {
        self.bytes += other.bytes;
        self.transfers += other.transfers;
        self.busy_time += other.busy_time;
    }
}

/// One bidirectional host link with FIFO contention per direction.
#[derive(Debug, Clone)]
struct LinkState {
    params: LinkParams,
    busy_until: [VirtualTime; 2],
    stats: [LinkStats; 2],
}

impl LinkState {
    fn new(params: LinkParams) -> Self {
        LinkState {
            params,
            busy_until: [VirtualTime::ZERO; 2],
            stats: [LinkStats::default(); 2],
        }
    }
}

/// The machine's host links: one FIFO pair per co-processor.
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// `links[k]` serves co-processor `k + 1`.
    links: Vec<LinkState>,
}

impl Interconnect {
    /// A single idle link with the given parameters (the default
    /// one-co-processor machine).
    pub fn new(params: LinkParams) -> Self {
        Interconnect { links: vec![LinkState::new(params)] }
    }

    /// One idle link per co-processor of `topology`, with that link's
    /// parameters from the topology's link table.
    pub fn for_topology(topology: &Topology) -> Self {
        Interconnect {
            links: topology
                .coprocessors()
                .map(|d| LinkState::new(*topology.link(d)))
                .collect(),
        }
    }

    /// Number of host links (= co-processors).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn state(&self, device: DeviceId) -> &LinkState {
        assert!(device.is_coprocessor(), "the CPU has no host link");
        &self.links[device.index() - 1]
    }

    fn state_mut(&mut self, device: DeviceId) -> &mut LinkState {
        assert!(device.is_coprocessor(), "the CPU has no host link");
        &mut self.links[device.index() - 1]
    }

    /// The parameters of `device`'s host link.
    pub fn params(&self, device: DeviceId) -> &LinkParams {
        &self.state(device).params
    }

    /// Enqueue a transfer of `bytes` in `dir` over `device`'s host link
    /// at time `now`; returns the scheduled window.
    pub fn transfer(
        &mut self,
        now: VirtualTime,
        device: DeviceId,
        dir: Direction,
        bytes: u64,
    ) -> Transfer {
        self.transfer_scaled(now, device, dir, bytes, 1.0)
    }

    /// Like [`Interconnect::transfer`] but with the service time
    /// multiplied by `factor` (≥ 1) — an injected latency spike
    /// (degraded link, contention from outside the model). The slowed
    /// transfer occupies the FIFO for its full stretched window.
    pub fn transfer_scaled(
        &mut self,
        now: VirtualTime,
        device: DeviceId,
        dir: Direction,
        bytes: u64,
        factor: f64,
    ) -> Transfer {
        debug_assert!(factor >= 1.0, "spike factor must not speed the link up");
        let link = self.state_mut(device);
        let mut service = link.params.service_time(bytes);
        if factor != 1.0 {
            service = service.scale(factor);
        }
        let start = now.max(link.busy_until[dir.index()]);
        let end = start + service;
        link.busy_until[dir.index()] = end;
        let s = &mut link.stats[dir.index()];
        s.bytes += bytes;
        s.transfers += 1;
        s.busy_time += service;
        Transfer { start, end, service, bytes }
    }

    /// Traffic statistics for `dir` on `device`'s host link.
    pub fn stats(&self, device: DeviceId, dir: Direction) -> LinkStats {
        self.state(device).stats[dir.index()]
    }

    /// Traffic statistics for `dir` summed over every host link.
    pub fn total_stats(&self, dir: Direction) -> LinkStats {
        let mut total = LinkStats::default();
        for link in &self.links {
            total.absorb(&link.stats[dir.index()]);
        }
        total
    }

    /// When `device`'s link in `dir` becomes idle.
    pub fn busy_until(&self, device: DeviceId, dir: Direction) -> VirtualTime {
        self.state(device).busy_until[dir.index()]
    }

    /// Reset queues and statistics (used between experiment runs).
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.busy_until = [VirtualTime::ZERO; 2];
            link.stats = [LinkStats::default(); 2];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    const GPU: DeviceId = DeviceId::Gpu;

    fn link() -> Interconnect {
        Interconnect::new(LinkParams {
            bus_bandwidth: 1e9,
            staging_bandwidth: 1e9,
            latency: VirtualTime::from_micros(1),
        })
    }

    #[test]
    fn service_time_components() {
        let l = link();
        // 1e9 bytes at 1 GB/s staging + 1 GB/s bus = 2 s + 1 us.
        let t = l.params(GPU).service_time(1_000_000_000);
        assert_eq!(t.as_nanos(), 2_000_000_000 + 1_000);
    }

    #[test]
    fn fifo_contention_queues_transfers() {
        let mut l = link();
        let t0 = l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 500_000_000);
        let t1 = l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 500_000_000);
        assert_eq!(t0.start, VirtualTime::ZERO);
        assert_eq!(t1.start, t0.end);
        assert!(t1.end > t0.end);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let down = l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 1_000_000);
        let up = l.transfer(VirtualTime::ZERO, GPU, Direction::DeviceToHost, 1_000_000);
        assert_eq!(down.start, VirtualTime::ZERO);
        assert_eq!(up.start, VirtualTime::ZERO);
    }

    #[test]
    fn links_are_independent_per_coprocessor() {
        let t = Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 0),
            LinkParams::default(),
        )
        .with_coprocessor(DeviceSpec::coprocessor(4, 1_000, 0), LinkParams::default());
        let mut l = Interconnect::for_topology(&t);
        assert_eq!(l.link_count(), 2);
        let g2 = DeviceId::coprocessor(2);
        let a = l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 500_000_000);
        let b = l.transfer(VirtualTime::ZERO, g2, Direction::HostToDevice, 500_000_000);
        // No cross-link queueing.
        assert_eq!(a.start, VirtualTime::ZERO);
        assert_eq!(b.start, VirtualTime::ZERO);
        // Stats are per link; the totals aggregate.
        assert_eq!(l.stats(GPU, Direction::HostToDevice).transfers, 1);
        assert_eq!(l.stats(g2, Direction::HostToDevice).transfers, 1);
        assert_eq!(l.total_stats(Direction::HostToDevice).transfers, 2);
        assert_eq!(l.total_stats(Direction::HostToDevice).bytes, 1_000_000_000);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = link();
        l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 100);
        l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 200);
        let s = l.stats(GPU, Direction::HostToDevice);
        assert_eq!(s.bytes, 300);
        assert_eq!(s.transfers, 2);
        assert!(s.busy_time > VirtualTime::ZERO);
        assert_eq!(l.stats(GPU, Direction::DeviceToHost), LinkStats::default());
    }

    #[test]
    fn later_requests_start_at_request_time_when_idle() {
        let mut l = link();
        let t = l.transfer(VirtualTime::from_millis(5), GPU, Direction::DeviceToHost, 10);
        assert_eq!(t.start, VirtualTime::from_millis(5));
    }

    #[test]
    fn reset_clears_queues() {
        let mut l = link();
        l.transfer(VirtualTime::ZERO, GPU, Direction::HostToDevice, 1_000_000_000);
        l.reset();
        assert_eq!(l.busy_until(GPU, Direction::HostToDevice), VirtualTime::ZERO);
        assert_eq!(l.stats(GPU, Direction::HostToDevice).transfers, 0);
    }

    #[test]
    #[should_panic(expected = "no host link")]
    fn cpu_transfers_are_rejected() {
        let mut l = link();
        let _ = l.transfer(VirtualTime::ZERO, DeviceId::Cpu, Direction::HostToDevice, 1);
    }
}
