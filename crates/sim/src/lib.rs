#![warn(missing_docs)]

//! Discrete-event co-processor simulation substrate.
//!
//! The paper's experiments run on a physical GPU behind a PCIe bus. This
//! crate replaces that hardware with a deterministic simulator (see
//! DESIGN.md §1 for the substitution argument):
//!
//! * [`time::VirtualTime`] — a nanosecond-resolution virtual clock,
//! * [`events::EventQueue`] — a deterministic discrete-event queue,
//! * [`device`] — device descriptions with worker slots, and the dense
//!   [`device::PerDevice`] table,
//! * [`topology::Topology`] — the machine shape: 1 host CPU + K
//!   co-processors, each behind its own host link,
//! * [`heap::HeapAllocator`] — a byte-accurate device heap whose
//!   allocations *fail* when capacity is exceeded (the paper's
//!   out-of-memory aborts),
//! * [`cache::DataCache`] — the device column cache with LRU/LFU eviction
//!   and pinning (Section 3.2 / Algorithm 1),
//! * [`link::Interconnect`] — the PCIe model: latency, staging copy and
//!   bus bandwidth, FIFO contention per direction,
//! * [`costmodel::CostModel`] — ground-truth kernel durations and device
//!   memory footprints per operator class,
//! * [`fault::FaultPlan`] — seeded deterministic fault injection: heap
//!   allocation failures, transfer errors and latency spikes, device
//!   stall windows and kernel aborts, all triggered in virtual time
//!   (DESIGN.md §8).
//!
//! Nothing in this crate knows about relational operators or plans; the
//! engine crate drives the simulation.

pub mod cache;
pub mod config;
pub mod costmodel;
pub mod device;
pub mod events;
pub mod fault;
pub mod heap;
pub mod link;
pub mod time;
pub mod topology;

pub use cache::{partition_bytes, CacheKey, CachePolicy, CacheSet, DataCache, EvictionReasons};
pub use config::SimConfig;
pub use costmodel::{CostModel, CostParams, OpClass};
pub use device::{DeviceId, DeviceKind, DeviceSpec, PerDevice};
pub use events::EventQueue;
pub use fault::{FaultPlan, FaultSpec, FaultStats, RetryPolicy, StallWindow, TransferFault};
pub use heap::HeapAllocator;
pub use link::{Direction, Interconnect, LinkParams, LinkStats, Transfer};
pub use time::VirtualTime;
pub use topology::Topology;
