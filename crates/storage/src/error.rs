//! Storage-layer errors.

use std::fmt;

/// Errors raised while building or accessing storage structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table's schema and columns disagree.
    SchemaMismatch {
        /// The offending table.
        table: String,
        /// What disagreed.
        detail: String,
    },
    /// A table name was registered twice.
    DuplicateTable(String),
    /// A table or column lookup failed.
    NotFound(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch in table {table}: {detail}")
            }
            StorageError::DuplicateTable(t) => write!(f, "duplicate table {t}"),
            StorageError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StorageError::DuplicateTable("t".into());
        assert_eq!(e.to_string(), "duplicate table t");
        let e = StorageError::NotFound("t.c".into());
        assert!(e.to_string().contains("t.c"));
        let e = StorageError::SchemaMismatch { table: "x".into(), detail: "d".into() };
        assert!(e.to_string().contains("x"));
    }
}
