//! TPC-H data generator (downscaled, deterministic).
//!
//! Generates the eight TPC-H tables with the columns and value
//! distributions needed by the evaluated query subset Q2–Q7 (Appendix C.2
//! of the paper). Scale factor `s` yields `s × rows_per_sf` lineitem rows;
//! all inter-table ratios follow the specification.

use super::{DAYS_IN_MONTH, NATIONS, REGIONS};
use crate::column::{ColumnData, DictColumn};
use crate::database::Database;
use crate::table::{Field, Schema, Table};
use crate::types::DataType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable, seeded TPC-H generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    scale_factor: u32,
    rows_per_sf: usize,
    seed: u64,
}

impl TpchGenerator {
    /// Generator for scale factor `sf` with default downscaling
    /// (60 000 lineitem rows per scale factor, i.e. 100× below spec).
    pub fn new(sf: u32) -> Self {
        TpchGenerator { scale_factor: sf.max(1), rows_per_sf: 60_000, seed: 0x79C4 }
    }

    /// Override the number of lineitem rows per scale factor.
    pub fn with_rows_per_sf(mut self, rows: usize) -> Self {
        self.rows_per_sf = rows.max(1);
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured scale factor.
    pub fn scale_factor(&self) -> u32 {
        self.scale_factor
    }

    /// Number of lineitem rows this configuration will generate.
    pub fn lineitem_rows(&self) -> usize {
        self.scale_factor as usize * self.rows_per_sf
    }

    /// Generate the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.scale_factor as u64));
        let l_rows = self.lineitem_rows();
        let o_rows = (l_rows / 4).max(40);
        let c_rows = (l_rows / 40).max(40);
        let p_rows = (l_rows / 30).max(50);
        let s_rows = (l_rows / 600).max(20);

        let days = calendar_days();

        let mut db = Database::new();
        db.add_table(gen_region()).unwrap();
        db.add_table(gen_nation()).unwrap();
        db.add_table(gen_supplier(s_rows, &mut rng)).unwrap();
        db.add_table(gen_customer(c_rows, &mut rng)).unwrap();
        db.add_table(gen_part(p_rows, &mut rng)).unwrap();
        db.add_table(gen_partsupp(p_rows, s_rows, &mut rng)).unwrap();
        let (orders, order_date_idx) = gen_orders(o_rows, c_rows, &days, &mut rng);
        db.add_table(orders).unwrap();
        db.add_table(gen_lineitem(
            l_rows, o_rows, p_rows, s_rows, &days, &order_date_idx, &mut rng,
        ))
        .unwrap();
        db
    }
}

/// All `yyyymmdd` date keys of 1992-01-01 … 1998-12-31 (non-leap).
fn calendar_days() -> Vec<i32> {
    let mut days = Vec::with_capacity(7 * 365);
    for y in 1992..=1998i32 {
        for (m, &dim) in DAYS_IN_MONTH.iter().enumerate() {
            for d in 1..=dim {
                days.push(y * 10_000 + (m as i32 + 1) * 100 + d as i32);
            }
        }
    }
    days
}

fn gen_region() -> Table {
    Table::new(
        "region",
        Schema::new(vec![
            Field::new("r_regionkey", DataType::Int32),
            Field::new("r_name", DataType::Str),
        ]),
        vec![
            ColumnData::Int32((0..REGIONS.len() as i32).collect()),
            ColumnData::Str(DictColumn::from_strings(REGIONS)),
        ],
    )
    .expect("region schema is consistent")
}

fn gen_nation() -> Table {
    Table::new(
        "nation",
        Schema::new(vec![
            Field::new("n_nationkey", DataType::Int32),
            Field::new("n_name", DataType::Str),
            Field::new("n_regionkey", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32((0..NATIONS.len() as i32).collect()),
            ColumnData::Str(DictColumn::from_strings(NATIONS.iter().map(|&(n, _)| n))),
            ColumnData::Int32(NATIONS.iter().map(|&(_, r)| r as i32).collect()),
        ],
    )
    .expect("nation schema is consistent")
}

fn gen_supplier(rows: usize, rng: &mut StdRng) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut name = Vec::with_capacity(rows);
    let mut nationkey = Vec::with_capacity(rows);
    let mut acctbal = Vec::with_capacity(rows);
    for i in 0..rows {
        key.push(i as i32 + 1);
        name.push(format!("Supplier#{:09}", i + 1));
        nationkey.push(rng.gen_range(0..NATIONS.len() as i32));
        acctbal.push(rng.gen_range(-99_999..=999_999) as f64 / 100.0);
    }
    Table::new(
        "supplier",
        Schema::new(vec![
            Field::new("s_suppkey", DataType::Int32),
            Field::new("s_name", DataType::Str),
            Field::new("s_nationkey", DataType::Int32),
            Field::new("s_acctbal", DataType::Float64),
        ]),
        vec![
            ColumnData::Int32(key),
            ColumnData::Str(DictColumn::from_strings(name)),
            ColumnData::Int32(nationkey),
            ColumnData::Float64(acctbal),
        ],
    )
    .expect("supplier schema is consistent")
}

fn gen_customer(rows: usize, rng: &mut StdRng) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut name = Vec::with_capacity(rows);
    let mut nationkey = Vec::with_capacity(rows);
    let mut mktsegment = Vec::with_capacity(rows);
    let segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
    for i in 0..rows {
        key.push(i as i32 + 1);
        name.push(format!("Customer#{:09}", i + 1));
        nationkey.push(rng.gen_range(0..NATIONS.len() as i32));
        mktsegment.push(segments[rng.gen_range(0..segments.len())].to_owned());
    }
    Table::new(
        "customer",
        Schema::new(vec![
            Field::new("c_custkey", DataType::Int32),
            Field::new("c_name", DataType::Str),
            Field::new("c_nationkey", DataType::Int32),
            Field::new("c_mktsegment", DataType::Str),
        ]),
        vec![
            ColumnData::Int32(key),
            ColumnData::Str(DictColumn::from_strings(name)),
            ColumnData::Int32(nationkey),
            ColumnData::Str(DictColumn::from_strings(mktsegment)),
        ],
    )
    .expect("customer schema is consistent")
}

fn gen_part(rows: usize, rng: &mut StdRng) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut mfgr = Vec::with_capacity(rows);
    let mut ptype = Vec::with_capacity(rows);
    let mut size = Vec::with_capacity(rows);
    let type1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
    let type2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
    let type3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
    for i in 0..rows {
        key.push(i as i32 + 1);
        mfgr.push(format!("Manufacturer#{}", rng.gen_range(1..=5)));
        ptype.push(format!(
            "{} {} {}",
            type1[rng.gen_range(0..type1.len())],
            type2[rng.gen_range(0..type2.len())],
            type3[rng.gen_range(0..type3.len())]
        ));
        size.push(rng.gen_range(1..=50));
    }
    Table::new(
        "part",
        Schema::new(vec![
            Field::new("p_partkey", DataType::Int32),
            Field::new("p_mfgr", DataType::Str),
            Field::new("p_type", DataType::Str),
            Field::new("p_size", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32(key),
            ColumnData::Str(DictColumn::from_strings(mfgr)),
            ColumnData::Str(DictColumn::from_strings(ptype)),
            ColumnData::Int32(size),
        ],
    )
    .expect("part schema is consistent")
}

fn gen_partsupp(p_rows: usize, s_rows: usize, rng: &mut StdRng) -> Table {
    let rows = p_rows * 4;
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut supplycost = Vec::with_capacity(rows);
    let mut availqty = Vec::with_capacity(rows);
    for p in 0..p_rows {
        for _ in 0..4 {
            partkey.push(p as i32 + 1);
            suppkey.push(rng.gen_range(1..=s_rows as i32));
            supplycost.push(rng.gen_range(100..=100_000) as f64 / 100.0);
            availqty.push(rng.gen_range(1..=9_999));
        }
    }
    Table::new(
        "partsupp",
        Schema::new(vec![
            Field::new("ps_partkey", DataType::Int32),
            Field::new("ps_suppkey", DataType::Int32),
            Field::new("ps_supplycost", DataType::Float64),
            Field::new("ps_availqty", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32(partkey),
            ColumnData::Int32(suppkey),
            ColumnData::Float64(supplycost),
            ColumnData::Int32(availqty),
        ],
    )
    .expect("partsupp schema is consistent")
}

/// Generates orders; also returns each order's index into the calendar so
/// lineitem ship/commit/receipt dates can be offset from it.
fn gen_orders(
    rows: usize,
    c_rows: usize,
    days: &[i32],
    rng: &mut StdRng,
) -> (Table, Vec<usize>) {
    let mut key = Vec::with_capacity(rows);
    let mut custkey = Vec::with_capacity(rows);
    let mut orderdate = Vec::with_capacity(rows);
    let mut orderpriority = Vec::with_capacity(rows);
    let mut shippriority = Vec::with_capacity(rows);
    let mut totalprice = Vec::with_capacity(rows);
    let mut date_idx = Vec::with_capacity(rows);
    let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    // Leave room for ship + receipt offsets (up to 151 days) at the end.
    let max_idx = days.len() - 152;
    for i in 0..rows {
        key.push(i as i32 + 1);
        custkey.push(rng.gen_range(1..=c_rows as i32));
        let di = rng.gen_range(0..max_idx);
        date_idx.push(di);
        orderdate.push(days[di]);
        orderpriority.push(priorities[rng.gen_range(0..priorities.len())].to_owned());
        shippriority.push(0);
        totalprice.push(rng.gen_range(100_000..=50_000_000) as f64 / 100.0);
    }
    let table = Table::new(
        "orders",
        Schema::new(vec![
            Field::new("o_orderkey", DataType::Int32),
            Field::new("o_custkey", DataType::Int32),
            Field::new("o_orderdate", DataType::Int32),
            Field::new("o_orderpriority", DataType::Str),
            Field::new("o_shippriority", DataType::Int32),
            Field::new("o_totalprice", DataType::Float64),
        ]),
        vec![
            ColumnData::Int32(key),
            ColumnData::Int32(custkey),
            ColumnData::Int32(orderdate),
            ColumnData::Str(DictColumn::from_strings(orderpriority)),
            ColumnData::Int32(shippriority),
            ColumnData::Float64(totalprice),
        ],
    )
    .expect("orders schema is consistent");
    (table, date_idx)
}

#[allow(clippy::too_many_arguments)]
fn gen_lineitem(
    rows: usize,
    o_rows: usize,
    p_rows: usize,
    s_rows: usize,
    days: &[i32],
    order_date_idx: &[usize],
    rng: &mut StdRng,
) -> Table {
    let mut orderkey = Vec::with_capacity(rows);
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    let mut commitdate = Vec::with_capacity(rows);
    let mut receiptdate = Vec::with_capacity(rows);
    let mut shipmode = Vec::with_capacity(rows);
    let modes = ["AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "REG AIR", "FOB"];
    for i in 0..rows {
        let o = (i / 4) % o_rows;
        orderkey.push(o as i32 + 1);
        partkey.push(rng.gen_range(1..=p_rows as i32));
        suppkey.push(rng.gen_range(1..=s_rows as i32));
        quantity.push(rng.gen_range(1..=50));
        extendedprice.push(rng.gen_range(90_000..=10_000_000) as f64 / 100.0);
        discount.push(rng.gen_range(0..=10) as f64 / 100.0);
        tax.push(rng.gen_range(0..=8) as f64 / 100.0);
        let base = order_date_idx[o];
        let ship = base + rng.gen_range(1..=121);
        let commit = base + rng.gen_range(30..=90);
        let receipt = ship + rng.gen_range(1..=30);
        shipdate.push(days[ship]);
        commitdate.push(days[commit]);
        receiptdate.push(days[receipt]);
        shipmode.push(modes[rng.gen_range(0..modes.len())].to_owned());
    }
    Table::new(
        "lineitem",
        Schema::new(vec![
            Field::new("l_orderkey", DataType::Int32),
            Field::new("l_partkey", DataType::Int32),
            Field::new("l_suppkey", DataType::Int32),
            Field::new("l_quantity", DataType::Int32),
            Field::new("l_extendedprice", DataType::Float64),
            Field::new("l_discount", DataType::Float64),
            Field::new("l_tax", DataType::Float64),
            Field::new("l_shipdate", DataType::Int32),
            Field::new("l_commitdate", DataType::Int32),
            Field::new("l_receiptdate", DataType::Int32),
            Field::new("l_shipmode", DataType::Str),
        ]),
        vec![
            ColumnData::Int32(orderkey),
            ColumnData::Int32(partkey),
            ColumnData::Int32(suppkey),
            ColumnData::Int32(quantity),
            ColumnData::Float64(extendedprice),
            ColumnData::Float64(discount),
            ColumnData::Float64(tax),
            ColumnData::Int32(shipdate),
            ColumnData::Int32(commitdate),
            ColumnData::Int32(receiptdate),
            ColumnData::Str(DictColumn::from_strings(shipmode)),
        ],
    )
    .expect("lineitem schema is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> Database {
        TpchGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    #[test]
    fn all_tables_present() {
        let db = tiny_db();
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
            "lineitem",
        ] {
            assert!(db.table(t).is_some(), "missing table {t}");
        }
        assert_eq!(db.table("lineitem").unwrap().num_rows(), 2_000);
        assert_eq!(db.table("region").unwrap().num_rows(), 5);
        assert_eq!(db.table("nation").unwrap().num_rows(), 25);
    }

    #[test]
    fn deterministic() {
        let a = tiny_db();
        let b = tiny_db();
        assert_eq!(
            a.table("lineitem").unwrap().column("l_discount").unwrap(),
            b.table("lineitem").unwrap().column("l_discount").unwrap()
        );
    }

    #[test]
    fn dates_are_ordered_per_row() {
        let db = tiny_db();
        let li = db.table("lineitem").unwrap();
        let ship = match li.column("l_shipdate").unwrap() {
            ColumnData::Int32(v) => v,
            _ => panic!(),
        };
        let receipt = match li.column("l_receiptdate").unwrap() {
            ColumnData::Int32(v) => v,
            _ => panic!(),
        };
        // yyyymmdd encoding preserves chronological order.
        assert!(ship.iter().zip(receipt).all(|(s, r)| s < r));
    }

    #[test]
    fn commit_before_receipt_sometimes_and_not_always() {
        // TPC-H Q4 counts orders with a late lineitem; the generator must
        // produce both outcomes.
        let db = tiny_db();
        let li = db.table("lineitem").unwrap();
        let commit = match li.column("l_commitdate").unwrap() {
            ColumnData::Int32(v) => v,
            _ => panic!(),
        };
        let receipt = match li.column("l_receiptdate").unwrap() {
            ColumnData::Int32(v) => v,
            _ => panic!(),
        };
        let late = commit.iter().zip(receipt).filter(|(c, r)| c < r).count();
        assert!(late > 0 && late < commit.len());
    }

    #[test]
    fn partsupp_covers_every_part() {
        let db = tiny_db();
        let ps = db.table("partsupp").unwrap();
        let n_parts = db.table("part").unwrap().num_rows();
        assert_eq!(ps.num_rows(), n_parts * 4);
        match ps.column("ps_partkey").unwrap() {
            ColumnData::Int32(v) => {
                let distinct: std::collections::HashSet<i32> = v.iter().copied().collect();
                assert_eq!(distinct.len(), n_parts);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn brass_parts_exist_for_q2() {
        let db = tiny_db();
        match db.table("part").unwrap().column("p_type").unwrap() {
            ColumnData::Str(d) => {
                assert!(d.dict().iter().any(|t| t.ends_with("BRASS")));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn q7_nations_exist() {
        let db = tiny_db();
        match db.table("nation").unwrap().column("n_name").unwrap() {
            ColumnData::Str(d) => {
                assert!(d.code_of("FRANCE").is_some());
                assert!(d.code_of("GERMANY").is_some());
            }
            _ => panic!(),
        }
    }
}
