//! Star Schema Benchmark data generator (downscaled, deterministic).
//!
//! Produces the five SSB tables — fact table `lineorder` plus dimensions
//! `customer`, `supplier`, `part`, `date` — with the value distributions the
//! 13 SSB queries select on (O'Neil et al., revision 3). Scale factor `s`
//! yields `s × rows_per_sf` lineorder rows.

use super::{city_name, pick_nation, DAYS_IN_MONTH, MONTH_NAMES, NATIONS, REGIONS};
use crate::column::{ColumnData, DictColumn};
use crate::database::Database;
use crate::table::{Field, Schema, Table};
use crate::types::DataType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable, seeded SSB generator.
#[derive(Debug, Clone)]
pub struct SsbGenerator {
    scale_factor: u32,
    rows_per_sf: usize,
    seed: u64,
}

impl SsbGenerator {
    /// Generator for scale factor `sf` with default downscaling
    /// (60 000 lineorder rows per scale factor, i.e. 100× below spec).
    pub fn new(sf: u32) -> Self {
        SsbGenerator { scale_factor: sf.max(1), rows_per_sf: 60_000, seed: 0x55B }
    }

    /// Override the number of lineorder rows per scale factor.
    pub fn with_rows_per_sf(mut self, rows: usize) -> Self {
        self.rows_per_sf = rows.max(1);
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured scale factor.
    pub fn scale_factor(&self) -> u32 {
        self.scale_factor
    }

    /// Number of lineorder rows this configuration will generate.
    pub fn lineorder_rows(&self) -> usize {
        self.scale_factor as usize * self.rows_per_sf
    }

    /// Generate the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.scale_factor as u64));
        let lo_rows = self.lineorder_rows();
        let cust_rows = (lo_rows / 200).max(50);
        let supp_rows = (lo_rows / 3_000).max(20);
        let part_rows = (lo_rows / 30).max(60);

        let mut db = Database::new();
        let date = gen_date();
        let date_keys: Vec<i32> = match date.column("d_datekey").unwrap() {
            ColumnData::Int32(v) => v.clone(),
            _ => unreachable!("d_datekey is int32"),
        };
        db.add_table(gen_customer(cust_rows, &mut rng)).unwrap();
        db.add_table(gen_supplier(supp_rows, &mut rng)).unwrap();
        db.add_table(gen_part(part_rows, &mut rng)).unwrap();
        db.add_table(date).unwrap();
        db.add_table(gen_lineorder(
            lo_rows, cust_rows, supp_rows, part_rows, &date_keys, &mut rng,
        ))
        .unwrap();
        db
    }
}

fn gen_customer(rows: usize, rng: &mut StdRng) -> Table {
    let mut custkey = Vec::with_capacity(rows);
    let mut name = Vec::with_capacity(rows);
    let mut city = Vec::with_capacity(rows);
    let mut nation = Vec::with_capacity(rows);
    let mut region = Vec::with_capacity(rows);
    let mut mktsegment = Vec::with_capacity(rows);
    let segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
    for i in 0..rows {
        let n = pick_nation(rng);
        custkey.push(i as i32 + 1);
        name.push(format!("Customer#{:09}", i + 1));
        city.push(city_name(NATIONS[n].0, rng.gen_range(0..10)));
        nation.push(NATIONS[n].0.to_owned());
        region.push(REGIONS[NATIONS[n].1].to_owned());
        mktsegment.push(segments[rng.gen_range(0..segments.len())].to_owned());
    }
    Table::new(
        "customer",
        Schema::new(vec![
            Field::new("c_custkey", DataType::Int32),
            Field::new("c_name", DataType::Str),
            Field::new("c_city", DataType::Str),
            Field::new("c_nation", DataType::Str),
            Field::new("c_region", DataType::Str),
            Field::new("c_mktsegment", DataType::Str),
        ]),
        vec![
            ColumnData::Int32(custkey),
            ColumnData::Str(DictColumn::from_strings(name)),
            ColumnData::Str(DictColumn::from_strings(city)),
            ColumnData::Str(DictColumn::from_strings(nation)),
            ColumnData::Str(DictColumn::from_strings(region)),
            ColumnData::Str(DictColumn::from_strings(mktsegment)),
        ],
    )
    .expect("customer schema is consistent")
}

fn gen_supplier(rows: usize, rng: &mut StdRng) -> Table {
    let mut suppkey = Vec::with_capacity(rows);
    let mut name = Vec::with_capacity(rows);
    let mut city = Vec::with_capacity(rows);
    let mut nation = Vec::with_capacity(rows);
    let mut region = Vec::with_capacity(rows);
    for i in 0..rows {
        let n = pick_nation(rng);
        suppkey.push(i as i32 + 1);
        name.push(format!("Supplier#{:09}", i + 1));
        city.push(city_name(NATIONS[n].0, rng.gen_range(0..10)));
        nation.push(NATIONS[n].0.to_owned());
        region.push(REGIONS[NATIONS[n].1].to_owned());
    }
    Table::new(
        "supplier",
        Schema::new(vec![
            Field::new("s_suppkey", DataType::Int32),
            Field::new("s_name", DataType::Str),
            Field::new("s_city", DataType::Str),
            Field::new("s_nation", DataType::Str),
            Field::new("s_region", DataType::Str),
        ]),
        vec![
            ColumnData::Int32(suppkey),
            ColumnData::Str(DictColumn::from_strings(name)),
            ColumnData::Str(DictColumn::from_strings(city)),
            ColumnData::Str(DictColumn::from_strings(nation)),
            ColumnData::Str(DictColumn::from_strings(region)),
        ],
    )
    .expect("supplier schema is consistent")
}

fn gen_part(rows: usize, rng: &mut StdRng) -> Table {
    let mut partkey = Vec::with_capacity(rows);
    let mut mfgr = Vec::with_capacity(rows);
    let mut category = Vec::with_capacity(rows);
    let mut brand1 = Vec::with_capacity(rows);
    let mut color = Vec::with_capacity(rows);
    let mut size = Vec::with_capacity(rows);
    let colors = ["red", "green", "blue", "ivory", "peach", "plum", "sienna", "linen"];
    for i in 0..rows {
        let m = rng.gen_range(1..=5u32);
        let c = rng.gen_range(1..=5u32);
        let b = rng.gen_range(1..=40u32);
        partkey.push(i as i32 + 1);
        mfgr.push(format!("MFGR#{m}"));
        category.push(format!("MFGR#{m}{c}"));
        brand1.push(format!("MFGR#{m}{c}{b}"));
        color.push(colors[rng.gen_range(0..colors.len())].to_owned());
        size.push(rng.gen_range(1..=50));
    }
    Table::new(
        "part",
        Schema::new(vec![
            Field::new("p_partkey", DataType::Int32),
            Field::new("p_mfgr", DataType::Str),
            Field::new("p_category", DataType::Str),
            Field::new("p_brand1", DataType::Str),
            Field::new("p_color", DataType::Str),
            Field::new("p_size", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32(partkey),
            ColumnData::Str(DictColumn::from_strings(mfgr)),
            ColumnData::Str(DictColumn::from_strings(category)),
            ColumnData::Str(DictColumn::from_strings(brand1)),
            ColumnData::Str(DictColumn::from_strings(color)),
            ColumnData::Int32(size),
        ],
    )
    .expect("part schema is consistent")
}

/// The fixed 7-year date dimension, 1992-01-01 … 1998-12-31 (non-leap).
fn gen_date() -> Table {
    let mut datekey = Vec::new();
    let mut year = Vec::new();
    let mut yearmonthnum = Vec::new();
    let mut yearmonth = Vec::new();
    let mut month = Vec::new();
    let mut weeknuminyear = Vec::new();
    let mut daynuminweek = Vec::new();
    for y in 1992..=1998i32 {
        let mut day_of_year = 0u32;
        for (m, &days) in DAYS_IN_MONTH.iter().enumerate() {
            for d in 1..=days {
                day_of_year += 1;
                datekey.push(y * 10_000 + (m as i32 + 1) * 100 + d as i32);
                year.push(y);
                yearmonthnum.push(y * 100 + m as i32 + 1);
                yearmonth.push(format!("{}{}", MONTH_NAMES[m], y));
                month.push(MONTH_NAMES[m].to_owned());
                weeknuminyear.push(((day_of_year - 1) / 7 + 1) as i32);
                daynuminweek.push(((day_of_year - 1) % 7 + 1) as i32);
            }
        }
    }
    Table::new(
        "date",
        Schema::new(vec![
            Field::new("d_datekey", DataType::Int32),
            Field::new("d_year", DataType::Int32),
            Field::new("d_yearmonthnum", DataType::Int32),
            Field::new("d_yearmonth", DataType::Str),
            Field::new("d_month", DataType::Str),
            Field::new("d_weeknuminyear", DataType::Int32),
            Field::new("d_daynuminweek", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32(datekey),
            ColumnData::Int32(year),
            ColumnData::Int32(yearmonthnum),
            ColumnData::Str(DictColumn::from_strings(yearmonth)),
            ColumnData::Str(DictColumn::from_strings(month)),
            ColumnData::Int32(weeknuminyear),
            ColumnData::Int32(daynuminweek),
        ],
    )
    .expect("date schema is consistent")
}

fn gen_lineorder(
    rows: usize,
    cust_rows: usize,
    supp_rows: usize,
    part_rows: usize,
    date_keys: &[i32],
    rng: &mut StdRng,
) -> Table {
    let mut orderkey = Vec::with_capacity(rows);
    let mut custkey = Vec::with_capacity(rows);
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut orderdate = Vec::with_capacity(rows);
    let mut shippriority = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut ordtotalprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut revenue = Vec::with_capacity(rows);
    let mut supplycost = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    for i in 0..rows {
        // Roughly 4 line items per order, like the spec.
        orderkey.push((i / 4) as i32 + 1);
        custkey.push(rng.gen_range(1..=cust_rows as i32));
        partkey.push(rng.gen_range(1..=part_rows as i32));
        suppkey.push(rng.gen_range(1..=supp_rows as i32));
        orderdate.push(date_keys[rng.gen_range(0..date_keys.len())]);
        shippriority.push(0);
        let q = rng.gen_range(1..=50);
        quantity.push(q);
        let price = rng.gen_range(90_000..=10_000_000) as f64 / 100.0;
        extendedprice.push(price);
        ordtotalprice.push(price * rng.gen_range(2..=7) as f64);
        let disc = rng.gen_range(0..=10);
        discount.push(disc);
        revenue.push(price * (100 - disc) as f64 / 100.0);
        supplycost.push(price * 0.6);
        tax.push(rng.gen_range(0..=8));
    }
    Table::new(
        "lineorder",
        Schema::new(vec![
            Field::new("lo_orderkey", DataType::Int32),
            Field::new("lo_custkey", DataType::Int32),
            Field::new("lo_partkey", DataType::Int32),
            Field::new("lo_suppkey", DataType::Int32),
            Field::new("lo_orderdate", DataType::Int32),
            Field::new("lo_shippriority", DataType::Int32),
            Field::new("lo_quantity", DataType::Int32),
            Field::new("lo_extendedprice", DataType::Float64),
            Field::new("lo_ordtotalprice", DataType::Float64),
            Field::new("lo_discount", DataType::Int32),
            Field::new("lo_revenue", DataType::Float64),
            Field::new("lo_supplycost", DataType::Float64),
            Field::new("lo_tax", DataType::Int32),
        ]),
        vec![
            ColumnData::Int32(orderkey),
            ColumnData::Int32(custkey),
            ColumnData::Int32(partkey),
            ColumnData::Int32(suppkey),
            ColumnData::Int32(orderdate),
            ColumnData::Int32(shippriority),
            ColumnData::Int32(quantity),
            ColumnData::Float64(extendedprice),
            ColumnData::Float64(ordtotalprice),
            ColumnData::Int32(discount),
            ColumnData::Float64(revenue),
            ColumnData::Float64(supplycost),
            ColumnData::Int32(tax),
        ],
    )
    .expect("lineorder schema is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    #[test]
    fn all_tables_present() {
        let db = tiny_db();
        for t in ["lineorder", "customer", "supplier", "part", "date"] {
            assert!(db.table(t).is_some(), "missing table {t}");
        }
        assert_eq!(db.table("lineorder").unwrap().num_rows(), 2_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_db();
        let b = tiny_db();
        let la = a.table("lineorder").unwrap();
        let lb = b.table("lineorder").unwrap();
        assert_eq!(la.column("lo_revenue").unwrap(), lb.column("lo_revenue").unwrap());
        assert_eq!(la.column("lo_custkey").unwrap(), lb.column("lo_custkey").unwrap());
    }

    #[test]
    fn seeds_change_data() {
        let a = SsbGenerator::new(1).with_rows_per_sf(500).generate();
        let b = SsbGenerator::new(1).with_rows_per_sf(500).with_seed(99).generate();
        assert_ne!(
            a.table("lineorder").unwrap().column("lo_custkey").unwrap(),
            b.table("lineorder").unwrap().column("lo_custkey").unwrap()
        );
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let db = tiny_db();
        let lo = db.table("lineorder").unwrap();
        let n_cust = db.table("customer").unwrap().num_rows() as i32;
        let n_supp = db.table("supplier").unwrap().num_rows() as i32;
        let n_part = db.table("part").unwrap().num_rows() as i32;
        let check = |col: &str, max: i32| match lo.column(col).unwrap() {
            ColumnData::Int32(v) => assert!(v.iter().all(|&k| k >= 1 && k <= max)),
            _ => panic!("fk must be int32"),
        };
        check("lo_custkey", n_cust);
        check("lo_suppkey", n_supp);
        check("lo_partkey", n_part);
    }

    #[test]
    fn orderdates_exist_in_date_dim() {
        let db = tiny_db();
        let dates: std::collections::HashSet<i32> =
            match db.table("date").unwrap().column("d_datekey").unwrap() {
                ColumnData::Int32(v) => v.iter().copied().collect(),
                _ => panic!(),
            };
        match db.table("lineorder").unwrap().column("lo_orderdate").unwrap() {
            ColumnData::Int32(v) => assert!(v.iter().all(|d| dates.contains(d))),
            _ => panic!(),
        }
    }

    #[test]
    fn date_dimension_has_seven_years() {
        let db = tiny_db();
        let d = db.table("date").unwrap();
        assert_eq!(d.num_rows(), 7 * 365);
        match d.column("d_year").unwrap() {
            ColumnData::Int32(v) => {
                assert_eq!(*v.iter().min().unwrap(), 1992);
                assert_eq!(*v.iter().max().unwrap(), 1998);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn query_constants_exist() {
        // The 13 SSB queries filter on these values; the generator must
        // produce them at every scale.
        let db = tiny_db();
        let part = db.table("part").unwrap();
        match part.column("p_mfgr").unwrap() {
            ColumnData::Str(d) => assert!(d.code_of("MFGR#1").is_some()),
            _ => panic!(),
        }
        let cust = db.table("customer").unwrap();
        match cust.column("c_region").unwrap() {
            ColumnData::Str(d) => {
                for r in REGIONS {
                    assert!(d.code_of(r).is_some(), "region {r} missing");
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn scale_factor_scales_linearly() {
        let a = SsbGenerator::new(2).with_rows_per_sf(100).generate();
        assert_eq!(a.table("lineorder").unwrap().num_rows(), 200);
    }
}
