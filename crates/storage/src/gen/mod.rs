//! Deterministic benchmark data generators.
//!
//! Both generators are linearly *downscaled* versions of the official
//! specifications: scale factor `s` produces `s × rows_per_sf` fact rows
//! (instead of `s × 6 000 000`), with all table-size ratios preserved. The
//! harness downscales the simulated device parameters by the same factor,
//! so every working-set-vs-cache and footprint-vs-heap ratio the paper's
//! effects depend on is preserved (see DESIGN.md §1).
//!
//! All generation is seeded ([`rand::rngs::StdRng`]); the same generator
//! configuration always produces byte-identical databases.

pub mod ssb;
pub mod tpch;

use rand::rngs::StdRng;
use rand::Rng;

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];

/// SSB-style city name: the nation name truncated/padded to 9 characters
/// plus a digit 0–9, e.g. `UNITED KI4` for UNITED KINGDOM.
pub fn city_name(nation: &str, digit: u32) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{digit}")
}

/// Pick a random nation index.
pub(crate) fn pick_nation(rng: &mut StdRng) -> usize {
    rng.gen_range(0..NATIONS.len())
}

/// Days per month in the non-leap calendar used by the date dimension.
pub(crate) const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Short month names used by `d_yearmonth` (`Dec1997`).
pub(crate) const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_names_match_ssb_shape() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("PERU", 3), "PERU     3");
        assert_eq!(city_name("UNITED STATES", 0), "UNITED ST0");
    }

    #[test]
    fn nations_cover_all_regions() {
        for r in 0..REGIONS.len() {
            assert!(NATIONS.iter().any(|&(_, reg)| reg == r));
        }
    }

    #[test]
    fn calendar_is_non_leap() {
        assert_eq!(DAYS_IN_MONTH.iter().sum::<u32>(), 365);
    }
}
