//! Per-column access statistics.
//!
//! The query processor bumps a counter every time an operator reads a base
//! column (Section 3.2 of the paper: "Each column in the database has an
//! access counter, which is incremented each time an operator accesses a
//! column"). The data placement manager reads these counters to decide
//! which columns to pin on the co-processor (LFU), and the recency ticks
//! support the LRU variant compared in Appendix E.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free access counters and recency ticks, one slot per base column.
#[derive(Debug)]
pub struct AccessStats {
    counts: Vec<AtomicU64>,
    last_access: Vec<AtomicU64>,
    clock: AtomicU64,
}

impl AccessStats {
    /// Statistics for `n` columns, all counters zeroed.
    pub fn new(n: usize) -> Self {
        AccessStats {
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            last_access: (0..n).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
        }
    }

    /// Number of tracked columns.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no columns are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Record one access to column `idx`, advancing the logical clock.
    pub fn record_access(&self, idx: usize) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.last_access[idx].store(tick, Ordering::Relaxed);
    }

    /// Total accesses to column `idx`.
    pub fn access_count(&self, idx: usize) -> u64 {
        self.counts[idx].load(Ordering::Relaxed)
    }

    /// Logical tick of the most recent access to column `idx` (0 = never).
    pub fn last_access_tick(&self, idx: usize) -> u64 {
        self.last_access[idx].load(Ordering::Relaxed)
    }

    /// Current value of the logical clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Reset all counters and ticks (used between workload phases).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for t in &self.last_access {
            t.store(0, Ordering::Relaxed);
        }
        self.clock.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(column index, access count)` pairs.
    pub fn counts_snapshot(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let s = AccessStats::new(3);
        s.record_access(1);
        s.record_access(1);
        s.record_access(2);
        assert_eq!(s.access_count(0), 0);
        assert_eq!(s.access_count(1), 2);
        assert_eq!(s.access_count(2), 1);
        assert_eq!(s.clock(), 3);
    }

    #[test]
    fn recency_ordering() {
        let s = AccessStats::new(2);
        s.record_access(0);
        s.record_access(1);
        assert!(s.last_access_tick(1) > s.last_access_tick(0));
        s.record_access(0);
        assert!(s.last_access_tick(0) > s.last_access_tick(1));
    }

    #[test]
    fn reset_clears_everything() {
        let s = AccessStats::new(2);
        s.record_access(0);
        s.reset();
        assert_eq!(s.access_count(0), 0);
        assert_eq!(s.last_access_tick(0), 0);
        assert_eq!(s.clock(), 0);
    }

    #[test]
    fn snapshot_shape() {
        let s = AccessStats::new(2);
        s.record_access(1);
        let snap = s.counts_snapshot();
        assert_eq!(snap, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn concurrent_updates_are_counted() {
        use std::sync::Arc;
        let s = Arc::new(AccessStats::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_access(0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.access_count(0), 4000);
        assert_eq!(s.clock(), 4000);
    }
}
