#![warn(missing_docs)]

//! Columnar in-memory storage layer for the `robustq` engine.
//!
//! This crate rebuilds the storage substrate of a CoGaDB-style column store:
//!
//! * typed, fully materialized columns ([`column::ColumnData`]) with
//!   dictionary encoding for strings,
//! * tables and schemas ([`table::Table`]),
//! * a database catalog with stable column identifiers ([`database::Database`]),
//! * per-column access statistics feeding the data placement manager
//!   ([`stats::AccessStats`]),
//! * deterministic data generators for the Star Schema Benchmark and TPC-H
//!   ([`gen`]).
//!
//! Everything is deliberately simple and allocation-transparent: the
//! co-processor simulator charges virtual time and device memory from the
//! byte sizes reported by [`column::ColumnData::byte_size`], so the storage
//! layer is the single source of truth for all footprint math.
//!
//! # Example
//!
//! ```
//! use robustq_storage::gen::ssb::SsbGenerator;
//!
//! let db = SsbGenerator::new(1).with_rows_per_sf(1_000).generate();
//! let lineorder = db.table("lineorder").unwrap();
//! assert_eq!(lineorder.num_rows(), 1_000);
//! assert!(lineorder.column("lo_discount").is_some());
//! ```

pub mod column;
pub mod compress;
pub mod database;
pub mod error;
pub mod gen;
pub mod stats;
pub mod table;
pub mod types;

pub use column::{ColumnData, DictColumn};
pub use compress::{compressed_size, CompressedColumn, ValueKind};
pub use database::{
    AppendRecord, ColumnId, CompressionReport, Database, DbEpoch, Snapshot,
    TableCompression,
};
pub use error::StorageError;
pub use stats::AccessStats;
pub use table::{ColStats, Field, Schema, SegmentMeta, Table, DEFAULT_SEAL_ROWS};
pub use types::{DataType, Value};
