//! Scalar types and values.

use std::cmp::Ordering;
use std::fmt;

/// The logical type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (keys, dates encoded as `yyyymmdd`, small ints).
    Int32,
    /// 64-bit signed integer (large keys, counts).
    Int64,
    /// 64-bit IEEE float (prices, aggregates).
    Float64,
    /// Dictionary-encoded UTF-8 string.
    Str,
}

impl DataType {
    /// Width in bytes of a single encoded value of this type.
    ///
    /// Dictionary-encoded strings store a `u32` code per row; the dictionary
    /// itself is shared and small, so footprint math uses the code width.
    pub fn byte_width(self) -> usize {
        match self {
            DataType::Int32 => 4,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Str => 4,
        }
    }

    /// True if values of this type are totally ordered numbers.
    pub fn is_numeric(self) -> bool {
        !matches!(self, DataType::Str)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int32 => "INT32",
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Str => "STR",
        };
        f.write_str(s)
    }
}

/// A single scalar value, used for predicates, literals and result rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    Int32(i32),
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit IEEE float.
    Float64(f64),
    /// UTF-8 string.
    Str(String),
    /// Absent value (only produced by outer joins / empty aggregates).
    Null,
}

impl Value {
    /// Logical type of the value; `None` for [`Value::Null`].
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Null => None,
        }
    }

    /// Numeric view of the value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of the value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compare two values of compatible types.
    ///
    /// Numeric types compare through `f64` (exact for the 32-bit and
    /// sub-2^53 integer ranges used by the benchmarks); strings compare
    /// lexicographically. Incompatible types and `Null` return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::Int32.byte_width(), 4);
        assert_eq!(DataType::Int64.byte_width(), 8);
        assert_eq!(DataType::Float64.byte_width(), 8);
        assert_eq!(DataType::Str.byte_width(), 4);
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int32.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn value_type_roundtrip() {
        assert_eq!(Value::from(3i32).data_type(), Some(DataType::Int32));
        assert_eq!(Value::from(3i64).data_type(), Some(DataType::Int64));
        assert_eq!(Value::from(3.0).data_type(), Some(DataType::Float64));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn cross_type_numeric_compare() {
        let a = Value::Int32(4);
        let b = Value::Float64(4.5);
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_value(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_value(&Value::Int64(4)), Some(Ordering::Equal));
    }

    #[test]
    fn string_compare_and_null() {
        let a = Value::from("ASIA");
        let b = Value::from("EUROPE");
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_value(&Value::Null), None);
        assert_eq!(Value::Null.partial_cmp_value(&a), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int32(7).to_string(), "7");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
