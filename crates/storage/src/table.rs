//! Tables and schemas.
//!
//! Tables are append-oriented: rows land in an *open* segment that is
//! sealed once it reaches the seal threshold. Per-segment min/max stats
//! are maintained incrementally while a segment is open and recomputed
//! exactly when it seals, so sealed stats are never stale. A table built
//! via [`Table::new`] starts with a single sealed segment covering all
//! of its initial rows — a never-appended table is indistinguishable
//! from the pre-segmentation layout.

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::types::DataType;
use std::ops::Range;

/// Default open-segment size (rows) after which [`Table::append_batch`]
/// seals the segment.
pub const DEFAULT_SEAL_ROWS: usize = 1 << 16;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// A field with the given name and type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// A schema over the given fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }
}

/// Per-column min/max over one segment, in the numeric `get_f64` view
/// (strings contribute their dictionary codes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColStats {
    /// Smallest value in the segment.
    pub min: f64,
    /// Largest value in the segment.
    pub max: f64,
}

/// Metadata for one row-range segment of a table.
///
/// Segments are pure metadata over the consolidated column vectors: the
/// physical layout stays one dense vector per column, so scans and
/// chunk construction are unchanged. This mirrors row groups in
/// column stores — the segment carries the row range, seal state, the
/// epoch of the last append that touched it, and per-column stats.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    start: usize,
    end: usize,
    sealed: bool,
    epoch: u64,
    stats: Vec<Option<ColStats>>,
}

impl SegmentMeta {
    /// The row range this segment covers.
    pub fn rows(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of rows in the segment.
    pub fn num_rows(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is sealed (immutable; stats are exact).
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Epoch of the last append that touched this segment (0 for rows
    /// present at table construction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Min/max stats for column `i`, if the segment is non-empty.
    pub fn stats(&self, i: usize) -> Option<ColStats> {
        self.stats.get(i).copied().flatten()
    }

    /// True if the segment's row range intersects `[lo, hi)`.
    pub fn overlaps(&self, lo: usize, hi: usize) -> bool {
        self.start < hi && lo < self.end
    }
}

/// A fully materialized table: a schema plus one column per field.
///
/// Invariant: all columns have the same number of rows and each column's
/// type matches its schema field. Segment metadata partitions the row
/// space: segments are contiguous, non-overlapping, and cover exactly
/// `[0, num_rows)`; at most the last segment is open.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    segments: Vec<SegmentMeta>,
}

impl Table {
    /// Build a table, validating the schema/column invariants.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        if schema.len() != columns.len() {
            return Err(StorageError::SchemaMismatch {
                table: name,
                detail: format!(
                    "{} fields but {} columns",
                    schema.len(),
                    columns.len()
                ),
            });
        }
        let mut rows: Option<usize> = None;
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.data_type != c.data_type() {
                return Err(StorageError::SchemaMismatch {
                    table: name,
                    detail: format!(
                        "field {} declared {} but column is {}",
                        f.name,
                        f.data_type,
                        c.data_type()
                    ),
                });
            }
            match rows {
                None => rows = Some(c.len()),
                Some(r) if r != c.len() => {
                    return Err(StorageError::SchemaMismatch {
                        table: name,
                        detail: format!(
                            "column {} has {} rows, expected {}",
                            f.name,
                            c.len(),
                            r
                        ),
                    });
                }
                _ => {}
            }
        }
        let rows = rows.unwrap_or(0);
        let mut segments = Vec::new();
        if rows > 0 {
            segments.push(SegmentMeta {
                start: 0,
                end: rows,
                sealed: true,
                epoch: 0,
                stats: compute_stats(&columns, 0, rows),
            });
        }
        Ok(Table { name, schema, columns, segments })
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column data, in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Column by positional index.
    pub fn column_at(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Total payload bytes across all columns.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// The segment metadata, in row order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Segments whose row range intersects `[lo, hi)` — the pruning
    /// primitive window-scoped scans use.
    pub fn segments_overlapping(
        &self,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = &SegmentMeta> {
        self.segments.iter().filter(move |s| s.overlaps(lo, hi))
    }

    /// Append a batch of rows (one column per field, same shape rules as
    /// [`Table::new`]). Rows land in the open segment — created if the
    /// last segment is sealed — whose stats are updated incrementally;
    /// once the open segment reaches `seal_rows` rows it is sealed and
    /// its stats recomputed exactly from the stored rows. `epoch` is the
    /// database epoch this append commits under. Returns the number of
    /// rows appended.
    pub fn append_batch(
        &mut self,
        columns: Vec<ColumnData>,
        epoch: u64,
        seal_rows: usize,
    ) -> Result<usize, StorageError> {
        if self.schema.len() != columns.len() {
            return Err(StorageError::SchemaMismatch {
                table: self.name.clone(),
                detail: format!(
                    "append batch has {} columns, schema has {}",
                    columns.len(),
                    self.schema.len()
                ),
            });
        }
        let mut rows: Option<usize> = None;
        for (f, c) in self.schema.fields().iter().zip(&columns) {
            if f.data_type != c.data_type() {
                return Err(StorageError::SchemaMismatch {
                    table: self.name.clone(),
                    detail: format!(
                        "append field {} declared {} but column is {}",
                        f.name,
                        f.data_type,
                        c.data_type()
                    ),
                });
            }
            match rows {
                None => rows = Some(c.len()),
                Some(r) if r != c.len() => {
                    return Err(StorageError::SchemaMismatch {
                        table: self.name.clone(),
                        detail: format!(
                            "append column {} has {} rows, expected {}",
                            f.name,
                            c.len(),
                            r
                        ),
                    });
                }
                _ => {}
            }
        }
        let batch_rows = rows.unwrap_or(0);
        if batch_rows == 0 {
            return Ok(0);
        }
        let old_rows = self.num_rows();
        for (base, batch) in self.columns.iter_mut().zip(&columns) {
            base.append(batch);
        }
        let new_rows = old_rows + batch_rows;
        // Stats for the appended rows, read back from the consolidated
        // columns so string codes reflect the (possibly grown) base dict.
        let batch_stats = compute_stats(&self.columns, old_rows, new_rows);
        match self.segments.last_mut() {
            Some(open) if !open.sealed => {
                open.end = new_rows;
                open.epoch = epoch;
                for (s, b) in open.stats.iter_mut().zip(&batch_stats) {
                    *s = merge_stats(*s, *b);
                }
            }
            _ => self.segments.push(SegmentMeta {
                start: old_rows,
                end: new_rows,
                sealed: false,
                epoch,
                stats: batch_stats,
            }),
        }
        let open = self.segments.last().expect("open segment exists");
        if open.num_rows() >= seal_rows {
            self.seal_open();
        }
        Ok(batch_rows)
    }

    /// Seal the open segment, if any, recomputing its stats exactly.
    pub fn seal_open(&mut self) {
        if let Some(open) = self.segments.last_mut() {
            if !open.sealed {
                open.stats = compute_stats(&self.columns, open.start, open.end);
                open.sealed = true;
            }
        }
    }

    /// Recompute the stats of segment `i` from the stored rows — the
    /// from-scratch reference the property tests compare incremental
    /// maintenance against.
    pub fn recompute_segment_stats(&self, i: usize) -> Vec<Option<ColStats>> {
        let s = &self.segments[i];
        compute_stats(&self.columns, s.start, s.end)
    }

    /// Rows `lo..hi` of column `i` as a new column (string slices share
    /// the base dictionary).
    pub fn column_slice(&self, i: usize, lo: usize, hi: usize) -> ColumnData {
        self.columns[i].slice(lo, hi)
    }
}

/// Per-column min/max over rows `[lo, hi)` of `columns`.
fn compute_stats(
    columns: &[ColumnData],
    lo: usize,
    hi: usize,
) -> Vec<Option<ColStats>> {
    columns
        .iter()
        .map(|c| {
            if hi <= lo {
                return None;
            }
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for i in lo..hi {
                let v = c.get_f64(i);
                min = min.min(v);
                max = max.max(v);
            }
            Some(ColStats { min, max })
        })
        .collect()
}

fn merge_stats(a: Option<ColStats>, b: Option<ColStats>) -> Option<ColStats> {
    match (a, b) {
        (Some(a), Some(b)) => {
            Some(ColStats { min: a.min.min(b.min), max: a.max.max(b.max) })
        }
        (s, None) | (None, s) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int32),
            Field::new("v", DataType::Float64),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int32(vec![1, 2, 3]),
                ColumnData::Float64(vec![0.1, 0.2, 0.3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let t = two_col_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.schema().index_of("v"), Some(1));
        assert!(t.column("k").is_some());
        assert!(t.column("missing").is_none());
        assert_eq!(t.byte_size(), 3 * 4 + 3 * 8);
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Int32),
        ]);
        let err = Table::new(
            "bad",
            schema,
            vec![ColumnData::Int32(vec![1]), ColumnData::Int32(vec![1, 2])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_type_mismatch() {
        let schema = Schema::new(vec![Field::new("a", DataType::Float64)]);
        let err =
            Table::new("bad", schema, vec![ColumnData::Int32(vec![1])]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_column_count_mismatch() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int32)]);
        let err = Table::new("bad", schema, vec![]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int32)]);
        let t = Table::new("e", schema, vec![ColumnData::Int32(vec![])]).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.byte_size(), 0);
        assert!(t.segments().is_empty());
    }

    #[test]
    fn new_table_is_one_sealed_epoch0_segment() {
        let t = two_col_table();
        assert_eq!(t.segments().len(), 1);
        let s = &t.segments()[0];
        assert_eq!(s.rows(), 0..3);
        assert!(s.is_sealed());
        assert_eq!(s.epoch(), 0);
        let k = s.stats(0).unwrap();
        assert_eq!((k.min, k.max), (1.0, 3.0));
        let v = s.stats(1).unwrap();
        assert_eq!((v.min, v.max), (0.1, 0.3));
    }

    #[test]
    fn append_opens_then_seals_segments() {
        let mut t = two_col_table();
        t.append_batch(
            vec![
                ColumnData::Int32(vec![10, -4]),
                ColumnData::Float64(vec![9.0, 0.01]),
            ],
            1,
            4,
        )
        .unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.segments().len(), 2);
        let open = &t.segments()[1];
        assert_eq!(open.rows(), 3..5);
        assert!(!open.is_sealed());
        assert_eq!(open.epoch(), 1);
        let k = open.stats(0).unwrap();
        assert_eq!((k.min, k.max), (-4.0, 10.0));
        // Second append crosses the 4-row seal threshold.
        t.append_batch(
            vec![
                ColumnData::Int32(vec![7, 7]),
                ColumnData::Float64(vec![1.0, 2.0]),
            ],
            2,
            4,
        )
        .unwrap();
        assert_eq!(t.segments().len(), 2);
        let sealed = &t.segments()[1];
        assert!(sealed.is_sealed());
        assert_eq!(sealed.rows(), 3..7);
        assert_eq!(sealed.epoch(), 2);
        assert_eq!(sealed.stats.clone(), t.recompute_segment_stats(1));
        // Next append opens a fresh segment.
        t.append_batch(
            vec![ColumnData::Int32(vec![0]), ColumnData::Float64(vec![0.0])],
            3,
            4,
        )
        .unwrap();
        assert_eq!(t.segments().len(), 3);
        assert!(!t.segments()[2].is_sealed());
    }

    #[test]
    fn append_rejects_shape_mismatches() {
        let mut t = two_col_table();
        assert!(t
            .append_batch(vec![ColumnData::Int32(vec![1])], 1, 16)
            .is_err());
        assert!(t
            .append_batch(
                vec![
                    ColumnData::Int32(vec![1]),
                    ColumnData::Int32(vec![2]), // wrong type
                ],
                1,
                16
            )
            .is_err());
        assert!(t
            .append_batch(
                vec![
                    ColumnData::Int32(vec![1]),
                    ColumnData::Float64(vec![1.0, 2.0]), // wrong rows
                ],
                1,
                16
            )
            .is_err());
        // Failed appends leave the table untouched.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.segments().len(), 1);
    }

    #[test]
    fn string_appends_remap_into_base_dictionary() {
        use crate::column::DictColumn;
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let base = DictColumn::from_strings(["ASIA", "EUROPE"]);
        let mut t =
            Table::new("t", schema, vec![ColumnData::Str(base)]).unwrap();
        let prefix_codes = match t.column_at(0) {
            ColumnData::Str(d) => d.codes().to_vec(),
            _ => unreachable!(),
        };
        let batch = DictColumn::from_strings(["EUROPE", "MARS", "ASIA"]);
        t.append_batch(vec![ColumnData::Str(batch)], 1, 1 << 20).unwrap();
        let d = match t.column_at(0) {
            ColumnData::Str(d) => d,
            _ => unreachable!(),
        };
        // Prefix codes are byte-identical; new rows reuse existing codes
        // and extend the dict only for unseen strings.
        assert_eq!(&d.codes()[..2], &prefix_codes[..]);
        assert_eq!(d.get(2), "EUROPE");
        assert_eq!(d.get(3), "MARS");
        assert_eq!(d.get(4), "ASIA");
        assert_eq!(d.dict().len(), 3);
        assert_eq!(d.codes()[2], prefix_codes[1]);
        assert_eq!(d.codes()[4], prefix_codes[0]);
    }

    #[test]
    fn segment_pruning_by_row_range() {
        let mut t = two_col_table();
        t.append_batch(
            vec![
                ColumnData::Int32(vec![1, 2, 3]),
                ColumnData::Float64(vec![1.0, 2.0, 3.0]),
            ],
            1,
            3,
        )
        .unwrap();
        assert_eq!(t.segments().len(), 2);
        let hit: Vec<_> =
            t.segments_overlapping(4, 6).map(|s| s.rows()).collect();
        assert_eq!(hit, vec![3..6]);
        let all: Vec<_> =
            t.segments_overlapping(0, 6).map(|s| s.rows()).collect();
        assert_eq!(all, vec![0..3, 3..6]);
        assert!(t.segments_overlapping(6, 9).next().is_none());
    }
}
