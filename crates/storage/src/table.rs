//! Tables and schemas.

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::types::DataType;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// A field with the given name and type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// A schema over the given fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }
}

/// A fully materialized table: a schema plus one column per field.
///
/// Invariant: all columns have the same number of rows and each column's
/// type matches its schema field.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
}

impl Table {
    /// Build a table, validating the schema/column invariants.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        if schema.len() != columns.len() {
            return Err(StorageError::SchemaMismatch {
                table: name,
                detail: format!(
                    "{} fields but {} columns",
                    schema.len(),
                    columns.len()
                ),
            });
        }
        let mut rows: Option<usize> = None;
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.data_type != c.data_type() {
                return Err(StorageError::SchemaMismatch {
                    table: name,
                    detail: format!(
                        "field {} declared {} but column is {}",
                        f.name,
                        f.data_type,
                        c.data_type()
                    ),
                });
            }
            match rows {
                None => rows = Some(c.len()),
                Some(r) if r != c.len() => {
                    return Err(StorageError::SchemaMismatch {
                        table: name,
                        detail: format!(
                            "column {} has {} rows, expected {}",
                            f.name,
                            c.len(),
                            r
                        ),
                    });
                }
                _ => {}
            }
        }
        Ok(Table { name, schema, columns })
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column data, in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Column by positional index.
    pub fn column_at(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Total payload bytes across all columns.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int32),
            Field::new("v", DataType::Float64),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int32(vec![1, 2, 3]),
                ColumnData::Float64(vec![0.1, 0.2, 0.3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let t = two_col_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.schema().index_of("v"), Some(1));
        assert!(t.column("k").is_some());
        assert!(t.column("missing").is_none());
        assert_eq!(t.byte_size(), 3 * 4 + 3 * 8);
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Int32),
        ]);
        let err = Table::new(
            "bad",
            schema,
            vec![ColumnData::Int32(vec![1]), ColumnData::Int32(vec![1, 2])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_type_mismatch() {
        let schema = Schema::new(vec![Field::new("a", DataType::Float64)]);
        let err =
            Table::new("bad", schema, vec![ColumnData::Int32(vec![1])]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_column_count_mismatch() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int32)]);
        let err = Table::new("bad", schema, vec![]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int32)]);
        let t = Table::new("e", schema, vec![ColumnData::Int32(vec![])]).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.byte_size(), 0);
    }
}
