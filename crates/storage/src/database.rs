//! Database catalog with stable column identifiers.
//!
//! Every base column of every table gets a dense [`ColumnId`] when its table
//! is registered. The co-processor cache, the data placement manager and the
//! access statistics are all keyed by `ColumnId`, so lookups on the hot path
//! are index operations rather than string hashing.

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::stats::AccessStats;
use crate::table::Table;
use std::collections::HashMap;

/// Dense identifier of a base column (unique within one [`Database`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// Dense index (for per-column arrays).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An in-memory database: a set of tables plus the column catalog and
/// access statistics.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    table_index: HashMap<String, usize>,
    /// `ColumnId -> (table index, column index)`.
    column_locs: Vec<(usize, usize)>,
    /// `(table name, column name) -> ColumnId`.
    column_ids: HashMap<(String, String), ColumnId>,
    stats: AccessStats,
    /// Optional per-column *effective* sizes, set when transparent
    /// compression is enabled (Section 6.3 of the paper): the cache and
    /// the bus then see compressed bytes instead of raw bytes.
    effective_sizes: Option<Vec<u64>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            tables: Vec::new(),
            table_index: HashMap::new(),
            column_locs: Vec::new(),
            column_ids: HashMap::new(),
            stats: AccessStats::new(0),
            effective_sizes: None,
        }
    }

    /// Register a table, assigning [`ColumnId`]s to each of its columns.
    pub fn add_table(&mut self, table: Table) -> Result<(), StorageError> {
        if self.table_index.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_owned()));
        }
        let t_idx = self.tables.len();
        for (c_idx, field) in table.schema().fields().iter().enumerate() {
            let id = ColumnId(self.column_locs.len() as u32);
            self.column_locs.push((t_idx, c_idx));
            self.column_ids
                .insert((table.name().to_owned(), field.name.clone()), id);
        }
        self.table_index.insert(table.name().to_owned(), t_idx);
        self.tables.push(table);
        self.stats = AccessStats::new(self.column_locs.len());
        Ok(())
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index.get(name).map(|&i| &self.tables[i])
    }

    /// Number of registered base columns.
    pub fn num_columns(&self) -> usize {
        self.column_locs.len()
    }

    /// The identifier of `table.column`, if registered.
    pub fn column_id(&self, table: &str, column: &str) -> Option<ColumnId> {
        self.column_ids.get(&(table.to_owned(), column.to_owned())).copied()
    }

    /// Like [`Database::column_id`] but returns an error naming the column.
    pub fn require_column_id(
        &self,
        table: &str,
        column: &str,
    ) -> Result<ColumnId, StorageError> {
        self.column_id(table, column)
            .ok_or_else(|| StorageError::NotFound(format!("{table}.{column}")))
    }

    /// The column data behind `id`.
    pub fn column_by_id(&self, id: ColumnId) -> &ColumnData {
        let (t, c) = self.column_locs[id.index()];
        self.tables[t].column_at(c)
    }

    /// Effective payload bytes of the column behind `id`: the raw column
    /// size, or its compressed size when
    /// [`Database::apply_compression`] is active. This is the quantity
    /// all cache-footprint and transfer math consumes.
    pub fn column_size(&self, id: ColumnId) -> u64 {
        match &self.effective_sizes {
            Some(sizes) => sizes[id.index()],
            None => self.column_by_id(id).byte_size(),
        }
    }

    /// Raw (uncompressed) payload bytes of the column behind `id`.
    pub fn raw_column_size(&self, id: ColumnId) -> u64 {
        self.column_by_id(id).byte_size()
    }

    /// Enable transparent lightweight compression: every base column's
    /// *effective* size becomes its size under the automatic codec choice
    /// of [`crate::compress`]. Query processing is unchanged — results
    /// come from the raw columns — but the co-processor cache and the
    /// interconnect are charged compressed bytes, which shifts the
    /// cache-thrashing break-down point to larger scale factors
    /// (Section 6.3). Returns the overall compression ratio (raw/effective).
    pub fn apply_compression(&mut self) -> f64 {
        let sizes: Vec<u64> = self
            .all_column_ids()
            .map(|id| crate::compress::compressed_size(self.column_by_id(id)))
            .collect();
        let raw: u64 = self
            .all_column_ids()
            .map(|id| self.column_by_id(id).byte_size())
            .sum();
        let eff: u64 = sizes.iter().sum();
        self.effective_sizes = Some(sizes);
        if eff == 0 {
            1.0
        } else {
            raw as f64 / eff as f64
        }
    }

    /// Per-table compression statistics under the automatic codec choice:
    /// how many columns land on each codec and the compressed/raw byte
    /// ratio. Computed from the raw columns, so it is valid whether or not
    /// [`Database::apply_compression`] is active.
    pub fn compression_report(&self) -> CompressionReport {
        let mut tables = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            let mut entry = TableCompression {
                table: t.name().to_string(),
                raw_columns: 0,
                rle_columns: 0,
                bitpacked_columns: 0,
                raw_bytes: 0,
                compressed_bytes: 0,
            };
            for i in 0..t.num_columns() {
                let col = t.column_at(i);
                let c = crate::compress::CompressedColumn::compress(col);
                match c.codec() {
                    "rle" => entry.rle_columns += 1,
                    "for-bitpack" => entry.bitpacked_columns += 1,
                    _ => entry.raw_columns += 1,
                }
                entry.raw_bytes += col.byte_size();
                entry.compressed_bytes += c.bytes();
            }
            tables.push(entry);
        }
        CompressionReport { tables }
    }

    /// Disable transparent compression (effective sizes revert to raw).
    pub fn clear_compression(&mut self) {
        self.effective_sizes = None;
    }

    /// Whether transparent compression is active.
    pub fn is_compressed(&self) -> bool {
        self.effective_sizes.is_some()
    }

    /// Registration index of the table owning `id` (the data placement
    /// manager groups columns by table so a scan's inputs stay
    /// co-resident on one device).
    pub fn table_of(&self, id: ColumnId) -> usize {
        self.column_locs[id.index()].0
    }

    /// Human-readable `table.column` name of `id`.
    pub fn column_name(&self, id: ColumnId) -> String {
        let (t, c) = self.column_locs[id.index()];
        let table = &self.tables[t];
        format!("{}.{}", table.name(), table.schema().field(c).name)
    }

    /// All registered column ids.
    pub fn all_column_ids(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.column_locs.len() as u32).map(ColumnId)
    }

    /// Access statistics shared by the query processor and the placement
    /// manager.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Total payload bytes over all tables.
    pub fn byte_size(&self) -> u64 {
        self.tables.iter().map(Table::byte_size).sum()
    }
}

/// Compression statistics for one table: codec mix over its columns and
/// the raw vs compressed byte totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCompression {
    /// Table name.
    pub table: String,
    /// Columns where neither codec beat the raw layout.
    pub raw_columns: usize,
    /// Columns stored as run-length runs.
    pub rle_columns: usize,
    /// Columns stored FOR + bit-packed.
    pub bitpacked_columns: usize,
    /// Raw bytes across all columns.
    pub raw_bytes: u64,
    /// Compressed bytes across all columns.
    pub compressed_bytes: u64,
}

impl TableCompression {
    /// Compressed/raw byte ratio (1.0 when the table is empty).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Database-wide compression statistics, one entry per table.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Per-table codec mix and byte totals.
    pub tables: Vec<TableCompression>,
}

impl CompressionReport {
    /// Overall compressed/raw byte ratio across every table.
    pub fn total_ratio(&self) -> f64 {
        let raw: u64 = self.tables.iter().map(|t| t.raw_bytes).sum();
        let eff: u64 = self.tables.iter().map(|t| t.compressed_bytes).sum();
        if raw == 0 {
            1.0
        } else {
            eff as f64 / raw as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use crate::types::DataType;

    fn db_with_tables() -> Database {
        let mut db = Database::new();
        let t1 = Table::new(
            "a",
            Schema::new(vec![
                Field::new("x", DataType::Int32),
                Field::new("y", DataType::Float64),
            ]),
            vec![
                ColumnData::Int32(vec![1, 2]),
                ColumnData::Float64(vec![0.5, 0.25]),
            ],
        )
        .unwrap();
        let t2 = Table::new(
            "b",
            Schema::new(vec![Field::new("z", DataType::Int64)]),
            vec![ColumnData::Int64(vec![9, 8, 7])],
        )
        .unwrap();
        db.add_table(t1).unwrap();
        db.add_table(t2).unwrap();
        db
    }

    #[test]
    fn catalog_assigns_dense_ids() {
        let db = db_with_tables();
        assert_eq!(db.num_columns(), 3);
        let x = db.column_id("a", "x").unwrap();
        let y = db.column_id("a", "y").unwrap();
        let z = db.column_id("b", "z").unwrap();
        assert_eq!(x, ColumnId(0));
        assert_eq!(y, ColumnId(1));
        assert_eq!(z, ColumnId(2));
        assert_eq!(db.column_name(z), "b.z");
        assert_eq!(db.column_size(x), 8);
        assert_eq!(db.column_size(z), 24);
    }

    #[test]
    fn compression_report_tallies_codecs_and_ratio() {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![
                    Field::new("runs", DataType::Int32),
                    Field::new("narrow", DataType::Int32),
                ]),
                vec![
                    // Long runs -> RLE; small range noise -> FOR+bit-pack.
                    ColumnData::Int32(vec![5; 4096]),
                    ColumnData::Int32((0..4096).map(|i| (i * 37) % 16).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let report = db.compression_report();
        assert_eq!(report.tables.len(), 1);
        let t = &report.tables[0];
        assert_eq!(t.table, "t");
        assert_eq!((t.rle_columns, t.bitpacked_columns, t.raw_columns), (1, 1, 0));
        assert_eq!(t.raw_bytes, 2 * 4 * 4096);
        assert!(t.compressed_bytes < t.raw_bytes);
        assert!(t.ratio() < 0.2, "ratio {}", t.ratio());
        assert!((report.total_ratio() - t.ratio()).abs() < 1e-12);
        // The report reads raw columns, so enabling transparent
        // compression must not change it.
        db.apply_compression();
        assert_eq!(db.compression_report().tables, report.tables);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_tables();
        let dup = Table::new(
            "a",
            Schema::new(vec![Field::new("x", DataType::Int32)]),
            vec![ColumnData::Int32(vec![])],
        )
        .unwrap();
        assert!(matches!(
            db.add_table(dup),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn missing_column_lookup() {
        let db = db_with_tables();
        assert!(db.column_id("a", "nope").is_none());
        assert!(db.require_column_id("nope", "x").is_err());
    }

    #[test]
    fn total_byte_size() {
        let db = db_with_tables();
        assert_eq!(db.byte_size(), 8 + 16 + 24);
    }
}
