//! Database catalog with stable column identifiers.
//!
//! Every base column of every table gets a dense [`ColumnId`] when its table
//! is registered. The co-processor cache, the data placement manager and the
//! access statistics are all keyed by `ColumnId`, so lookups on the hot path
//! are index operations rather than string hashing.

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::stats::AccessStats;
use crate::table::{Table, DEFAULT_SEAL_ROWS};
use std::collections::HashMap;

/// Dense identifier of a base column (unique within one [`Database`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// Dense index (for per-column arrays).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Monotone database version: bumped by every non-empty
/// [`Database::append_batch`]. A never-appended database sits at epoch 0,
/// which is why all pre-streaming cache keys and goldens are unchanged.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct DbEpoch(pub u64);

/// One committed append batch, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendRecord {
    /// Registration index of the table appended to.
    pub table: usize,
    /// Rows visible in that table before this append.
    pub base_rows: usize,
    /// Rows this append added.
    pub rows: usize,
    /// Epoch the append committed under.
    pub epoch: u64,
    /// Raw payload bytes the batch added across all columns.
    pub bytes: u64,
}

/// An immutable view of the database as of one epoch: per-table visible
/// row counts. Because appends only ever extend columns (string
/// dictionaries grow by suffix, codes are never rewritten), a reader
/// that bounds every scan by its snapshot's visible rows observes
/// bit-identical data no matter how many appends commit after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    epoch: DbEpoch,
    visible: Vec<usize>,
}

impl Snapshot {
    /// The epoch this snapshot was taken at.
    pub fn epoch(&self) -> DbEpoch {
        self.epoch
    }

    /// Rows of table `t` (registration index) visible in this snapshot.
    pub fn visible_rows(&self, t: usize) -> usize {
        self.visible.get(t).copied().unwrap_or(0)
    }
}

/// An in-memory database: a set of tables plus the column catalog and
/// access statistics.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    table_index: HashMap<String, usize>,
    /// `ColumnId -> (table index, column index)`.
    column_locs: Vec<(usize, usize)>,
    /// Per-table `column name -> ColumnId`, parallel to `tables` — makes
    /// [`Database::column_id`] two hash probes with zero allocations
    /// (it used to build a `(String, String)` key per lookup).
    column_names: Vec<HashMap<String, ColumnId>>,
    /// Rows each table had at registration (before any append).
    base_rows: Vec<usize>,
    /// Current epoch; bumped by every non-empty append.
    epoch: u64,
    /// Per-column epoch of the last append that touched it (0 = never).
    column_epochs: Vec<u64>,
    /// Every committed append, in commit order.
    append_log: Vec<AppendRecord>,
    /// Open-segment seal threshold for appends.
    seal_rows: usize,
    stats: AccessStats,
    /// Optional per-column *effective* sizes, set when transparent
    /// compression is enabled (Section 6.3 of the paper): the cache and
    /// the bus then see compressed bytes instead of raw bytes.
    effective_sizes: Option<Vec<u64>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            tables: Vec::new(),
            table_index: HashMap::new(),
            column_locs: Vec::new(),
            column_names: Vec::new(),
            base_rows: Vec::new(),
            epoch: 0,
            column_epochs: Vec::new(),
            append_log: Vec::new(),
            seal_rows: DEFAULT_SEAL_ROWS,
            stats: AccessStats::new(0),
            effective_sizes: None,
        }
    }

    /// Register a table, assigning [`ColumnId`]s to each of its columns.
    pub fn add_table(&mut self, table: Table) -> Result<(), StorageError> {
        if self.table_index.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_owned()));
        }
        let t_idx = self.tables.len();
        let mut names = HashMap::with_capacity(table.schema().len());
        for (c_idx, field) in table.schema().fields().iter().enumerate() {
            let id = ColumnId(self.column_locs.len() as u32);
            self.column_locs.push((t_idx, c_idx));
            self.column_epochs.push(0);
            names.insert(field.name.clone(), id);
        }
        self.column_names.push(names);
        self.table_index.insert(table.name().to_owned(), t_idx);
        self.base_rows.push(table.num_rows());
        self.tables.push(table);
        self.stats = AccessStats::new(self.column_locs.len());
        Ok(())
    }

    /// Append a batch of rows to `table`, bumping the database epoch.
    ///
    /// The batch must match the table schema (one column per field, equal
    /// row counts). Appends are strictly additive: existing rows, string
    /// dictionary prefixes and segment contents are never rewritten, so
    /// snapshots taken earlier stay valid. Per-column effective sizes are
    /// refreshed when transparent compression is active. Returns the new
    /// epoch; an empty batch is a no-op returning the current epoch.
    pub fn append_batch(
        &mut self,
        table: &str,
        columns: Vec<ColumnData>,
    ) -> Result<DbEpoch, StorageError> {
        let &t_idx = self
            .table_index
            .get(table)
            .ok_or_else(|| StorageError::NotFound(table.to_owned()))?;
        let epoch = self.epoch + 1;
        let seal_rows = self.seal_rows;
        let base_rows = self.tables[t_idx].num_rows();
        let rows = self.tables[t_idx].append_batch(columns, epoch, seal_rows)?;
        if rows == 0 {
            return Ok(DbEpoch(self.epoch));
        }
        self.epoch = epoch;
        let mut bytes = 0u64;
        for (id, &(t, _)) in self.column_locs.iter().enumerate() {
            if t == t_idx {
                self.column_epochs[id] = epoch;
                let width = self.tables[t_idx]
                    .schema()
                    .field(self.column_locs[id].1)
                    .data_type
                    .byte_width() as u64;
                bytes += rows as u64 * width;
            }
        }
        self.append_log.push(AppendRecord {
            table: t_idx,
            base_rows,
            rows,
            epoch,
            bytes,
        });
        if self.effective_sizes.is_some() {
            let updates: Vec<(usize, u64)> = self
                .all_column_ids()
                .filter(|id| self.column_locs[id.index()].0 == t_idx)
                .map(|id| (id.index(), self.segmented_compressed_size(id)))
                .collect();
            if let Some(sizes) = self.effective_sizes.as_mut() {
                for (i, s) in updates {
                    sizes[i] = s;
                }
            }
        }
        Ok(DbEpoch(epoch))
    }

    /// The current epoch (0 for a never-appended database).
    pub fn epoch(&self) -> DbEpoch {
        DbEpoch(self.epoch)
    }

    /// Epoch of the last append that touched column `id` (0 = never).
    pub fn column_epoch(&self, id: ColumnId) -> u64 {
        self.column_epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// Every committed append, in commit order.
    pub fn append_log(&self) -> &[AppendRecord] {
        &self.append_log
    }

    /// Rows table `t` (registration index) had before any append.
    pub fn base_rows(&self, t: usize) -> usize {
        self.base_rows.get(t).copied().unwrap_or(0)
    }

    /// Set the open-segment seal threshold used by subsequent appends.
    pub fn set_seal_rows(&mut self, rows: usize) {
        self.seal_rows = rows.max(1);
    }

    /// A snapshot of the database as of the current epoch.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            epoch: DbEpoch(self.epoch),
            visible: self.tables.iter().map(Table::num_rows).collect(),
        }
    }

    /// A snapshot as of `epoch`: visible rows are each table's base rows
    /// plus every append committed at or before `epoch`.
    pub fn snapshot_at(&self, epoch: DbEpoch) -> Snapshot {
        let mut visible = self.base_rows.clone();
        for r in &self.append_log {
            if r.epoch <= epoch.0 {
                visible[r.table] += r.rows;
            }
        }
        Snapshot { epoch: DbEpoch(epoch.0.min(self.epoch)), visible }
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index.get(name).map(|&i| &self.tables[i])
    }

    /// Registration index of table `name` (the index into
    /// [`Database::tables`], [`Snapshot::visible_rows`] and
    /// [`AppendRecord::table`]).
    pub fn table_position(&self, name: &str) -> Option<usize> {
        self.table_index.get(name).copied()
    }

    /// Number of registered base columns.
    pub fn num_columns(&self) -> usize {
        self.column_locs.len()
    }

    /// The identifier of `table.column`, if registered. Two hash probes,
    /// no allocation — this sits on the cache-keying and sharded
    /// placement hot paths.
    pub fn column_id(&self, table: &str, column: &str) -> Option<ColumnId> {
        let &t = self.table_index.get(table)?;
        self.column_names[t].get(column).copied()
    }

    /// Like [`Database::column_id`] but returns an error naming the column.
    pub fn require_column_id(
        &self,
        table: &str,
        column: &str,
    ) -> Result<ColumnId, StorageError> {
        self.column_id(table, column)
            .ok_or_else(|| StorageError::NotFound(format!("{table}.{column}")))
    }

    /// The column data behind `id`.
    pub fn column_by_id(&self, id: ColumnId) -> &ColumnData {
        let (t, c) = self.column_locs[id.index()];
        self.tables[t].column_at(c)
    }

    /// Effective payload bytes of the column behind `id`: the raw column
    /// size, or its compressed size when
    /// [`Database::apply_compression`] is active. This is the quantity
    /// all cache-footprint and transfer math consumes.
    pub fn column_size(&self, id: ColumnId) -> u64 {
        match &self.effective_sizes {
            Some(sizes) => sizes[id.index()],
            None => self.column_by_id(id).byte_size(),
        }
    }

    /// Raw (uncompressed) payload bytes of the column behind `id`.
    pub fn raw_column_size(&self, id: ColumnId) -> u64 {
        self.column_by_id(id).byte_size()
    }

    /// Enable transparent lightweight compression: every base column's
    /// *effective* size becomes its size under the automatic codec choice
    /// of [`crate::compress`]. Query processing is unchanged — results
    /// come from the raw columns — but the co-processor cache and the
    /// interconnect are charged compressed bytes, which shifts the
    /// cache-thrashing break-down point to larger scale factors
    /// (Section 6.3). Returns the overall compression ratio (raw/effective).
    ///
    /// Compression is applied *per sealed segment* (open segments are
    /// charged raw): for a never-appended table the single sealed segment
    /// spans the whole column, so the effective sizes are identical to
    /// whole-column compression.
    pub fn apply_compression(&mut self) -> f64 {
        let sizes: Vec<u64> = self
            .all_column_ids()
            .map(|id| self.segmented_compressed_size(id))
            .collect();
        let raw: u64 = self
            .all_column_ids()
            .map(|id| self.column_by_id(id).byte_size())
            .sum();
        let eff: u64 = sizes.iter().sum();
        self.effective_sizes = Some(sizes);
        if eff == 0 {
            1.0
        } else {
            raw as f64 / eff as f64
        }
    }

    /// Per-table compression statistics under the automatic codec choice:
    /// how many columns land on each codec and the compressed/raw byte
    /// ratio. Computed from the raw columns, so it is valid whether or not
    /// [`Database::apply_compression`] is active.
    pub fn compression_report(&self) -> CompressionReport {
        let mut tables = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            let mut entry = TableCompression {
                table: t.name().to_string(),
                raw_columns: 0,
                rle_columns: 0,
                bitpacked_columns: 0,
                raw_bytes: 0,
                compressed_bytes: 0,
            };
            for i in 0..t.num_columns() {
                let col = t.column_at(i);
                let c = crate::compress::CompressedColumn::compress(col);
                match c.codec() {
                    "rle" => entry.rle_columns += 1,
                    "for-bitpack" => entry.bitpacked_columns += 1,
                    _ => entry.raw_columns += 1,
                }
                entry.raw_bytes += col.byte_size();
                entry.compressed_bytes += c.bytes();
            }
            tables.push(entry);
        }
        CompressionReport { tables }
    }

    /// Effective bytes of column `id` under per-segment compression:
    /// each sealed segment contributes its compressed size under the
    /// automatic codec choice, open segments contribute raw bytes.
    fn segmented_compressed_size(&self, id: ColumnId) -> u64 {
        let (t, c) = self.column_locs[id.index()];
        let table = &self.tables[t];
        let col = table.column_at(c);
        let full = 0..table.num_rows();
        table
            .segments()
            .iter()
            .map(|s| {
                if !s.is_sealed() {
                    return (s.num_rows() as u64)
                        * col.data_type().byte_width() as u64;
                }
                if s.rows() == full {
                    crate::compress::compressed_size(col)
                } else {
                    let slice = table.column_slice(c, s.rows().start, s.rows().end);
                    crate::compress::compressed_size(&slice)
                }
            })
            .sum()
    }

    /// Disable transparent compression (effective sizes revert to raw).
    pub fn clear_compression(&mut self) {
        self.effective_sizes = None;
    }

    /// Whether transparent compression is active.
    pub fn is_compressed(&self) -> bool {
        self.effective_sizes.is_some()
    }

    /// Registration index of the table owning `id` (the data placement
    /// manager groups columns by table so a scan's inputs stay
    /// co-resident on one device).
    pub fn table_of(&self, id: ColumnId) -> usize {
        self.column_locs[id.index()].0
    }

    /// Human-readable `table.column` name of `id`.
    pub fn column_name(&self, id: ColumnId) -> String {
        let (t, c) = self.column_locs[id.index()];
        let table = &self.tables[t];
        format!("{}.{}", table.name(), table.schema().field(c).name)
    }

    /// All registered column ids.
    pub fn all_column_ids(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.column_locs.len() as u32).map(ColumnId)
    }

    /// Access statistics shared by the query processor and the placement
    /// manager.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Total payload bytes over all tables.
    pub fn byte_size(&self) -> u64 {
        self.tables.iter().map(Table::byte_size).sum()
    }
}

/// Compression statistics for one table: codec mix over its columns and
/// the raw vs compressed byte totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCompression {
    /// Table name.
    pub table: String,
    /// Columns where neither codec beat the raw layout.
    pub raw_columns: usize,
    /// Columns stored as run-length runs.
    pub rle_columns: usize,
    /// Columns stored FOR + bit-packed.
    pub bitpacked_columns: usize,
    /// Raw bytes across all columns.
    pub raw_bytes: u64,
    /// Compressed bytes across all columns.
    pub compressed_bytes: u64,
}

impl TableCompression {
    /// Compressed/raw byte ratio (1.0 when the table is empty).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Database-wide compression statistics, one entry per table.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Per-table codec mix and byte totals.
    pub tables: Vec<TableCompression>,
}

impl CompressionReport {
    /// Overall compressed/raw byte ratio across every table.
    pub fn total_ratio(&self) -> f64 {
        let raw: u64 = self.tables.iter().map(|t| t.raw_bytes).sum();
        let eff: u64 = self.tables.iter().map(|t| t.compressed_bytes).sum();
        if raw == 0 {
            1.0
        } else {
            eff as f64 / raw as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use crate::types::DataType;

    fn db_with_tables() -> Database {
        let mut db = Database::new();
        let t1 = Table::new(
            "a",
            Schema::new(vec![
                Field::new("x", DataType::Int32),
                Field::new("y", DataType::Float64),
            ]),
            vec![
                ColumnData::Int32(vec![1, 2]),
                ColumnData::Float64(vec![0.5, 0.25]),
            ],
        )
        .unwrap();
        let t2 = Table::new(
            "b",
            Schema::new(vec![Field::new("z", DataType::Int64)]),
            vec![ColumnData::Int64(vec![9, 8, 7])],
        )
        .unwrap();
        db.add_table(t1).unwrap();
        db.add_table(t2).unwrap();
        db
    }

    #[test]
    fn catalog_assigns_dense_ids() {
        let db = db_with_tables();
        assert_eq!(db.num_columns(), 3);
        let x = db.column_id("a", "x").unwrap();
        let y = db.column_id("a", "y").unwrap();
        let z = db.column_id("b", "z").unwrap();
        assert_eq!(x, ColumnId(0));
        assert_eq!(y, ColumnId(1));
        assert_eq!(z, ColumnId(2));
        assert_eq!(db.column_name(z), "b.z");
        assert_eq!(db.column_size(x), 8);
        assert_eq!(db.column_size(z), 24);
    }

    #[test]
    fn compression_report_tallies_codecs_and_ratio() {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![
                    Field::new("runs", DataType::Int32),
                    Field::new("narrow", DataType::Int32),
                ]),
                vec![
                    // Long runs -> RLE; small range noise -> FOR+bit-pack.
                    ColumnData::Int32(vec![5; 4096]),
                    ColumnData::Int32((0..4096).map(|i| (i * 37) % 16).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let report = db.compression_report();
        assert_eq!(report.tables.len(), 1);
        let t = &report.tables[0];
        assert_eq!(t.table, "t");
        assert_eq!((t.rle_columns, t.bitpacked_columns, t.raw_columns), (1, 1, 0));
        assert_eq!(t.raw_bytes, 2 * 4 * 4096);
        assert!(t.compressed_bytes < t.raw_bytes);
        assert!(t.ratio() < 0.2, "ratio {}", t.ratio());
        assert!((report.total_ratio() - t.ratio()).abs() < 1e-12);
        // The report reads raw columns, so enabling transparent
        // compression must not change it.
        db.apply_compression();
        assert_eq!(db.compression_report().tables, report.tables);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_tables();
        let dup = Table::new(
            "a",
            Schema::new(vec![Field::new("x", DataType::Int32)]),
            vec![ColumnData::Int32(vec![])],
        )
        .unwrap();
        assert!(matches!(
            db.add_table(dup),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn missing_column_lookup() {
        let db = db_with_tables();
        assert!(db.column_id("a", "nope").is_none());
        assert!(db.require_column_id("nope", "x").is_err());
    }

    #[test]
    fn total_byte_size() {
        let db = db_with_tables();
        assert_eq!(db.byte_size(), 8 + 16 + 24);
    }

    #[test]
    fn append_bumps_epoch_and_logs() {
        let mut db = db_with_tables();
        assert_eq!(db.epoch(), DbEpoch(0));
        let x = db.column_id("a", "x").unwrap();
        let z = db.column_id("b", "z").unwrap();
        let e = db
            .append_batch(
                "a",
                vec![
                    ColumnData::Int32(vec![3]),
                    ColumnData::Float64(vec![0.125]),
                ],
            )
            .unwrap();
        assert_eq!(e, DbEpoch(1));
        assert_eq!(db.epoch(), DbEpoch(1));
        assert_eq!(db.column_epoch(x), 1);
        assert_eq!(db.column_epoch(z), 0, "other tables keep epoch 0");
        assert_eq!(db.table("a").unwrap().num_rows(), 3);
        let log = db.append_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0],
            AppendRecord { table: 0, base_rows: 2, rows: 1, epoch: 1, bytes: 12 }
        );
        // Unknown table and empty batches don't commit an epoch.
        assert!(db.append_batch("nope", vec![]).is_err());
        let same = db
            .append_batch(
                "a",
                vec![ColumnData::Int32(vec![]), ColumnData::Float64(vec![])],
            )
            .unwrap();
        assert_eq!(same, DbEpoch(1));
        assert_eq!(db.append_log().len(), 1);
    }

    #[test]
    fn snapshots_bound_visible_rows_per_epoch() {
        let mut db = db_with_tables();
        let s0 = db.snapshot();
        db.append_batch(
            "a",
            vec![ColumnData::Int32(vec![9, 9]), ColumnData::Float64(vec![1.0, 2.0])],
        )
        .unwrap();
        db.append_batch("b", vec![ColumnData::Int64(vec![6])]).unwrap();
        let s2 = db.snapshot();
        assert_eq!(s0.epoch(), DbEpoch(0));
        assert_eq!((s0.visible_rows(0), s0.visible_rows(1)), (2, 3));
        assert_eq!((s2.visible_rows(0), s2.visible_rows(1)), (4, 4));
        // Reconstructed mid-history snapshot.
        let s1 = db.snapshot_at(DbEpoch(1));
        assert_eq!((s1.visible_rows(0), s1.visible_rows(1)), (4, 3));
        assert_eq!(db.snapshot_at(DbEpoch(0)), s0);
        assert_eq!(db.snapshot_at(DbEpoch(99)), s2);
        // Data visible in the old snapshot is bit-identical after appends.
        let a = db.table("a").unwrap();
        assert_eq!(a.column_at(0).slice(0, s0.visible_rows(0)),
                   ColumnData::Int32(vec![1, 2]));
    }

    #[test]
    fn per_segment_compression_matches_whole_column_when_never_appended() {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![Field::new("runs", DataType::Int32)]),
                vec![ColumnData::Int32(vec![5; 4096])],
            )
            .unwrap(),
        )
        .unwrap();
        let id = db.column_id("t", "runs").unwrap();
        let whole = crate::compress::compressed_size(db.column_by_id(id));
        db.apply_compression();
        assert_eq!(db.column_size(id), whole);
    }

    #[test]
    fn appends_refresh_effective_sizes_per_segment() {
        let mut db = Database::new();
        db.set_seal_rows(2048);
        db.add_table(
            Table::new(
                "t",
                Schema::new(vec![Field::new("runs", DataType::Int32)]),
                vec![ColumnData::Int32(vec![5; 4096])],
            )
            .unwrap(),
        )
        .unwrap();
        db.apply_compression();
        let id = db.column_id("t", "runs").unwrap();
        let before = db.column_size(id);
        // Sealed append (>= seal threshold): highly compressible, so the
        // effective size grows by its compressed, not raw, footprint.
        db.append_batch("t", vec![ColumnData::Int32(vec![7; 2048])]).unwrap();
        let after_sealed = db.column_size(id);
        assert!(after_sealed > before);
        assert!(after_sealed - before < 2048 * 4);
        assert!(db.table("t").unwrap().segments().iter().all(|s| s.is_sealed()));
        // Open append (below threshold): charged raw.
        db.append_batch("t", vec![ColumnData::Int32(vec![1, 2, 3])]).unwrap();
        assert_eq!(db.column_size(id), after_sealed + 3 * 4);
    }
}
