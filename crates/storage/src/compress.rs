//! Lightweight column compression.
//!
//! Section 6.3 of the paper discusses compression as the lever that
//! *shifts* (but does not remove) the resource break-down points: a
//! compressed column occupies less co-processor cache and moves fewer
//! bytes over the bus, so cache thrashing and the Figure 14 crossover
//! appear at larger scale factors.
//!
//! Three classic lightweight codecs are implemented, with an automatic
//! chooser that picks the smallest encoding per column:
//!
//! * **RLE** — run-length encoding, for columns with long runs
//!   (sorted keys, constants like `lo_shippriority`);
//! * **FOR + bit packing** — frame-of-reference (subtract the minimum)
//!   followed by packing each value into the minimal number of bits;
//! * **raw** — the fallback when neither helps (e.g. random doubles).
//!
//! Compression here is *transparent*: [`CompressedColumn::decompress`]
//! restores the exact original column, and the engine only consumes the
//! compressed **size** (for cache/transfer math) via
//! [`crate::Database::apply_compression`].

use crate::column::{ColumnData, DictColumn};
use std::sync::Arc;

/// A compressed representation of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedColumn {
    /// Uncompressed fallback.
    Raw(ColumnData),
    /// Run-length encoded 64-bit values (covers Int32/Int64 and
    /// dictionary codes; floats are stored via their bit pattern).
    Rle {
        /// Logical type the payload encodes.
        kind: ValueKind,
        /// `(value, run length)` pairs.
        runs: Vec<(u64, u32)>,
        /// Dictionary for string columns.
        dict: Option<Arc<Vec<String>>>,
    },
    /// Frame-of-reference + bit packing of 64-bit values.
    BitPacked {
        /// Logical type the payload encodes.
        kind: ValueKind,
        /// Frame of reference (subtracted minimum).
        min: u64,
        /// Bits per packed value.
        bits: u8,
        /// Number of encoded rows.
        rows: usize,
        /// The packed bit stream.
        words: Vec<u64>,
        /// Dictionary for string columns.
        dict: Option<Arc<Vec<String>>>,
    },
}

/// The logical type the 64-bit payload encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Zig-zag encoded `i32`.
    Int32,
    /// Zig-zag encoded `i64`.
    Int64,
    /// `f64` bit patterns.
    Float64,
    /// Dictionary codes of a string column.
    DictCode,
}

/// Zig-zag encode a signed value into an unsigned one so FOR works for
/// negatives. Public so compressed-domain kernels can translate literals
/// into the packed payload space.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`]; public so compressed-domain kernels can decode
/// packed payloads without materializing the whole column.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Extract `(kind, values, dict)` as 64-bit payloads.
fn raw_values(col: &ColumnData) -> (ValueKind, Vec<u64>, Option<Arc<Vec<String>>>) {
    match col {
        ColumnData::Int32(v) => {
            (ValueKind::Int32, v.iter().map(|&x| zigzag(x as i64)).collect(), None)
        }
        ColumnData::Int64(v) => {
            (ValueKind::Int64, v.iter().map(|&x| zigzag(x)).collect(), None)
        }
        ColumnData::Float64(v) => {
            (ValueKind::Float64, v.iter().map(|x| x.to_bits()).collect(), None)
        }
        ColumnData::Str(d) => (
            ValueKind::DictCode,
            d.codes().iter().map(|&c| c as u64).collect(),
            Some(Arc::clone(d.dict())),
        ),
    }
}

fn rebuild(kind: ValueKind, values: Vec<u64>, dict: Option<Arc<Vec<String>>>) -> ColumnData {
    match kind {
        ValueKind::Int32 => {
            ColumnData::Int32(values.into_iter().map(|v| unzigzag(v) as i32).collect())
        }
        ValueKind::Int64 => {
            ColumnData::Int64(values.into_iter().map(unzigzag).collect())
        }
        ValueKind::Float64 => {
            ColumnData::Float64(values.into_iter().map(f64::from_bits).collect())
        }
        ValueKind::DictCode => {
            let dict = dict.expect("dictionary present for string columns");
            let codes = values.into_iter().map(|v| v as u32).collect();
            ColumnData::Str(DictColumn::from_parts(dict, codes))
        }
    }
}

/// Run-length encode.
fn rle_encode(values: &[u64]) -> Vec<(u64, u32)> {
    let mut runs = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((last, count)) if *last == v && *count < u32::MAX => *count += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

fn rle_decode(runs: &[(u64, u32)]) -> Vec<u64> {
    let total: usize = runs.iter().map(|&(_, c)| c as usize).sum();
    let mut out = Vec::with_capacity(total);
    for &(v, c) in runs {
        out.extend(std::iter::repeat_n(v, c as usize));
    }
    out
}

/// Bits needed to represent `v`.
fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()).max(1) as u8
}

fn pack(values: &[u64], min: u64, bits: u8) -> Vec<u64> {
    debug_assert!((1..=64).contains(&bits));
    let total_bits = values.len() * bits as usize;
    let mut words = vec![0u64; total_bits.div_ceil(64)];
    for (i, &v) in values.iter().enumerate() {
        let delta = v - min;
        let bit_pos = i * bits as usize;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        words[word] |= delta << offset;
        if offset + bits as usize > 64 {
            words[word + 1] |= delta >> (64 - offset);
        }
    }
    words
}

fn unpack(words: &[u64], rows: usize, min: u64, bits: u8) -> Vec<u64> {
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let bit_pos = i * bits as usize;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        let mut v = words[word] >> offset;
        if offset + bits as usize > 64 {
            v |= words[word + 1] << (64 - offset);
        }
        out.push((v & mask) + min);
    }
    out
}

impl CompressedColumn {
    /// Compress `col`, choosing the smallest of RLE, FOR+bit-packing and
    /// raw.
    pub fn compress(col: &ColumnData) -> CompressedColumn {
        if col.is_empty() {
            return CompressedColumn::Raw(col.clone());
        }
        let (kind, values, dict) = raw_values(col);
        let raw_size = col.byte_size();

        let runs = rle_encode(&values);
        let rle_size = (runs.len() * 12) as u64;

        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let bits = bits_for(max - min);
        let packed_size = ((values.len() * bits as usize).div_ceil(8)) as u64 + 16;

        if rle_size < packed_size && rle_size < raw_size {
            CompressedColumn::Rle { kind, runs, dict }
        } else if packed_size < raw_size {
            let words = pack(&values, min, bits);
            CompressedColumn::BitPacked {
                kind,
                min,
                bits,
                rows: values.len(),
                words,
                dict,
            }
        } else {
            CompressedColumn::Raw(col.clone())
        }
    }

    /// Size of the compressed payload in bytes (what the cache and the
    /// bus are charged).
    pub fn compressed_size(&self) -> u64 {
        match self {
            CompressedColumn::Raw(c) => c.byte_size(),
            CompressedColumn::Rle { runs, .. } => (runs.len() * 12) as u64,
            CompressedColumn::BitPacked { words, .. } => (words.len() * 8) as u64 + 16,
        }
    }

    /// Compressed payload bytes — alias of [`Self::compressed_size`] used
    /// by the catalog's per-table compression statistics.
    pub fn bytes(&self) -> u64 {
        self.compressed_size()
    }

    /// Number of logical rows the payload encodes.
    pub fn num_rows(&self) -> usize {
        match self {
            CompressedColumn::Raw(c) => c.len(),
            CompressedColumn::Rle { runs, .. } => {
                runs.iter().map(|&(_, c)| c as usize).sum()
            }
            CompressedColumn::BitPacked { rows, .. } => *rows,
        }
    }

    /// Human-readable codec name.
    pub fn codec(&self) -> &'static str {
        match self {
            CompressedColumn::Raw(_) => "raw",
            CompressedColumn::Rle { .. } => "rle",
            CompressedColumn::BitPacked { .. } => "for-bitpack",
        }
    }

    /// Restore the exact original column.
    pub fn decompress(&self) -> ColumnData {
        match self {
            CompressedColumn::Raw(c) => c.clone(),
            CompressedColumn::Rle { kind, runs, dict } => {
                rebuild(*kind, rle_decode(runs), dict.clone())
            }
            CompressedColumn::BitPacked { kind, min, bits, rows, words, dict } => {
                rebuild(*kind, unpack(words, *rows, *min, *bits), dict.clone())
            }
        }
    }
}

/// Compressed size of `col` under the automatic codec choice.
pub fn compressed_size(col: &ColumnData) -> u64 {
    CompressedColumn::compress(col).compressed_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictColumn;

    fn roundtrip(col: ColumnData) -> CompressedColumn {
        let c = CompressedColumn::compress(&col);
        assert_eq!(c.decompress(), col, "lossless roundtrip");
        c
    }

    #[test]
    fn constant_column_collapses_to_one_run() {
        let c = roundtrip(ColumnData::Int32(vec![0; 10_000]));
        assert_eq!(c.codec(), "rle");
        assert_eq!(c.compressed_size(), 12);
    }

    #[test]
    fn small_range_bitpacks() {
        // Values 0..=10 need 5 zig-zag bits: 8x+ smaller than 4 bytes.
        let vals: Vec<i32> = (0..10_000).map(|i| i % 11).collect();
        let c = roundtrip(ColumnData::Int32(vals));
        assert_eq!(c.codec(), "for-bitpack");
        assert!(c.compressed_size() < 10_000);
    }

    #[test]
    fn negative_values_roundtrip() {
        roundtrip(ColumnData::Int32(vec![-5, 0, 5, i32::MIN, i32::MAX]));
        roundtrip(ColumnData::Int64(vec![-1, i64::MIN, i64::MAX, 0]));
    }

    #[test]
    fn sign_alternating_floats_stay_raw() {
        // Alternating signs span the full 64-bit pattern range: neither
        // runs nor packing help.
        let vals: Vec<f64> =
            (0..1000).map(|i| (i as f64 - 500.0) * (i as f64).sqrt()).collect();
        let c = roundtrip(ColumnData::Float64(vals));
        assert_eq!(c.codec(), "raw");
    }

    #[test]
    fn constant_floats_rle() {
        let c = roundtrip(ColumnData::Float64(vec![3.25; 5_000]));
        assert_eq!(c.codec(), "rle");
    }

    #[test]
    fn dictionary_codes_compress_and_share_dict() {
        let col = ColumnData::Str(DictColumn::from_strings(
            (0..5_000).map(|i| if i % 2 == 0 { "ASIA" } else { "EUROPE" }),
        ));
        let c = roundtrip(col.clone());
        assert!(c.compressed_size() < col.byte_size());
        match (&c.decompress(), &col) {
            (ColumnData::Str(a), ColumnData::Str(b)) => {
                assert!(Arc::ptr_eq(a.dict(), b.dict()), "dictionary shared");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sorted_keys_compress_well() {
        let vals: Vec<i32> = (0..60_000).map(|i| i / 4).collect();
        let c = roundtrip(ColumnData::Int32(vals));
        assert!(c.compressed_size() * 2 < 240_000, "at least 2x on sorted keys");
    }

    #[test]
    fn empty_column() {
        let c = roundtrip(ColumnData::Int32(vec![]));
        assert_eq!(c.compressed_size(), 0);
    }

    #[test]
    fn bit_boundary_crossing_values() {
        // 13-bit values force packs that straddle word boundaries.
        let vals: Vec<i64> = (0..977).map(|i| (i * 7919) % 8000).collect();
        roundtrip(ColumnData::Int64(vals));
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
