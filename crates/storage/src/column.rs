//! Fully materialized, typed columns.
//!
//! A column is a dense vector of one scalar type. Strings are dictionary
//! encoded ([`DictColumn`]): the per-row payload is a `u32` code, which is
//! also what the co-processor footprint math charges.

use crate::types::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A dictionary-encoded string column.
///
/// Codes index into `dict`, which holds each distinct string once, in
/// first-seen order. The dictionary is behind an [`Arc`] so that filtered
/// intermediates can share it with the base column instead of copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct DictColumn {
    dict: Arc<Vec<String>>,
    codes: Vec<u32>,
}

impl DictColumn {
    /// Build a dictionary column from raw strings.
    pub fn from_strings<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::new();
        for v in values {
            let s = v.as_ref();
            let code = match lookup.get(s) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.to_owned());
                    lookup.insert(s.to_owned(), c);
                    c
                }
            };
            codes.push(code);
        }
        DictColumn { dict: Arc::new(dict), codes }
    }

    /// Build a column that reuses an existing dictionary with new codes.
    ///
    /// Every code must index into `dict`.
    pub fn from_parts(dict: Arc<Vec<String>>, codes: Vec<u32>) -> Self {
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len()));
        DictColumn { dict, codes }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<Vec<String>> {
        &self.dict
    }

    /// Per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The string at row `i`.
    pub fn get(&self, i: usize) -> &str {
        &self.dict[self.codes[i] as usize]
    }

    /// The code for `s`, if present in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict.iter().position(|d| d == s).map(|p| p as u32)
    }

    /// Gather rows at the given positions into a new column sharing the
    /// dictionary.
    ///
    /// Positions are `u32` — the selection-vector representation — which
    /// halves position-list memory traffic versus `usize` on 64-bit hosts.
    pub fn gather(&self, positions: &[u32]) -> DictColumn {
        let codes = positions.iter().map(|&p| self.codes[p as usize]).collect();
        DictColumn { dict: Arc::clone(&self.dict), codes }
    }

    /// Append `other`'s rows, remapping its codes into this column's
    /// dictionary (growing it for unseen strings). Existing codes are
    /// never rewritten — the row prefix stays byte-identical, which is
    /// what epoch snapshots rely on.
    pub fn append(&mut self, other: &DictColumn) {
        let lookup: HashMap<&str, u32> = self
            .dict
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i as u32))
            .collect();
        // Dictionaries hold each distinct string once, so an incoming
        // string missing from the base dict appears exactly once in
        // `other.dict` — no need to track newly assigned codes.
        let mut new_strings: Vec<String> = Vec::new();
        let base = self.dict.len() as u32;
        let mut remap: Vec<u32> = Vec::with_capacity(other.dict.len());
        for s in other.dict.iter() {
            let code = match lookup.get(s.as_str()) {
                Some(&c) => c,
                None => {
                    let c = base + new_strings.len() as u32;
                    new_strings.push(s.clone());
                    c
                }
            };
            remap.push(code);
        }
        drop(lookup);
        if !new_strings.is_empty() {
            Arc::make_mut(&mut self.dict).extend(new_strings);
        }
        self.codes.extend(other.codes.iter().map(|&c| remap[c as usize]));
    }

    /// Rows `lo..hi` as a new column sharing the dictionary.
    pub fn slice(&self, lo: usize, hi: usize) -> DictColumn {
        DictColumn { dict: Arc::clone(&self.dict), codes: self.codes[lo..hi].to_vec() }
    }
}

/// A typed, fully materialized column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit signed integers.
    Int32(Vec<i32>),
    /// 64-bit signed integers.
    Int64(Vec<i64>),
    /// 64-bit IEEE floats.
    Float64(Vec<f64>),
    /// Dictionary-encoded strings.
    Str(DictColumn),
}

impl ColumnData {
    /// Logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Str(d) => d.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the per-row payload.
    ///
    /// This is the quantity all transfer-time and device-memory math is
    /// based on; the (shared, small) string dictionary is not charged.
    pub fn byte_size(&self) -> u64 {
        (self.len() as u64) * (self.data_type().byte_width() as u64)
    }

    /// The value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int32(v) => Value::Int32(v[i]),
            ColumnData::Int64(v) => Value::Int64(v[i]),
            ColumnData::Float64(v) => Value::Float64(v[i]),
            ColumnData::Str(d) => Value::Str(d.get(i).to_owned()),
        }
    }

    /// Numeric view of row `i` as `f64`; strings yield their code.
    ///
    /// Used by arithmetic expression evaluation, which only ever touches
    /// numeric columns in well-typed plans.
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            ColumnData::Int32(v) => v[i] as f64,
            ColumnData::Int64(v) => v[i] as f64,
            ColumnData::Float64(v) => v[i],
            ColumnData::Str(d) => d.codes()[i] as f64,
        }
    }

    /// A 64-bit group/join key for row `i`.
    ///
    /// Integers use their value, floats their bit pattern, strings their
    /// dictionary code. Equal values always produce equal keys within one
    /// column; across columns that share a dictionary (gathered children)
    /// string keys also agree.
    pub fn key_at(&self, i: usize) -> u64 {
        match self {
            ColumnData::Int32(v) => v[i] as i64 as u64,
            ColumnData::Int64(v) => v[i] as u64,
            ColumnData::Float64(v) => v[i].to_bits(),
            ColumnData::Str(d) => d.codes()[i] as u64,
        }
    }

    /// Append `other`'s rows to this column in place. String appends
    /// remap the incoming codes into this column's dictionary; rows
    /// already stored are never rewritten.
    ///
    /// # Panics
    /// Panics on a type mismatch — callers (table appends) validate
    /// schemas first.
    pub fn append(&mut self, other: &ColumnData) {
        match (self, other) {
            (ColumnData::Int32(a), ColumnData::Int32(b)) => a.extend_from_slice(b),
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => {
                a.extend_from_slice(b)
            }
            (ColumnData::Str(a), ColumnData::Str(b)) => a.append(b),
            (a, b) => panic!(
                "append type mismatch: {} vs {}",
                a.data_type(),
                b.data_type()
            ),
        }
    }

    /// Rows `lo..hi` as a new column (string slices share the base
    /// dictionary).
    pub fn slice(&self, lo: usize, hi: usize) -> ColumnData {
        match self {
            ColumnData::Int32(v) => ColumnData::Int32(v[lo..hi].to_vec()),
            ColumnData::Int64(v) => ColumnData::Int64(v[lo..hi].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[lo..hi].to_vec()),
            ColumnData::Str(d) => ColumnData::Str(d.slice(lo, hi)),
        }
    }

    /// Gather rows at `positions` (`u32` selection-vector entries) into a
    /// new column.
    pub fn gather(&self, positions: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int32(v) => {
                ColumnData::Int32(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Int64(v) => {
                ColumnData::Int64(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Float64(v) => {
                ColumnData::Float64(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Str(d) => ColumnData::Str(d.gather(positions)),
        }
    }

    /// Build a column of the given type from values produced row-wise.
    ///
    /// # Panics
    /// Panics if a value does not match `ty`.
    pub fn from_values(ty: DataType, values: &[Value]) -> ColumnData {
        match ty {
            DataType::Int32 => ColumnData::Int32(
                values
                    .iter()
                    .map(|v| v.as_i64().expect("int32 value") as i32)
                    .collect(),
            ),
            DataType::Int64 => ColumnData::Int64(
                values.iter().map(|v| v.as_i64().expect("int64 value")).collect(),
            ),
            DataType::Float64 => ColumnData::Float64(
                values.iter().map(|v| v.as_f64().expect("float value")).collect(),
            ),
            DataType::Str => ColumnData::Str(DictColumn::from_strings(
                values.iter().map(|v| v.as_str().expect("string value")),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_roundtrip() {
        let d = DictColumn::from_strings(["ASIA", "EUROPE", "ASIA", "AFRICA"]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.dict().len(), 3);
        assert_eq!(d.get(0), "ASIA");
        assert_eq!(d.get(2), "ASIA");
        assert_eq!(d.codes()[0], d.codes()[2]);
        assert_eq!(d.code_of("AFRICA"), Some(2));
        assert_eq!(d.code_of("MARS"), None);
    }

    #[test]
    fn dict_gather_shares_dictionary() {
        let d = DictColumn::from_strings(["a", "b", "c"]);
        let g = d.gather(&[2, 0]);
        assert_eq!(g.get(0), "c");
        assert_eq!(g.get(1), "a");
        assert!(Arc::ptr_eq(g.dict(), d.dict()));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(ColumnData::Int32(vec![1, 2, 3]).byte_size(), 12);
        assert_eq!(ColumnData::Int64(vec![1, 2]).byte_size(), 16);
        assert_eq!(ColumnData::Float64(vec![1.0]).byte_size(), 8);
        let s = ColumnData::Str(DictColumn::from_strings(["x", "y"]));
        assert_eq!(s.byte_size(), 8);
    }

    #[test]
    fn gather_all_types() {
        let c = ColumnData::Int32(vec![10, 20, 30]);
        assert_eq!(c.gather(&[2, 2, 0]), ColumnData::Int32(vec![30, 30, 10]));
        let f = ColumnData::Float64(vec![0.5, 1.5]);
        assert_eq!(f.gather(&[1]), ColumnData::Float64(vec![1.5]));
    }

    #[test]
    fn keys_agree_for_equal_values() {
        let c = ColumnData::Int32(vec![7, 7, 8]);
        assert_eq!(c.key_at(0), c.key_at(1));
        assert_ne!(c.key_at(0), c.key_at(2));
        let s = ColumnData::Str(DictColumn::from_strings(["p", "q", "p"]));
        assert_eq!(s.key_at(0), s.key_at(2));
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![Value::Int32(1), Value::Int32(-5)];
        let c = ColumnData::from_values(DataType::Int32, &vals);
        assert_eq!(c.get(1), Value::Int32(-5));
        let vals = vec![Value::from("a"), Value::from("b")];
        let c = ColumnData::from_values(DataType::Str, &vals);
        assert_eq!(c.get(0), Value::from("a"));
    }

    #[test]
    fn get_f64_views() {
        let c = ColumnData::Int64(vec![41]);
        assert_eq!(c.get_f64(0), 41.0);
        let f = ColumnData::Float64(vec![2.25]);
        assert_eq!(f.get_f64(0), 2.25);
    }
}
