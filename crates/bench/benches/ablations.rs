//! `cargo bench --bench ablations` — ablation studies for the design
//! choices DESIGN.md §5 calls out. Custom harness (deterministic virtual
//! time, like the figures bench).
//!
//! 1. chopping thread-pool size (the Section 5.2 concurrency bound),
//! 2. operator-driven cache eviction policy (LRU vs LFU under thrashing),
//! 3. admission-control limit vs chopping (Section 6.2.2),
//! 4. interconnect bandwidth sensitivity of the Figure 1 crossover,
//! 5. transparent compression shifting the Figure 14 break-down point
//!    (the Section 6.3 discussion),
//! 6. processing models (bulk / vectorized / compiled, Section 5.5):
//!    cache thrashing is inherent to all three,
//! 7. multi-co-processor scale-up via horizontal partitioning
//!    (Section 6.3: more GPUs shift the break-down point further).

use robustq_bench::machine::{Effort, MicroSetup, ParallelSetup, WorkloadKind, WorkloadSetup};
use robustq_bench::table::{ms, FigTable};
use robustq_core::strategies::Chopping;
use robustq_core::Strategy;
use robustq_sim::CachePolicy;
use robustq_workloads::{micro, RunnerConfig, SsbQuery, WorkloadRunner};

fn chopping_slots(effort: Effort) -> FigTable {
    let setup = ParallelSetup::new(effort);
    let queries = micro::parallel_selection_workload(setup.total_queries);
    let runner = WorkloadRunner::new(&setup.db, setup.sim());
    let cfg = RunnerConfig::default()
        .with_users(20)
        .with_placement_period(queries.len())
        .with_preload();
    let mut t = FigTable::new(
        "ablation-slots",
        "Chopping thread-pool size, parallel selection workload, 20 users",
    )
    .with_columns(["GPU worker slots", "exec time [ms]", "aborts"]);
    for slots in [1usize, 2, 4, 8, 16, 64] {
        let mut policy = Chopping::new().with_slots(slots);
        let label: &'static str = Box::leak(format!("chopping/{slots}").into_boxed_str());
        let report = runner
            .run_with_policy(&queries, &mut policy, label, &cfg)
            .expect("slots ablation run");
        t.push_row([
            format!("{slots}"),
            ms(report.metrics.makespan),
            format!("{}", report.metrics.aborts),
        ]);
    }
    t
}

fn cache_policy(effort: Effort) -> FigTable {
    let setup = MicroSetup::new(effort);
    let queries = micro::serial_selection_workload(setup.reps);
    let cache = setup.working_set / 2;
    let mut t = FigTable::new(
        "ablation-cache-policy",
        "Operator-driven eviction policy at 50% of the working set",
    )
    .with_columns(["policy", "exec time [ms]", "CPU→GPU transfer [ms]"]);
    for (name, policy) in [("LRU", CachePolicy::Lru), ("LFU", CachePolicy::Lfu)] {
        let sim = setup.sim(cache).with_cache_policy(policy);
        let runner = WorkloadRunner::new(&setup.db, sim);
        let report = runner
            .run(
                &queries,
                Strategy::GpuPreferred,
                &RunnerConfig::default().with_placement_period(queries.len()),
            )
            .expect("cache policy run");
        t.push_row([
            name.to_string(),
            ms(report.metrics.makespan),
            ms(report.metrics.h2d_time),
        ]);
    }
    t
}

fn admission_limits(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(10);
    let queries = setup.queries(&db);
    let runner = WorkloadRunner::new(&db, setup.sim());
    let mut t = FigTable::new(
        "ablation-admission",
        "GPU-only with admission limits vs chopping (SSBM, SF 10, 20 users)",
    )
    .with_columns(["configuration", "exec time [ms]", "mean latency [ms]"]);
    for limit in [1usize, 2, 4, 8, usize::MAX] {
        let cfg = RunnerConfig::default()
            .with_users(20)
            .with_placement_period(queries.len())
            .with_preload()
            .with_admission_limit(limit);
        let report = runner
            .run(&queries, Strategy::GpuPreferred, &cfg)
            .expect("admission run");
        let label =
            if limit == usize::MAX { "unbounded".to_string() } else { format!("limit {limit}") };
        t.push_row([
            label,
            ms(report.metrics.makespan),
            ms(report.mean_latency()),
        ]);
    }
    let cfg = RunnerConfig::default()
        .with_users(20)
        .with_placement_period(queries.len())
        .with_preload();
    let chop = runner
        .run(&queries, Strategy::DataDrivenChopping, &cfg)
        .expect("chopping run");
    t.push_row([
        "Data-Driven Chopping".to_string(),
        ms(chop.metrics.makespan),
        ms(chop.mean_latency()),
    ]);
    t
}

fn link_bandwidth(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(20);
    let query = SsbQuery::Q3_3.plan(&db).expect("Q3.3 plans");
    let mut t = FigTable::new(
        "ablation-link",
        "Figure 1 crossover vs interconnect bandwidth (SSB Q3.3, SF 20)",
    )
    .with_columns(["bandwidth scale", "CPU [ms]", "GPU cold [ms]", "GPU hot [ms]"]);
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let mut sim = setup.sim();
        let link = sim.topology.link_mut(robustq_sim::DeviceId::Gpu);
        link.bus_bandwidth *= scale;
        link.staging_bandwidth *= scale;
        let runner = WorkloadRunner::new(&db, sim);
        let cpu = runner
            .run(std::slice::from_ref(&query), Strategy::CpuOnly, &RunnerConfig::default())
            .expect("cpu");
        let cold = runner
            .run(
                std::slice::from_ref(&query),
                Strategy::GpuPreferred,
                &RunnerConfig::default().cold_cache(),
            )
            .expect("cold");
        let hot = runner
            .run(
                std::slice::from_ref(&query),
                Strategy::GpuPreferred,
                &RunnerConfig::default(),
            )
            .expect("hot");
        t.push_row([
            format!("{scale}x"),
            ms(cpu.metrics.makespan),
            ms(cold.metrics.makespan),
            ms(hot.metrics.makespan),
        ]);
    }
    t
}

fn compression_shifts_crossover(effort: Effort) -> FigTable {
    use robustq_storage::gen::ssb::SsbGenerator;

    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let sim = setup.sim();
    let mut t = FigTable::new(
        "ablation-compression",
        "Section 6.3: compression shifts the GPU-only break-down point",
    )
    .with_columns([
        "SF",
        "CPU Only [ms]",
        "GPU raw [ms]",
        "GPU compressed [ms]",
        "ratio",
    ]);
    for &sf in &setup.scale_factors {
        // Fresh databases: compression mutates effective sizes.
        let raw_db =
            SsbGenerator::new(sf).with_rows_per_sf(setup.rows_per_sf).generate();
        let mut comp_db =
            SsbGenerator::new(sf).with_rows_per_sf(setup.rows_per_sf).generate();
        let ratio = comp_db.apply_compression();
        let queries = robustq_workloads::ssb::workload(&raw_db).expect("SSB plans");
        let cfg = RunnerConfig::default()
            .with_placement_period(queries.len())
            .with_preload();

        let cpu = WorkloadRunner::new(&raw_db, sim.clone())
            .run(&queries, Strategy::CpuOnly, &cfg)
            .expect("cpu run");
        let gpu_raw = WorkloadRunner::new(&raw_db, sim.clone())
            .run(&queries, Strategy::GpuPreferred, &cfg)
            .expect("raw run");
        let gpu_comp = WorkloadRunner::new(&comp_db, sim.clone())
            .run(&queries, Strategy::GpuPreferred, &cfg)
            .expect("compressed run");
        t.push_row([
            format!("{sf}"),
            ms(cpu.metrics.makespan),
            ms(gpu_raw.metrics.makespan),
            ms(gpu_comp.metrics.makespan),
            format!("{ratio:.2}"),
        ]);
    }
    t
}

fn processing_models(effort: Effort) -> FigTable {
    use robustq_engine::vectorized::{CompiledEngine, VectorizedEngine};
    use robustq_sim::DeviceId;

    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(10);
    let sim = setup.sim();
    let query = SsbQuery::Q3_3.plan(&db).expect("Q3.3 plans");

    let mut t = FigTable::new(
        "ablation-models",
        "Section 5.5: cold-cache penalty across processing models (SSB Q3.3, SF 10)",
    )
    .with_columns(["model", "CPU [ms]", "GPU cold [ms]", "GPU hot [ms]", "cold/hot"]);

    // Bulk (operator-at-a-time) through the executor.
    let runner = WorkloadRunner::new(&db, sim.clone());
    let bulk_cpu = runner
        .run(std::slice::from_ref(&query), Strategy::CpuOnly, &RunnerConfig::default())
        .expect("bulk cpu");
    let bulk_cold = runner
        .run(
            std::slice::from_ref(&query),
            Strategy::GpuPreferred,
            &RunnerConfig::default().cold_cache(),
        )
        .expect("bulk cold");
    let bulk_hot = runner
        .run(std::slice::from_ref(&query), Strategy::GpuPreferred, &RunnerConfig::default())
        .expect("bulk hot");
    t.push_row([
        "operator-at-a-time".to_string(),
        ms(bulk_cpu.metrics.makespan),
        ms(bulk_cold.metrics.makespan),
        ms(bulk_hot.metrics.makespan),
        format!(
            "{:.1}",
            bulk_cold.metrics.makespan.as_secs_f64() / bulk_hot.metrics.makespan.as_secs_f64()
        ),
    ]);

    let vectorized = VectorizedEngine::new(&db, sim.clone());
    let v_cpu = vectorized.run_query(&query, DeviceId::Cpu).expect("vec cpu");
    let v_cold = vectorized.run_query(&query, DeviceId::Gpu).expect("vec cold");
    let v_hot = vectorized.run_query_cached(&query, DeviceId::Gpu).expect("vec hot");
    t.push_row([
        "vector-at-a-time".to_string(),
        ms(v_cpu.time),
        ms(v_cold.time),
        ms(v_hot.time),
        format!("{:.1}", v_cold.time.as_secs_f64() / v_hot.time.as_secs_f64()),
    ]);

    let compiled = CompiledEngine::new(&db, sim);
    let c_cpu = compiled.run_query(&query, DeviceId::Cpu).expect("comp cpu");
    let c_cold = compiled.run_query(&query, DeviceId::Gpu).expect("comp cold");
    let c_hot = compiled.run_query_cached(&query, DeviceId::Gpu).expect("comp hot");
    t.push_row([
        "compiled".to_string(),
        ms(c_cpu.time),
        ms(c_cold.time),
        ms(c_hot.time),
        format!("{:.1}", c_cold.time.as_secs_f64() / c_hot.time.as_secs_f64()),
    ]);
    t
}

fn multi_gpu_partitioning(effort: Effort) -> FigTable {
    use robustq_workloads::partitioned::{partition, run_partitioned};

    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let sim = setup.sim();
    let mut t = FigTable::new(
        "ablation-multigpu",
        "Section 6.3: horizontal partitioning across co-processors",
    )
    .with_columns(["SF", "CPU Only [ms]", "1 GPU [ms]", "2 GPUs [ms]", "4 GPUs [ms]"]);
    for &sf in &setup.scale_factors {
        let db = setup.db(sf);
        let queries = setup.queries(&db);
        let cfg = RunnerConfig::default()
            .with_placement_period(queries.len())
            .with_preload();
        let cpu = WorkloadRunner::new(&db, sim.clone())
            .run(&queries, Strategy::CpuOnly, &cfg)
            .expect("cpu run");
        let mut row = vec![format!("{sf}"), ms(cpu.metrics.makespan)];
        for n in [1usize, 2, 4] {
            let parts = partition(&db, "lineorder", n).expect("partitions");
            let report =
                run_partitioned(&parts, &sim, &queries, Strategy::GpuPreferred, &cfg)
                    .expect("partitioned run");
            row.push(ms(report.makespan));
        }
        t.push_row(row);
    }
    t
}

fn main() {
    let effort = Effort::from_env();
    for table in [
        chopping_slots(effort),
        cache_policy(effort),
        admission_limits(effort),
        link_bandwidth(effort),
        compression_shifts_crossover(effort),
        processing_models(effort),
        multi_gpu_partitioning(effort),
    ] {
        println!("{table}");
    }
}
