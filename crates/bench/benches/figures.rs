//! `cargo bench --bench figures` — regenerate every table and figure of
//! the paper at the current effort level (`ROBUSTQ_EFFORT=full` for
//! smoother curves) and print them in paper order.
//!
//! This is a custom harness (not Criterion): figures report virtual time
//! from the co-processor simulator, so statistical repetition of
//! wall-clock measurements would add nothing — every run is
//! deterministic.

use robustq_bench::{all_figures, Effort};

fn main() {
    let effort = Effort::from_env();
    let started = std::time::Instant::now();
    for table in all_figures(effort) {
        println!("{table}");
    }
    eprintln!(
        "regenerated all figures in {:.1}s (effort {:?})",
        started.elapsed().as_secs_f64(),
        effort
    );
}
