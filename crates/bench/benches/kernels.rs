//! Criterion micro-benchmarks of the operator kernels (real wall-clock
//! performance of the host-side kernels the engine executes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robustq_engine::expr::Expr;
use robustq_engine::ops;
use robustq_engine::plan::{AggSpec, JoinKind, SortKey};
use robustq_engine::predicate::Predicate;
use robustq_engine::Chunk;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_storage::Database;
use std::hint::black_box;

fn db() -> Database {
    SsbGenerator::new(1).with_rows_per_sf(100_000).generate()
}

fn lineorder_chunk(db: &Database, cols: &[&str]) -> Chunk {
    let names: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
    Chunk::from_table(db.table("lineorder").unwrap(), &names).unwrap()
}

fn bench_selection(c: &mut Criterion) {
    let db = db();
    let chunk = lineorder_chunk(&db, &["lo_discount", "lo_quantity"]);
    let pred = Predicate::and([
        Predicate::between("lo_discount", 4, 6),
        Predicate::between("lo_quantity", 26, 35),
    ]);
    c.bench_function("selection/100k", |b| {
        b.iter(|| ops::select::select(black_box(&chunk), black_box(&pred)).unwrap())
    });
}

fn bench_hash_join(c: &mut Criterion) {
    let db = db();
    let probe = lineorder_chunk(&db, &["lo_custkey", "lo_revenue"]);
    let build =
        Chunk::from_table(db.table("customer").unwrap(), &["c_custkey".into()]).unwrap();
    let mut g = c.benchmark_group("hash_join");
    for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    ops::join::hash_join(
                        black_box(&build),
                        black_box(&probe),
                        "c_custkey",
                        "lo_custkey",
                        kind,
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let db = db();
    let chunk = lineorder_chunk(&db, &["lo_orderdate", "lo_revenue"]);
    let aggs = vec![AggSpec::sum(Expr::col("lo_revenue"), "rev")];
    c.bench_function("aggregation/group_by_date", |b| {
        b.iter(|| {
            ops::agg::aggregate(
                black_box(&chunk),
                black_box(&["lo_orderdate".to_string()]),
                black_box(&aggs),
            )
            .unwrap()
        })
    });
}

fn bench_sort_topk(c: &mut Criterion) {
    let db = db();
    let chunk = lineorder_chunk(&db, &["lo_revenue"]);
    c.bench_function("sort/top100", |b| {
        b.iter(|| {
            ops::sort::sort(black_box(&chunk), &[SortKey::desc("lo_revenue")], Some(100))
                .unwrap()
        })
    });
}

fn bench_expression(c: &mut Criterion) {
    let db = db();
    let chunk = lineorder_chunk(&db, &["lo_extendedprice", "lo_discount"]);
    let expr = Expr::col("lo_extendedprice")
        * (Expr::lit(1.0) - Expr::col("lo_discount") / Expr::lit(100.0));
    c.bench_function("expression/revenue", |b| {
        b.iter(|| expr.evaluate_f64(black_box(&chunk)).unwrap())
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_selection, bench_hash_join, bench_aggregation,
        bench_sort_topk, bench_expression
}
criterion_main!(kernels);
