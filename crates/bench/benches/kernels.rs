//! `cargo bench --bench kernels` — wall-clock throughput of the hot CPU
//! kernels at 1M and 10M rows, swept across worker counts.
//!
//! A custom harness (not Criterion — the build is offline): each kernel
//! runs a warm-up pass plus `ITERS` timed passes and reports the best
//! pass as rows/sec. Every variant is verified bit-identical to its
//! serial baseline before timing. Results are printed as a table and
//! written to `BENCH_kernels.json` at the repository root so the perf
//! trajectory is tracked across commits.
//!
//! Three kernel families are measured:
//!
//! * `select` / `join_probe` / `aggregate` — the morsel-parallel kernels
//!   against their serial counterparts, one entry per worker count in
//!   `ROBUSTQ_WORKERS ∈ {1, 2, 4, 8}` (or just the value of
//!   `ROBUSTQ_WORKERS` when set);
//! * `fused_select_aggregate` / `fused_select_probe` — the fused
//!   selection-vector pipelines against the pre-selection-vector
//!   *materializing* baseline (mask select + gather, then the downstream
//!   kernel), so the fused speedup is algorithmic, not thread scaling;
//! * `select_compressed_{rle,dict,bitpack}` — compressed-domain selection
//!   (`ops::compressed`, DESIGN.md §14) against decompress-then-select on
//!   the same predicate; positions must match exactly. The JSON also
//!   records each compressed bench column's codec and byte ratio under
//!   `"compression"`.
//!
//! `ROBUSTQ_BENCH_ROWS` overrides the row counts (CI smoke runs a small
//! size; the JSON is only written at the default sizes). On a single-core
//! host the parallel kernels fall back to their serial references
//! (`ParallelCtx::fans_out`), so speedups hover around 1× and reflect
//! timer noise only; the thread-scaling targets apply on multi-core
//! hosts.

use robustq_bench::table::json_str;
use robustq_engine::expr::Expr;
use robustq_engine::ops;
use robustq_engine::ops::compressed::select_compressed;
use robustq_engine::parallel;
use robustq_engine::plan::{AggSpec, JoinKind};
use robustq_engine::predicate::Predicate;
use robustq_engine::{Chunk, ParallelCtx};
use robustq_storage::{ColumnData, CompressedColumn, DataType, DictColumn, Field};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 2] = [1_000_000, 10_000_000];
const ITERS: usize = 5;

/// Deterministic pseudo-random stream (SplitMix64) for bench data.
fn mix(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn selection_chunk(rows: usize) -> Chunk {
    let mut rng = mix(1);
    Chunk::new(
        vec![
            Field::new("discount", DataType::Int32),
            Field::new("quantity", DataType::Int32),
        ],
        vec![
            ColumnData::Int32((0..rows).map(|_| (rng() % 11) as i32).collect()),
            ColumnData::Int32((0..rows).map(|_| (rng() % 50) as i32).collect()),
        ],
    )
}

fn join_sides(rows: usize) -> (Chunk, Chunk) {
    let build_rows = rows / 10;
    let mut rng = mix(2);
    let build = Chunk::new(
        vec![Field::new("pk", DataType::Int64)],
        vec![ColumnData::Int64((0..build_rows as i64).collect())],
    );
    let probe = Chunk::new(
        vec![
            Field::new("fk", DataType::Int64),
            Field::new("v", DataType::Float64),
        ],
        vec![
            // ~2/3 of probe keys hit the build side.
            ColumnData::Int64(
                (0..rows)
                    .map(|_| (rng() % (build_rows as u64 * 3 / 2)) as i64)
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|_| (rng() % 1000) as f64).collect()),
        ],
    );
    (build, probe)
}

fn aggregation_chunk(rows: usize) -> Chunk {
    let mut rng = mix(3);
    Chunk::new(
        vec![
            Field::new("g", DataType::Int32),
            Field::new("v", DataType::Float64),
        ],
        vec![
            ColumnData::Int32((0..rows).map(|_| (rng() % 1024) as i32).collect()),
            ColumnData::Float64(
                (0..rows).map(|_| (rng() % 10_000) as f64 / 7.0).collect(),
            ),
        ],
    )
}


/// One compressed-domain selection fixture: a column whose shape forces
/// the codec under test, plus a moderately selective predicate.
struct CompressedFixture {
    kernel: &'static str,
    col: CompressedColumn,
    pred: Predicate,
}

/// The column name compressed fixtures use.
const CCOL: &str = "c";

/// Fixtures for the three compressed-domain paths: RLE runs (sorted
/// low-cardinality ints), dictionary truth table (16-string pool), and
/// FOR+bit-packed literals (narrow-range noise, 12-bit payloads).
fn compressed_fixtures(rows: usize) -> Vec<CompressedFixture> {
    let mut rng = mix(4);
    let run = (rows / 1000).max(1);
    let rle = CompressedColumn::compress(&ColumnData::Int32(
        (0..rows).map(|i| (i / run) as i32).collect(),
    ));
    assert_eq!(rle.codec(), "rle");
    let pool: Vec<String> = (0..16).map(|i| format!("r{i:02}")).collect();
    let dict = CompressedColumn::compress(&ColumnData::Str(DictColumn::from_strings(
        (0..rows).map(|_| pool[(rng() % 16) as usize].clone()),
    )));
    assert_eq!(dict.codec(), "for-bitpack");
    let bitpack = CompressedColumn::compress(&ColumnData::Int32(
        (0..rows).map(|_| (rng() % 4096) as i32 - 2048).collect(),
    ));
    assert_eq!(bitpack.codec(), "for-bitpack");
    vec![
        CompressedFixture {
            kernel: "select_compressed_rle",
            col: rle,
            pred: Predicate::between(CCOL, 100, 399),
        },
        CompressedFixture {
            kernel: "select_compressed_dict",
            col: dict,
            pred: Predicate::in_list(CCOL, ["r01", "r07", "r12"]),
        },
        CompressedFixture {
            kernel: "select_compressed_bitpack",
            col: bitpack,
            pred: Predicate::between(CCOL, -512, 511),
        },
    ]
}

/// Decompress-then-select reference for a compressed fixture: qualifying
/// positions through the scalar selection-vector path.
fn decompress_select(col: &CompressedColumn, pred: &Predicate) -> Vec<u32> {
    let dec = col.decompress();
    let dt = match &dec {
        ColumnData::Int32(_) => DataType::Int32,
        ColumnData::Int64(_) => DataType::Int64,
        ColumnData::Float64(_) => DataType::Float64,
        ColumnData::Str(_) => DataType::Str,
    };
    let chunk = Chunk::new(vec![Field::new(CCOL, dt)], vec![dec]);
    pred.evaluate_selvec(&chunk, None).unwrap().positions().to_vec()
}

/// Best-of-`ITERS` wall-clock seconds for `f` (after one warm-up pass).
fn time_best<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let out = f();
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (out, best)
}

struct Measurement {
    kernel: &'static str,
    rows: usize,
    baseline_rows_per_sec: f64,
    variant_rows_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.variant_rows_per_sec / self.baseline_rows_per_sec
    }
}

/// Serial baselines for one input size. Re-timed inside every worker
/// sweep entry, adjacent to the variants they are compared against: a
/// baseline timed once up front sees a different allocator/page-cache
/// state than variants timed minutes later, which showed up as a
/// systematic ~15% bias on identical code paths.
struct Baselines {
    select: (Chunk, f64),
    join: (Chunk, f64),
    agg: (Chunk, f64),
    fused_agg: (Chunk, f64),
    fused_probe: (Chunk, f64),
}

fn worker_sweep() -> Vec<usize> {
    match std::env::var("ROBUSTQ_WORKERS").ok().and_then(|v| v.parse().ok()) {
        Some(w) => vec![w],
        None => vec![1, 2, 4, 8],
    }
}

/// Row counts to measure and whether results should be persisted
/// (`ROBUSTQ_BENCH_ROWS` selects a smoke run: measured and verified, not
/// written to the JSON).
fn bench_sizes() -> (Vec<usize>, bool) {
    match std::env::var("ROBUSTQ_BENCH_ROWS").ok().and_then(|v| v.parse().ok()) {
        Some(rows) => (vec![rows], false),
        None => (SIZES.to_vec(), true),
    }
}

fn main() {
    let sweep = worker_sweep();
    let (sizes, write_json) = bench_sizes();
    let started = Instant::now();
    // results[i] collects the measurements for sweep[i].
    let mut results: Vec<Vec<Measurement>> = sweep.iter().map(|_| Vec::new()).collect();

    // One JSON object per (size, compressed bench column): codec + ratio.
    let mut comp_meta: Vec<String> = Vec::new();

    for &rows in &sizes {
        let cfix = compressed_fixtures(rows);
        for fx in &cfix {
            let raw = fx.col.decompress().byte_size();
            let comp = fx.col.bytes();
            comp_meta.push(format!(
                "{{\"rows\": {}, \"kernel\": {}, \"codec\": {}, \
                 \"raw_bytes\": {}, \"compressed_bytes\": {}, \"ratio\": {:.4}}}",
                rows,
                json_str(fx.kernel),
                json_str(fx.col.codec()),
                raw,
                comp,
                comp as f64 / raw as f64
            ));
        }
        let sel_chunk = selection_chunk(rows);
        let sel_pred = Predicate::and([
            Predicate::between("discount", 4, 6),
            Predicate::between("quantity", 26, 35),
        ]);
        let (build, probe) = join_sides(rows);
        let v_pred = Predicate::between("v", 0, 499);
        let agg_chunk = aggregation_chunk(rows);
        let group_by = vec!["g".to_string()];
        let aggs = vec![AggSpec::sum(Expr::col("v"), "sum"), AggSpec::count("cnt")];

        for (i, &workers) in sweep.iter().enumerate() {
            let base = Baselines {
                select: time_best(|| {
                    ops::select::select(&sel_chunk, &sel_pred).unwrap()
                }),
                join: time_best(|| {
                    ops::join::hash_join(&build, &probe, "pk", "fk", JoinKind::Inner)
                        .unwrap()
                }),
                agg: time_best(|| {
                    ops::agg::aggregate(&agg_chunk, &group_by, &aggs).unwrap()
                }),
                // The fused baselines are the pre-selection-vector pipelines:
                // mask select + gather, then the downstream kernel on the
                // materialized intermediate.
                fused_agg: time_best(|| {
                    let filtered =
                        ops::select::select_via_mask(&agg_chunk, &v_pred).unwrap();
                    ops::agg::aggregate(&filtered, &group_by, &aggs).unwrap()
                }),
                fused_probe: time_best(|| {
                    let filtered =
                        ops::select::select_via_mask(&probe, &v_pred).unwrap();
                    ops::join::hash_join(&build, &filtered, "pk", "fk", JoinKind::Inner)
                        .unwrap()
                }),
            };
            let ctx = ParallelCtx::serial().with_workers(workers);
            let mut push = |kernel: &'static str,
                            baseline: &(Chunk, f64),
                            variant: (Chunk, f64)| {
                assert_eq!(
                    baseline.0, variant.0,
                    "{kernel}/{rows}@{workers}w: variant diverged from baseline \
                     (checksums {:#x} vs {:#x})",
                    baseline.0.checksum(),
                    variant.0.checksum(),
                );
                results[i].push(Measurement {
                    kernel,
                    rows,
                    baseline_rows_per_sec: rows as f64 / baseline.1,
                    variant_rows_per_sec: rows as f64 / variant.1,
                });
            };

            push(
                "select",
                &base.select,
                time_best(|| parallel::select(&sel_chunk, &sel_pred, ctx).unwrap()),
            );
            push(
                "join_probe",
                &base.join,
                time_best(|| {
                    parallel::hash_join(&build, &probe, "pk", "fk", JoinKind::Inner, ctx)
                        .unwrap()
                }),
            );
            push(
                "aggregate",
                &base.agg,
                time_best(|| {
                    parallel::aggregate(&agg_chunk, &group_by, &aggs, ctx).unwrap()
                }),
            );
            push(
                "fused_select_aggregate",
                &base.fused_agg,
                time_best(|| {
                    parallel::fused_filter_aggregate(
                        &agg_chunk, &v_pred, &group_by, &aggs, ctx,
                    )
                    .unwrap()
                }),
            );
            push(
                "fused_select_probe",
                &base.fused_probe,
                time_best(|| {
                    parallel::fused_filter_probe(
                        &build,
                        &probe,
                        &v_pred,
                        "pk",
                        "fk",
                        JoinKind::Inner,
                        ctx,
                    )
                    .unwrap()
                }),
            );

            // Compressed-domain selection vs decompress-then-select. These
            // are worker-independent; re-timing them per sweep entry keeps
            // the JSON shape uniform and feeds the same regression gate.
            for fx in &cfix {
                let base = time_best(|| decompress_select(&fx.col, &fx.pred));
                let variant = time_best(|| {
                    select_compressed(&fx.col, CCOL, &fx.pred).unwrap().positions
                });
                assert_eq!(
                    base.0, variant.0,
                    "{}/{rows}@{workers}w: compressed-domain positions diverge \
                     from decompress-then-select",
                    fx.kernel
                );
                results[i].push(Measurement {
                    kernel: fx.kernel,
                    rows,
                    baseline_rows_per_sec: rows as f64 / base.1,
                    variant_rows_per_sec: rows as f64 / variant.1,
                });
            }
        }
    }

    println!(
        "{:<24} {:>10} {:>8} {:>16} {:>16} {:>9}",
        "kernel", "rows", "workers", "baseline rows/s", "variant rows/s", "speedup"
    );
    for (i, &workers) in sweep.iter().enumerate() {
        for m in &results[i] {
            println!(
                "{:<24} {:>10} {:>8} {:>16.0} {:>16.0} {:>8.2}x",
                m.kernel,
                m.rows,
                workers,
                m.baseline_rows_per_sec,
                m.variant_rows_per_sec,
                m.speedup()
            );
        }
    }

    let mut json = String::from("{\n  \"entries\": [");
    for (i, &workers) in sweep.iter().enumerate() {
        let ctx = ParallelCtx::serial().with_workers(workers);
        json.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json.push_str(&format!(
            "{{\"workers\": {}, \"morsel_rows\": {}, \"min_rows_per_worker\": {}, \
             \"results\": [",
            workers, ctx.morsel_rows, ctx.min_rows_per_worker
        ));
        for (j, m) in results[i].iter().enumerate() {
            json.push_str(if j == 0 { "\n      " } else { ",\n      " });
            json.push_str(&format!(
                "{{\"kernel\": {}, \"rows\": {}, \"baseline_rows_per_sec\": {:.0}, \
                 \"variant_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
                json_str(m.kernel),
                m.rows,
                m.baseline_rows_per_sec,
                m.variant_rows_per_sec,
                m.speedup()
            ));
        }
        json.push_str("\n    ]}");
    }
    json.push_str("\n  ],\n  \"compression\": [");
    for (i, m) in comp_meta.iter().enumerate() {
        json.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json.push_str(m);
    }
    json.push_str("\n  ]\n}\n");

    if write_json {
        // crates/bench/ -> repository root.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        std::fs::write(path, &json).expect("write BENCH_kernels.json");
        eprintln!(
            "kernel benches done in {:.1}s (workers {:?}); wrote BENCH_kernels.json",
            started.elapsed().as_secs_f64(),
            sweep
        );
    } else {
        eprintln!(
            "kernel bench smoke done in {:.1}s (workers {:?}, sizes {:?}); \
             all variants bit-identical to baselines",
            started.elapsed().as_secs_f64(),
            sweep,
            sizes
        );
    }
}
