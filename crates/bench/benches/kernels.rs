//! `cargo bench --bench kernels` — wall-clock throughput of the hot CPU
//! kernels, serial vs morsel-parallel, at 1M and 10M rows.
//!
//! A custom harness (not Criterion — the build is offline): each kernel
//! runs a warm-up pass plus `ITERS` timed passes and reports the best
//! pass as rows/sec. Parallel outputs are verified bit-identical to
//! serial before timing. Results are printed as a table and written to
//! `BENCH_kernels.json` at the repository root so the perf trajectory is
//! tracked across commits.
//!
//! Worker count comes from `ROBUSTQ_WORKERS` (default: all hardware
//! threads). On a single-core host the parallel path degenerates to one
//! worker and speedups hover around 1×; the ≥2× target applies on
//! multi-core hosts with ≥4 workers.

use robustq_bench::table::json_str;
use robustq_engine::expr::Expr;
use robustq_engine::ops;
use robustq_engine::parallel;
use robustq_engine::plan::{AggSpec, JoinKind};
use robustq_engine::predicate::Predicate;
use robustq_engine::Chunk;
use robustq_storage::{ColumnData, DataType, Field};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 2] = [1_000_000, 10_000_000];
const ITERS: usize = 3;

/// Deterministic pseudo-random stream (SplitMix64) for bench data.
fn mix(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn selection_chunk(rows: usize) -> Chunk {
    let mut rng = mix(1);
    Chunk::new(
        vec![
            Field::new("discount", DataType::Int32),
            Field::new("quantity", DataType::Int32),
        ],
        vec![
            ColumnData::Int32((0..rows).map(|_| (rng() % 11) as i32).collect()),
            ColumnData::Int32((0..rows).map(|_| (rng() % 50) as i32).collect()),
        ],
    )
}

fn join_sides(rows: usize) -> (Chunk, Chunk) {
    let build_rows = rows / 10;
    let mut rng = mix(2);
    let build = Chunk::new(
        vec![Field::new("pk", DataType::Int64)],
        vec![ColumnData::Int64((0..build_rows as i64).collect())],
    );
    let probe = Chunk::new(
        vec![
            Field::new("fk", DataType::Int64),
            Field::new("v", DataType::Float64),
        ],
        vec![
            // ~2/3 of probe keys hit the build side.
            ColumnData::Int64(
                (0..rows)
                    .map(|_| (rng() % (build_rows as u64 * 3 / 2)) as i64)
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|_| (rng() % 1000) as f64).collect()),
        ],
    );
    (build, probe)
}

fn aggregation_chunk(rows: usize) -> Chunk {
    let mut rng = mix(3);
    Chunk::new(
        vec![
            Field::new("g", DataType::Int32),
            Field::new("v", DataType::Float64),
        ],
        vec![
            ColumnData::Int32((0..rows).map(|_| (rng() % 1024) as i32).collect()),
            ColumnData::Float64(
                (0..rows).map(|_| (rng() % 10_000) as f64 / 7.0).collect(),
            ),
        ],
    )
}

/// Best-of-`ITERS` wall-clock seconds for `f` (after one warm-up pass).
fn time_best(mut f: impl FnMut() -> Chunk) -> (Chunk, f64) {
    let out = f();
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (out, best)
}

struct Measurement {
    kernel: &'static str,
    rows: usize,
    serial_rows_per_sec: f64,
    parallel_rows_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.parallel_rows_per_sec / self.serial_rows_per_sec
    }
}

fn measure(
    kernel: &'static str,
    rows: usize,
    serial: impl FnMut() -> Chunk,
    parallel: impl FnMut() -> Chunk,
) -> Measurement {
    let (serial_out, serial_best) = time_best(serial);
    let (parallel_out, parallel_best) = time_best(parallel);
    assert_eq!(
        serial_out, parallel_out,
        "{kernel}/{rows}: parallel result diverged from serial"
    );
    Measurement {
        kernel,
        rows,
        serial_rows_per_sec: rows as f64 / serial_best,
        parallel_rows_per_sec: rows as f64 / parallel_best,
    }
}

fn main() {
    let ctx = robustq_bench::machine::parallel_ctx();
    let started = Instant::now();
    let mut results = Vec::new();

    for rows in SIZES {
        let chunk = selection_chunk(rows);
        let pred = Predicate::and([
            Predicate::between("discount", 4, 6),
            Predicate::between("quantity", 26, 35),
        ]);
        results.push(measure(
            "select",
            rows,
            || ops::select::select(&chunk, &pred).unwrap(),
            || parallel::select(&chunk, &pred, ctx).unwrap(),
        ));

        let (build, probe) = join_sides(rows);
        results.push(measure(
            "join_probe",
            rows,
            || ops::join::hash_join(&build, &probe, "pk", "fk", JoinKind::Inner).unwrap(),
            || {
                parallel::hash_join(&build, &probe, "pk", "fk", JoinKind::Inner, ctx)
                    .unwrap()
            },
        ));

        let agg_chunk = aggregation_chunk(rows);
        let group_by = vec!["g".to_string()];
        let aggs = vec![
            AggSpec::sum(Expr::col("v"), "sum"),
            AggSpec::count("cnt"),
        ];
        results.push(measure(
            "aggregate",
            rows,
            || ops::agg::aggregate(&agg_chunk, &group_by, &aggs).unwrap(),
            || parallel::aggregate(&agg_chunk, &group_by, &aggs, ctx).unwrap(),
        ));
    }

    println!(
        "{:<12} {:>10} {:>16} {:>16} {:>9}",
        "kernel", "rows", "serial rows/s", "parallel rows/s", "speedup"
    );
    for m in &results {
        println!(
            "{:<12} {:>10} {:>16.0} {:>16.0} {:>8.2}x",
            m.kernel, m.rows, m.serial_rows_per_sec, m.parallel_rows_per_sec,
            m.speedup()
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"workers\": {},\n", ctx.workers));
    json.push_str(&format!("  \"morsel_rows\": {},\n", ctx.morsel_rows));
    json.push_str("  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        json.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json.push_str(&format!(
            "{{\"kernel\": {}, \"rows\": {}, \"serial_rows_per_sec\": {:.0}, \
             \"parallel_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            json_str(m.kernel),
            m.rows,
            m.serial_rows_per_sec,
            m.parallel_rows_per_sec,
            m.speedup()
        ));
    }
    json.push_str("\n  ]\n}\n");

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    eprintln!(
        "kernel benches done in {:.1}s ({} workers); wrote BENCH_kernels.json",
        started.elapsed().as_secs_f64(),
        ctx.workers
    );
}
