//! Shared CLI parsing for the bench binaries.
//!
//! Every sweep bin used to hand-roll the same `while let Some(flag)`
//! loop with per-flag `parse().map_err(...)` plumbing and stringly
//! errors. This module factors the mechanics into two pieces:
//!
//! * [`ArgStream`] — a cursor over `std::env::args()` with typed value
//!   extraction ([`ArgStream::parsed`], [`ArgStream::parsed_list`]),
//!   reporting failures as [`EngineError::Config`].
//! * [`CommonArgs`] — the flags shared across bins (`--out`, `--trace`,
//!   `--seeds`, `--ks`, `--rows`, `--users`), parsed *identically*
//!   everywhere: a bin constructs one with its defaults, offers every
//!   flag to [`CommonArgs::accept`] first, and only matches on its own
//!   bin-specific flags.
//!
//! ```no_run
//! use robustq_bench::args::{ArgStream, CommonArgs};
//! # fn main() -> Result<(), robustq_engine::EngineError> {
//! let mut common = CommonArgs::new("BENCH_example.json");
//! let mut shard = false;
//! let mut it = ArgStream::from_env();
//! while let Some(flag) = it.next_flag() {
//!     if common.accept(&flag, &mut it)? {
//!         continue;
//!     }
//!     match flag.as_str() {
//!         "--shard" => shard = true,
//!         other => return Err(ArgStream::unknown_flag(other)),
//!     }
//! }
//! # Ok(()) }
//! ```

use std::fmt::Display;
use std::str::FromStr;

use robustq_engine::EngineError;

/// A cursor over the process' CLI arguments (program name skipped).
#[derive(Debug)]
pub struct ArgStream {
    it: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// A stream over `std::env::args()`, program name skipped.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// A stream over explicit arguments (tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        ArgStream { it: args.into_iter().collect::<Vec<_>>().into_iter() }
    }

    /// The next argument, expected to be a flag (or positional operand).
    pub fn next_flag(&mut self) -> Option<String> {
        self.it.next()
    }

    /// The value operand of flag `name`.
    pub fn value(&mut self, name: &str) -> Result<String, EngineError> {
        self.it
            .next()
            .ok_or_else(|| EngineError::config(format!("{name} needs a value")))
    }

    /// The value operand of flag `name`, parsed as `T`.
    pub fn parsed<T: FromStr>(&mut self, name: &str) -> Result<T, EngineError>
    where
        T::Err: Display,
    {
        self.value(name)?
            .parse()
            .map_err(|e| EngineError::config(format!("{name}: {e}")))
    }

    /// The value operand of flag `name`, parsed as a non-empty
    /// comma-separated list of `T`.
    pub fn parsed_list<T: FromStr>(&mut self, name: &str) -> Result<Vec<T>, EngineError>
    where
        T::Err: Display,
    {
        let list: Vec<T> = self
            .value(name)?
            .split(',')
            .map(|v| v.parse().map_err(|e| EngineError::config(format!("{name}: {e}"))))
            .collect::<Result<_, _>>()?;
        if list.is_empty() {
            return Err(EngineError::config(format!("{name} needs a comma list")));
        }
        Ok(list)
    }

    /// The error every bin reports for an unrecognized flag.
    pub fn unknown_flag(flag: &str) -> EngineError {
        EngineError::config(format!("unknown flag {flag:?}"))
    }
}

/// The flags shared by the sweep bins, with per-bin defaults.
///
/// Semantics are identical everywhere: `--out PATH` (result JSON),
/// `--trace PATH` (Chrome export), `--seeds N` (chaos seed count),
/// `--ks A,B,..` (co-processor counts, each ≥ 1), `--rows N` (rows per
/// scale factor), `--users N` (closed-loop sessions).
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Output path for the result JSON document.
    pub out: String,
    /// Chrome trace export path (`--trace`), when requested.
    pub trace: Option<String>,
    /// Number of chaos seeds to sweep.
    pub seeds: u64,
    /// Co-processor counts to sweep.
    pub ks: Vec<usize>,
    /// Rows per scale factor for the generated database.
    pub rows: usize,
    /// Parallel closed-loop user sessions.
    pub users: usize,
}

impl CommonArgs {
    /// Shared flags with defaults: result JSON to `out`, no trace,
    /// 100 seeds, K ∈ {1, 2, 4}, 8 000 rows, 4 users.
    pub fn new(out: &str) -> Self {
        CommonArgs {
            out: out.to_string(),
            trace: None,
            seeds: 100,
            ks: vec![1, 2, 4],
            rows: 8_000,
            users: 4,
        }
    }

    /// Override the default seed count.
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Override the default K list.
    pub fn with_ks(mut self, ks: &[usize]) -> Self {
        self.ks = ks.to_vec();
        self
    }

    /// Override the default row count.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Override the default user count.
    pub fn with_users(mut self, users: usize) -> Self {
        self.users = users;
        self
    }

    /// Consume `flag` if it is one of the shared flags, pulling its
    /// value from `it`. Returns `Ok(false)` for bin-specific flags.
    pub fn accept(&mut self, flag: &str, it: &mut ArgStream) -> Result<bool, EngineError> {
        match flag {
            "--out" => self.out = it.value("--out")?,
            "--trace" => self.trace = Some(it.value("--trace")?),
            "--seeds" => self.seeds = it.parsed("--seeds")?,
            "--ks" => {
                self.ks = it.parsed_list("--ks")?;
                if self.ks.contains(&0) {
                    return Err(EngineError::config(
                        "--ks needs a comma list of counts ≥ 1",
                    ));
                }
            }
            "--rows" => self.rows = it.parsed("--rows")?,
            "--users" => self.users = it.parsed("--users")?,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(args: &[&str]) -> ArgStream {
        ArgStream::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn common_flags_parse_identically() {
        let mut common = CommonArgs::new("default.json");
        let mut it = stream(&[
            "--out", "o.json", "--trace", "t.json", "--seeds", "7", "--ks", "1,2",
            "--rows", "500", "--users", "3",
        ]);
        while let Some(flag) = it.next_flag() {
            assert!(common.accept(&flag, &mut it).unwrap(), "{flag} is shared");
        }
        assert_eq!(common.out, "o.json");
        assert_eq!(common.trace.as_deref(), Some("t.json"));
        assert_eq!(common.seeds, 7);
        assert_eq!(common.ks, vec![1, 2]);
        assert_eq!(common.rows, 500);
        assert_eq!(common.users, 3);
    }

    #[test]
    fn bin_specific_flags_fall_through() {
        let mut common = CommonArgs::new("x.json");
        let mut it = stream(&["--shard"]);
        let flag = it.next_flag().unwrap();
        assert!(!common.accept(&flag, &mut it).unwrap());
    }

    #[test]
    fn bad_values_are_config_errors() {
        let mut common = CommonArgs::new("x.json");
        let mut it = stream(&["--users", "many"]);
        let flag = it.next_flag().unwrap();
        let err = common.accept(&flag, &mut it).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");

        let mut it = stream(&["1,0"]);
        let err = common.accept("--ks", &mut it).unwrap_err();
        assert!(err.to_string().contains("≥ 1"), "{err}");

        let mut it = stream(&[]);
        let err = common.accept("--out", &mut it).unwrap_err();
        assert!(err.to_string().contains("needs a value"), "{err}");
    }

    #[test]
    fn typed_list_parsing() {
        let mut it = stream(&["--rates", "1.5,2.5"]);
        assert_eq!(it.next_flag().as_deref(), Some("--rates"));
        let rates: Vec<f64> = it.parsed_list("--rates").unwrap();
        assert_eq!(rates, vec![1.5, 2.5]);
    }
}
