//! Streaming sweep: standing-query windows over an append feed,
//! strategy × window period × K co-processors.
//!
//! The open-loop sweep (`loadgen`) measures ad-hoc tail latency under
//! load; this sweep measures what a *streaming* deployment cares about —
//! how stale a standing result gets. Each sweep point replays the
//! SSB-stream feed (DESIGN.md §16) in virtual time, fires two standing
//! SSB queries (Q1.1 tumbling, Q3.3 sliding over twice the period) per
//! window tick, and interleaves a Poisson ad-hoc arrival stream so the
//! ticks compete for admission like any other query. Results land in
//! `BENCH_streaming.json`; `bench-diff --streaming` then gates the
//! robustness claim (Data-Driven Chopping's tick p99 must not exceed
//! GPU Only's at the tightest window period).
//!
//! ```text
//! cargo run -p robustq-bench --release --bin streaming
//! cargo run -p robustq-bench --release --bin streaming -- --windows-us 500,1000 --ks 1,2
//! cargo run -p robustq-bench --release --bin streaming -- --trace streaming-trace.json
//! ```
//!
//! Shared flags (`--out`, `--trace`, `--ks`, `--rows`, `--users`) parse
//! as everywhere else in the bench suite; `--users` is the admission
//! limit. `--windows-us` lists the window periods to sweep
//! (microseconds of virtual time), `--rate` the background Poisson
//! arrival rate, `--batches` the number of feed append batches (one
//! tumbling tick ingests exactly one batch).
//!
//! `--trace PATH` traces the tightest-window max-K Data-Driven Chopping
//! run and writes its Chrome export to PATH (the feed lane's `Append` /
//! `WindowFire` instants ride along; CI feeds it to `trace-lint`).

use robustq::prelude::*;
use robustq_bench::args::{ArgStream, CommonArgs};
use robustq_bench::table::{tables_json, FigTable};
use robustq_workloads::{ssb, SsbQuery, SsbStreamGen};

struct Args {
    common: CommonArgs,
    windows_us: Vec<u64>,
    rate: f64,
    batches: usize,
    seal_rows: usize,
    seed: u64,
    queue_cap: usize,
    theta: f64,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args {
        common: CommonArgs::new("BENCH_streaming.json"),
        windows_us: vec![500, 1_000, 2_000],
        rate: 50_000.0,
        batches: 8,
        seal_rows: 512,
        seed: 42,
        queue_cap: 32,
        theta: 0.8,
    };
    let mut it = ArgStream::from_env();
    while let Some(flag) = it.next_flag() {
        if args.common.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--windows-us" => {
                args.windows_us = it.parsed_list("--windows-us")?;
                if args.windows_us.contains(&0) {
                    return Err(EngineError::config(
                        "--windows-us needs a comma list of periods ≥ 1",
                    ));
                }
            }
            "--rate" => {
                args.rate = it.parsed("--rate")?;
                if args.rate < 0.0 {
                    return Err(EngineError::config("--rate must be ≥ 0"));
                }
            }
            "--batches" => args.batches = it.parsed("--batches")?,
            "--seal-rows" => args.seal_rows = it.parsed("--seal-rows")?,
            "--seed" => args.seed = it.parsed("--seed")?,
            "--queue-cap" => args.queue_cap = it.parsed("--queue-cap")?,
            "--theta" => args.theta = it.parsed("--theta")?,
            other => return Err(ArgStream::unknown_flag(other)),
        }
    }
    Ok(args)
}

fn ms(t: VirtualTime) -> String {
    format!("{:.3}", t.as_secs_f64() * 1e3)
}

fn push_row(table: &mut FigTable, k: usize, window_us: u64, report: &StreamingReport) {
    table.push_row([
        k.to_string(),
        report.strategy.to_string(),
        format!("{:.3}", window_us as f64 / 1e3),
        report.offered_ticks.to_string(),
        report.window_outcomes.len().to_string(),
        report.offered_arrivals.to_string(),
        report.shed.to_string(),
        ms(report.tick_percentile(50.0)),
        ms(report.tick_p99()),
        ms(report.arrival_percentile(99.0)),
    ]);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("streaming: {e}");
            std::process::exit(2);
        }
    };
    let max_k = *args.common.ks.iter().max().expect("ks non-empty");
    let min_window = *args.windows_us.iter().min().expect("windows non-empty");

    let data = SsbStreamGen::new(1)
        .with_rows_per_sf(args.common.rows)
        .with_batches(args.batches)
        .with_seal_rows(args.seal_rows)
        .build()
        .expect("SSB-stream build");
    let mix =
        QueryMix::zipf(ssb::workload(&data.db).expect("SSB plans"), args.theta);
    // Same tight-cache regime as the serving sweep, so appends actually
    // evict staged columns and placement quality shows in the tick tail.
    let base_sim = SimConfig::default()
        .with_gpu_memory(2 * 1024 * 1024)
        .with_gpu_cache(256 * 1024);
    let strategies =
        [Strategy::GpuPreferred, Strategy::Chopping, Strategy::DataDrivenChopping];

    let mut table = FigTable::new(
        "streaming-ssb",
        "SSB-stream standing queries: window-tick latency vs window period",
    )
    .with_columns([
        "K",
        "Strategy",
        "Window [ms]",
        "Ticks",
        "Ticks done",
        "Arrivals",
        "Shed",
        "Tick p50 [ms]",
        "Tick p99 [ms]",
        "Arrival p99 [ms]",
    ]);
    let mut failures = 0u64;

    for &k in &args.common.ks {
        let sim = base_sim.clone().with_coprocessors(k);
        let runner = ServingRunner::new(&data.db, sim);
        for &window_us in &args.windows_us {
            let period = VirtualTime::from_micros(window_us);
            let ticks = args.batches as u32;
            // One batch per tumbling tick; horizon leaves the last tick
            // room to drain.
            let horizon =
                VirtualTime::from_nanos(period.as_nanos() * (ticks as u64 + 2));
            let feed = data.feed_schedule(period, period);
            let standing = vec![
                data.standing_query(SsbQuery::Q1_1, WindowKind::Tumbling, period, ticks)
                    .expect("Q1.1 plans"),
                data.standing_query(
                    SsbQuery::Q3_3,
                    WindowKind::Sliding {
                        length: VirtualTime::from_nanos(2 * period.as_nanos()),
                    },
                    period,
                    ticks,
                )
                .expect("Q3.3 plans"),
            ];
            for strategy in strategies {
                let trace_this = args.common.trace.is_some()
                    && k == max_k
                    && window_us == min_window
                    && strategy == Strategy::DataDrivenChopping;
                let mut cfg = ServeConfig::new(
                    ArrivalProcess::Poisson { rate_qps: args.rate },
                    horizon,
                )
                .with_seed(args.seed)
                .with_admission_limit(args.common.users)
                .with_queue_cap(args.queue_cap);
                if trace_this {
                    cfg = cfg.with_trace();
                }
                let report = runner
                    .run_streaming(&mix, feed.clone(), standing.clone(), strategy, &cfg)
                    .expect("sweep run");
                let offered = report.offered_arrivals + report.offered_ticks;
                if offered != report.completed() + report.shed as usize {
                    eprintln!(
                        "streaming: FAIL: K={k} window={window_us}us {}: offered \
                         {offered} != completed {} + shed {}",
                        report.strategy,
                        report.completed(),
                        report.shed,
                    );
                    failures += 1;
                }
                if report.window_outcomes.is_empty() {
                    eprintln!(
                        "streaming: FAIL: K={k} window={window_us}us {}: no window \
                         tick completed",
                        report.strategy,
                    );
                    failures += 1;
                }
                push_row(&mut table, k, window_us, &report);
                if trace_this {
                    let path = args.common.trace.as_deref().expect("trace path");
                    let data = report.trace.as_ref().expect("traced run records");
                    if data.dropped > 0 {
                        eprintln!(
                            "streaming: FAIL: trace ring overflowed ({} dropped)",
                            data.dropped
                        );
                        failures += 1;
                    }
                    let registry =
                        report.metrics_registry().expect("traced run has metrics");
                    if registry.counter("appends") == 0
                        || registry.counter("window_fires") == 0
                    {
                        eprintln!(
                            "streaming: FAIL: traced run recorded no appends or \
                             window fires"
                        );
                        failures += 1;
                    }
                    let chrome = report.chrome_trace().expect("traced run exports");
                    if let Err(e) = std::fs::write(path, &chrome) {
                        eprintln!("streaming: cannot write {path}: {e}");
                        failures += 1;
                    } else {
                        println!(
                            "trace: {path} (K={k}, window={window_us}us, {} events)",
                            data.events.len()
                        );
                    }
                }
            }
        }
    }

    println!("{table}");
    if let Err(e) =
        std::fs::write(&args.common.out, tables_json(std::slice::from_ref(&table)))
    {
        eprintln!("streaming: cannot write {}: {e}", args.common.out);
        failures += 1;
    } else {
        println!("wrote {}", args.common.out);
    }

    if failures > 0 {
        eprintln!("streaming: {failures} failure(s)");
        std::process::exit(1);
    }
}
