//! Chaos sweep over seeded fault plans (DESIGN.md §8).
//!
//! Runs a workload once fault-free, then once per seed under a seeded
//! [`FaultPlan`], and checks the differential and accounting invariants
//! after every run. Exit status 1 if any invariant is violated.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin chaos
//! cargo run -p robustq-bench --release --bin chaos -- --seeds 200 --base-seed 0
//! cargo run -p robustq-bench --release --bin chaos -- --workload micro --users 4
//! cargo run -p robustq-bench --release --bin chaos -- --trace chaos-trace.json
//! ```
//!
//! Shared flags (`--out`, `--trace`, `--seeds`, `--ks`, `--rows`,
//! `--users`) parse as everywhere else in the bench suite: `--ks`
//! repeats the whole sweep per co-processor count (baselined per K),
//! `--rows` sizes the generated database, and the per-shape fault
//! summary is written to `--out` as a FigTable JSON document.
//!
//! `--trace PATH` traces the first faulted seed's run, cross-checks the
//! trace-derived metrics against the legacy counters (the debug-build
//! invariant, enforced here in release too), and writes the Chrome
//! `trace_event` JSON to PATH.

use std::collections::BTreeMap;

use robustq_bench::args::{ArgStream, CommonArgs};
use robustq_bench::table::{tables_json, FigTable};
use robustq_engine::EngineError;
use robustq::prelude::*;
use robustq_sim::FaultSpec;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_workloads::{micro, ssb};

struct Args {
    common: CommonArgs,
    base_seed: u64,
    workload: String,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args {
        common: CommonArgs::new("BENCH_chaos.json")
            .with_ks(&[1])
            .with_rows(1_000)
            .with_users(2),
        base_seed: 0,
        workload: "ssb".to_string(),
    };
    let mut it = ArgStream::from_env();
    while let Some(flag) = it.next_flag() {
        if args.common.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--base-seed" => args.base_seed = it.parsed("--base-seed")?,
            "--workload" => args.workload = it.value("--workload")?,
            other => return Err(ArgStream::unknown_flag(other)),
        }
    }
    Ok(args)
}

/// The same five fault-model shapes the `chaos` test suite cycles over.
fn spec_for(seed: u64, horizon: VirtualTime) -> FaultSpec {
    let mut spec = FaultSpec::default();
    match seed % 5 {
        0 => spec.alloc_fail_prob = 0.25,
        1 => {
            spec.transfer_transient_prob = 0.15;
            spec.transfer_permanent_prob = 0.05;
            spec.transfer_spike_prob = 0.10;
            spec.transfer_spike_factor = 5.0;
        }
        2 => spec.kernel_abort_prob = 0.25,
        3 => {
            spec.random_stalls = 4;
            spec.stall_horizon = horizon;
            spec.stall_len = (
                VirtualTime::from_nanos(1 + horizon.as_nanos() / 50),
                VirtualTime::from_nanos(1 + horizon.as_nanos() / 10),
            );
        }
        _ => {
            spec.alloc_fail_prob = 0.05;
            spec.alloc_fail_stages = vec![2];
            spec.transfer_transient_prob = 0.05;
            spec.transfer_spike_prob = 0.05;
            spec.transfer_spike_factor = 3.0;
            spec.kernel_abort_prob = 0.05;
            spec.random_stalls = 1;
            spec.stall_horizon = horizon;
            spec.stall_len =
                (VirtualTime::from_nanos(1 + horizon.as_nanos() / 20), VirtualTime::ZERO);
        }
    }
    spec
}

const SHAPES: [&str; 5] = ["alloc", "transfer", "kernel", "stall", "mixed"];

/// Check every chaos invariant; returns human-readable violations.
fn check(
    report: &RunReport,
    baseline: &BTreeMap<(usize, usize), (usize, u64)>,
) -> Vec<String> {
    let m = &report.metrics;
    let mut bad = Vec::new();
    let mut push = |cond: bool, msg: String| {
        if !cond {
            bad.push(msg);
        }
    };

    push(
        report.outcomes.len() == baseline.len(),
        format!("outcome count {} != {}", report.outcomes.len(), baseline.len()),
    );
    for o in &report.outcomes {
        match baseline.get(&(o.session, o.seq)) {
            Some(&(rows, checksum)) => {
                push(
                    o.rows == rows && o.checksum == checksum,
                    format!("query ({}, {}) result drifted under faults", o.session, o.seq),
                );
            }
            None => push(false, format!("unknown slot ({}, {})", o.session, o.seq)),
        }
    }
    push(m.gpu_heap_leaked == 0, format!("heap leaked {} bytes", m.gpu_heap_leaked));
    push(m.h2d_bytes == m.link_h2d.bytes, "H2D byte accounting split".into());
    push(m.d2h_bytes == m.link_d2h.bytes, "D2H byte accounting split".into());
    push(m.h2d_time == m.link_h2d.busy_time, "H2D time accounting split".into());
    push(m.d2h_time == m.link_d2h.busy_time, "D2H time accounting split".into());
    push(
        m.faults.injected == m.fault_stats.injected,
        format!(
            "executor injected {} != plan injected {}",
            m.faults.injected, m.fault_stats.injected
        ),
    );
    push(
        m.faults.retries <= m.fault_stats.transfer_transient,
        "more retries than transient faults".into(),
    );
    push(m.aborts >= m.faults.fallbacks, "fallbacks without aborts".into());
    push(m.wasted_time <= m.total_device_time(), "wasted time exceeds device time".into());
    bad
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };

    let db: Database =
        SsbGenerator::new(1).with_rows_per_sf(args.common.rows).generate();
    let queries: Vec<PlanNode> = match args.workload.as_str() {
        "ssb" => ssb::workload(&db).expect("SSB plans"),
        "micro" => micro::parallel_selection_workload(12),
        other => {
            eprintln!("chaos: unknown workload {other:?}; known: ssb, micro");
            std::process::exit(2);
        }
    };

    println!(
        "chaos: workload={} users={} seeds={}..{} ks={:?}",
        args.workload,
        args.common.users,
        args.base_seed,
        args.base_seed + args.common.seeds,
        args.common.ks,
    );

    // Totals per fault-model shape, printed as a deterministic summary.
    let mut injected = [0u64; 5];
    let mut retries = [0u64; 5];
    let mut fallbacks = [0u64; 5];
    let mut runs = [0u64; 5];
    let mut violations = 0u64;
    for (ki, &k) in args.common.ks.iter().enumerate() {
        let sim = SimConfig::default()
            .with_gpu_memory(512 * 1024)
            .with_gpu_cache(256 * 1024)
            .with_coprocessors(k);
        let runner = WorkloadRunner::new(&db, sim);
        let cfg = RunnerConfig::default().with_users(args.common.users);
        let baseline = runner
            .run(&queries, Strategy::GpuPreferred, &cfg)
            .expect("fault-free baseline run");
        let map: BTreeMap<(usize, usize), (usize, u64)> = baseline
            .outcomes
            .iter()
            .map(|o| ((o.session, o.seq), (o.rows, o.checksum)))
            .collect();
        let horizon = baseline.metrics.makespan.max(VirtualTime::from_micros(1));

        for i in 0..args.common.seeds {
            let seed = args.base_seed + i;
            let shape = (seed % 5) as usize;
            let plan = FaultPlan::new(seed, spec_for(seed, horizon));
            let mut cfg = RunnerConfig::default()
                .with_users(args.common.users)
                .with_fault_plan(plan);
            // Trace the first faulted seed (at the first K) when asked.
            let trace_this = args.common.trace.is_some() && ki == 0 && i == 0;
            if trace_this {
                cfg = cfg.with_trace();
            }
            let report = match runner.run(&queries, Strategy::GpuPreferred, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    println!("seed {seed}: run failed: {e}");
                    violations += 1;
                    continue;
                }
            };
            for msg in check(&report, &map) {
                println!("seed {seed}: VIOLATION: {msg}");
                violations += 1;
            }
            if trace_this {
                let path = args.common.trace.as_deref().expect("trace path present");
                let trace = report.trace.as_ref().expect("traced run records events");
                // Re-deriving metrics from a truncated stream would compare
                // garbage: a ring overflow is itself a violation.
                if trace.dropped > 0 {
                    println!(
                        "seed {seed}: VIOLATION: trace ring overflowed ({} events \
                         dropped)",
                        trace.dropped
                    );
                    violations += 1;
                }
                // The §10 reconciliation invariant, enforced in release builds.
                if RunMetrics::from_events(&trace.events) != report.metrics {
                    println!("seed {seed}: VIOLATION: trace-derived metrics diverge");
                    violations += 1;
                }
                let chrome = report.chrome_trace().expect("traced run exports");
                match std::fs::write(path, &chrome) {
                    Ok(()) => println!(
                        "seed {seed}: wrote {} events ({} dropped) to {path}",
                        trace.events.len(),
                        trace.dropped
                    ),
                    Err(e) => {
                        println!("seed {seed}: cannot write {path}: {e}");
                        violations += 1;
                    }
                }
            }
            runs[shape] += 1;
            injected[shape] += report.metrics.faults.injected;
            retries[shape] += report.metrics.faults.retries;
            fallbacks[shape] += report.metrics.faults.fallbacks;
        }
    }

    let mut table = FigTable::new(
        "chaos-faults",
        format!(
            "Chaos sweep ({} workload): injected faults, retries and fallbacks \
             per fault-model shape",
            args.workload
        ),
    )
    .with_columns(["Shape", "Runs", "Injected", "Retries", "Fallbacks"]);
    println!("shape      runs   injected   retries   fallbacks");
    for (i, name) in SHAPES.iter().enumerate() {
        println!(
            "{name:<9} {:>5} {:>10} {:>9} {:>11}",
            runs[i], injected[i], retries[i], fallbacks[i]
        );
        table.push_row([
            name.to_string(),
            runs[i].to_string(),
            injected[i].to_string(),
            retries[i].to_string(),
            fallbacks[i].to_string(),
        ]);
    }
    if let Err(e) =
        std::fs::write(&args.common.out, tables_json(std::slice::from_ref(&table)))
    {
        eprintln!("chaos: cannot write {}: {e}", args.common.out);
        violations += 1;
    } else {
        println!("wrote {}", args.common.out);
    }
    let total: u64 = injected.iter().sum();
    println!("total injected: {total}, violations: {violations}");
    if violations > 0 {
        std::process::exit(1);
    }
    if total == 0 {
        eprintln!("chaos: sweep injected nothing — vacuous configuration");
        std::process::exit(1);
    }
}
