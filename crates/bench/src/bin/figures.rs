//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin figures            # all figures
//! cargo run -p robustq-bench --release --bin figures -- fig14   # one figure
//! cargo run -p robustq-bench --release --bin figures -- --json fig14
//! cargo run -p robustq-bench --release --bin figures -- --trace out.json fig14
//! ROBUSTQ_EFFORT=full cargo run -p robustq-bench --release --bin figures
//! ```
//!
//! `--trace PATH` additionally performs one traced SSB reference run and
//! writes its Chrome `trace_event` JSON to PATH (load it in Perfetto, or
//! validate it with the `trace-lint` binary).

use robustq_bench::{
    all_figures, figure_by_id, traced_reference_run, Effort, FigTable, FIGURE_IDS,
};

fn emit(table: &FigTable, json: bool) {
    if json {
        println!("{}", table.to_json());
    } else {
        println!("{table}");
    }
}

fn main() {
    let effort = Effort::from_env();
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace needs an output path");
                    std::process::exit(2);
                }
            },
            _ => ids.push(arg),
        }
    }

    let mut failed = false;
    if ids.is_empty() && trace_path.is_none() {
        for table in all_figures(effort) {
            emit(&table, json);
        }
    } else {
        for id in &ids {
            match figure_by_id(id, effort) {
                Some(table) => emit(&table, json),
                None => {
                    eprintln!("unknown figure {id:?}; known: {}", FIGURE_IDS.join(", "));
                    failed = true;
                }
            }
        }
    }

    if let Some(path) = trace_path {
        let report = traced_reference_run(effort);
        let trace = report.trace.as_ref().expect("traced run records events");
        let chrome = report.chrome_trace().expect("traced run exports");
        if let Err(e) = std::fs::write(&path, &chrome) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} events ({} dropped) to {path}",
            trace.events.len(),
            trace.dropped
        );
    }
    if failed {
        std::process::exit(2);
    }
}
