//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin figures            # all figures
//! cargo run -p robustq-bench --release --bin figures -- fig14   # one figure
//! cargo run -p robustq-bench --release --bin figures -- --json fig14
//! cargo run -p robustq-bench --release --bin figures -- --trace out.json fig14
//! ROBUSTQ_EFFORT=full cargo run -p robustq-bench --release --bin figures
//! ```
//!
//! `--trace PATH` additionally performs one traced SSB reference run and
//! writes its Chrome `trace_event` JSON to PATH (load it in Perfetto, or
//! validate it with the `trace-lint` binary).

use robustq_bench::args::ArgStream;
use robustq_bench::{
    all_figures, figure_by_id, traced_reference_run, Effort, FigTable, FIGURE_IDS,
};
use robustq_engine::EngineError;

fn emit(table: &FigTable, json: bool) {
    if json {
        println!("{}", table.to_json());
    } else {
        println!("{table}");
    }
}

struct Args {
    json: bool,
    trace_path: Option<String>,
    ids: Vec<String>,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args { json: false, trace_path: None, ids: Vec::new() };
    let mut it = ArgStream::from_env();
    while let Some(arg) = it.next_flag() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--trace" => args.trace_path = Some(it.value("--trace")?),
            _ => args.ids.push(arg),
        }
    }
    Ok(args)
}

fn main() {
    let effort = Effort::from_env();
    let Args { json, trace_path, ids } = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("figures: {e}");
            std::process::exit(2);
        }
    };

    let mut failed = false;
    if ids.is_empty() && trace_path.is_none() {
        for table in all_figures(effort) {
            emit(&table, json);
        }
    } else {
        for id in &ids {
            match figure_by_id(id, effort) {
                Some(table) => emit(&table, json),
                None => {
                    eprintln!("unknown figure {id:?}; known: {}", FIGURE_IDS.join(", "));
                    failed = true;
                }
            }
        }
    }

    if let Some(path) = trace_path {
        let report = traced_reference_run(effort);
        let trace = report.trace.as_ref().expect("traced run records events");
        let chrome = report.chrome_trace().expect("traced run exports");
        if let Err(e) = std::fs::write(&path, &chrome) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} events ({} dropped) to {path}",
            trace.events.len(),
            trace.dropped
        );
    }
    if failed {
        std::process::exit(2);
    }
}
