//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin figures            # all figures
//! cargo run -p robustq-bench --release --bin figures -- fig14   # one figure
//! cargo run -p robustq-bench --release --bin figures -- --json fig14
//! ROBUSTQ_EFFORT=full cargo run -p robustq-bench --release --bin figures
//! ```

use robustq_bench::{all_figures, figure_by_id, Effort, FigTable, FIGURE_IDS};

fn emit(table: &FigTable, json: bool) {
    if json {
        println!("{}", table.to_json());
    } else {
        println!("{table}");
    }
}

fn main() {
    let effort = Effort::from_env();
    let mut json = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .collect();
    if args.is_empty() {
        for table in all_figures(effort) {
            emit(&table, json);
        }
        return;
    }
    let mut failed = false;
    for id in &args {
        match figure_by_id(id, effort) {
            Some(table) => emit(&table, json),
            None => {
                eprintln!("unknown figure {id:?}; known: {}", FIGURE_IDS.join(", "));
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
