//! Validate Chrome `trace_event` JSON emitted by the tracing subsystem.
//!
//! Checks each file for well-formed JSON, monotone timestamps per lane,
//! and balanced `B`/`E` span nesting (see `robustq_trace::lint_chrome_trace`).
//! Exit status 1 on any failure.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin trace-lint -- out.json
//! ```

use robustq_trace::lint_chrome_trace;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-lint FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match lint_chrome_trace(&src) {
            Ok(rep) => println!(
                "{path}: ok — {} events, {} lanes, {} complete spans, {} span pairs, {} shard spans",
                rep.events, rep.lanes, rep.complete_spans, rep.span_pairs, rep.shard_spans
            ),
            Err(e) => {
                eprintln!("{path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
