//! Open-loop serving sweep: arrival rate × strategy × K co-processors.
//!
//! The closed-loop sweeps (`figures`, `multigpu`) measure makespan on a
//! fixed query count; this sweep measures what a *serving* deployment
//! cares about — latency percentiles and goodput as the offered arrival
//! rate approaches and passes capacity (DESIGN.md §13). Each sweep
//! point runs a Poisson arrival schedule over a Zipf-skewed SSB query
//! mix through [`ServingRunner`], with admission control plus a finite
//! admission-queue cap so overload sheds instead of queueing without
//! bound. Results land in `BENCH_serving.json`; `bench-diff --serving`
//! then gates the robustness claim (Data-Driven Chopping's p99 must not
//! exceed GPU Only's at the highest tested rate).
//!
//! ```text
//! cargo run -p robustq-bench --release --bin loadgen
//! cargo run -p robustq-bench --release --bin loadgen -- --rates 200,800,3200 --ks 1,2
//! cargo run -p robustq-bench --release --bin loadgen -- --trace serving-trace.json
//! ```
//!
//! `--trace PATH` traces the highest-rate max-K Data-Driven Chopping
//! run and writes its Chrome export to PATH (CI feeds it to
//! `trace-lint` — the open-loop exporter degrades overlapping session
//! spans to complete events, which must stay lint-clean).

use robustq_core::Strategy;
use robustq_sim::{SimConfig, VirtualTime};
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_storage::Database;
use robustq_bench::table::FigTable;
use robustq_serve::{ArrivalProcess, QueryMix, ServeConfig, ServingReport, ServingRunner};
use robustq_workloads::ssb;

struct Args {
    rows: usize,
    rates: Vec<f64>,
    ks: Vec<usize>,
    horizon_ms: u64,
    sessions: usize,
    seed: u64,
    max_concurrent: usize,
    queue_cap: usize,
    theta: f64,
    out: String,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rows: 8_000,
        rates: vec![25_000.0, 100_000.0, 400_000.0],
        ks: vec![1, 2],
        horizon_ms: 50,
        sessions: 100_000,
        seed: 42,
        max_concurrent: 4,
        queue_cap: 32,
        theta: 0.8,
        out: "BENCH_serving.json".to_string(),
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rows" => {
                args.rows = value("--rows")?.parse().map_err(|e| format!("--rows: {e}"))?
            }
            "--rates" => {
                args.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.parse().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.rates.is_empty() || args.rates.iter().any(|&r| r <= 0.0) {
                    return Err("--rates needs a comma list of rates > 0".into());
                }
            }
            "--ks" => {
                args.ks = value("--ks")?
                    .split(',')
                    .map(|k| k.parse().map_err(|e| format!("--ks: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.ks.is_empty() || args.ks.contains(&0) {
                    return Err("--ks needs a comma list of counts ≥ 1".into());
                }
            }
            "--horizon-ms" => {
                args.horizon_ms = value("--horizon-ms")?
                    .parse()
                    .map_err(|e| format!("--horizon-ms: {e}"))?
            }
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--max-concurrent" => {
                args.max_concurrent = value("--max-concurrent")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent: {e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--theta" => {
                args.theta =
                    value("--theta")?.parse().map_err(|e| format!("--theta: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--trace" => args.trace = Some(value("--trace")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn ms(t: VirtualTime) -> String {
    format!("{:.3}", t.as_secs_f64() * 1e3)
}

fn push_row(table: &mut FigTable, k: usize, rate: f64, report: &ServingReport) {
    table.push_row([
        k.to_string(),
        report.strategy.to_string(),
        format!("{rate:.0}"),
        report.offered.to_string(),
        report.completed().to_string(),
        report.shed.to_string(),
        ms(report.p50()),
        ms(report.p95()),
        ms(report.p99()),
        ms(report.p999()),
        format!("{:.1}", report.qps()),
    ]);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let max_k = *args.ks.iter().max().expect("ks non-empty");
    let max_rate = args.rates.iter().cloned().fold(0.0f64, f64::max);

    let db: Database = SsbGenerator::new(1).with_rows_per_sf(args.rows).generate();
    let mix = QueryMix::zipf(ssb::workload(&db).expect("SSB plans"), args.theta);
    // Same tight-cache regime as the multigpu sweep: the fact table
    // stresses a single co-processor cache, so placement quality — not
    // raw device count — decides how the tail behaves under load.
    let base_sim =
        SimConfig::default().with_gpu_memory(2 * 1024 * 1024).with_gpu_cache(256 * 1024);
    let strategies = [Strategy::GpuPreferred, Strategy::Chopping, Strategy::DataDrivenChopping];

    let mut table = FigTable::new(
        "serving-ssb",
        "Open-loop SSB serving: latency percentiles vs Poisson arrival rate",
    )
    .with_columns([
        "K",
        "Strategy",
        "Rate [qps]",
        "Offered",
        "Completed",
        "Shed",
        "p50 [ms]",
        "p95 [ms]",
        "p99 [ms]",
        "p999 [ms]",
        "Goodput [qps]",
    ]);
    let mut failures = 0u64;

    for &k in &args.ks {
        let sim = base_sim.clone().with_coprocessors(k);
        let runner = ServingRunner::new(&db, sim);
        for &rate in &args.rates {
            for strategy in strategies {
                let trace_this = args.trace.is_some()
                    && k == max_k
                    && rate == max_rate
                    && strategy == Strategy::DataDrivenChopping;
                let mut cfg = ServeConfig::new(
                    ArrivalProcess::Poisson { rate_qps: rate },
                    VirtualTime::from_millis(args.horizon_ms),
                )
                .with_sessions(args.sessions)
                .with_seed(args.seed)
                .with_admission_limit(args.max_concurrent)
                .with_queue_cap(args.queue_cap);
                if trace_this {
                    cfg = cfg.with_trace();
                }
                let report = runner.run(&mix, strategy, &cfg).expect("sweep run");
                if report.offered != report.completed() + report.shed as usize {
                    eprintln!(
                        "loadgen: FAIL: K={k} rate={rate} {}: offered {} != \
                         completed {} + shed {}",
                        report.strategy,
                        report.offered,
                        report.completed(),
                        report.shed,
                    );
                    failures += 1;
                }
                push_row(&mut table, k, rate, &report);
                if trace_this {
                    let path = args.trace.as_deref().expect("trace path");
                    let data = report.trace.as_ref().expect("traced run records");
                    if data.dropped > 0 {
                        eprintln!(
                            "loadgen: FAIL: trace ring overflowed ({} dropped)",
                            data.dropped
                        );
                        failures += 1;
                    }
                    let chrome = report.chrome_trace().expect("traced run exports");
                    if let Err(e) = std::fs::write(path, &chrome) {
                        eprintln!("loadgen: cannot write {path}: {e}");
                        failures += 1;
                    } else {
                        println!(
                            "trace: {path} (K={k}, rate={rate}, {} events)",
                            data.events.len()
                        );
                    }
                }
            }
        }
    }

    println!("{table}");
    let mut json = String::from("{\n  \"tables\": [\n");
    for line in table.to_json().lines() {
        json.push_str("    ");
        json.push_str(line);
        json.push('\n');
    }
    json.pop();
    json.push_str("\n  ]\n}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        failures += 1;
    } else {
        println!("wrote {}", args.out);
    }

    if failures > 0 {
        eprintln!("loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
}
