//! Open-loop serving sweep: arrival rate × strategy × K co-processors.
//!
//! The closed-loop sweeps (`figures`, `multigpu`) measure makespan on a
//! fixed query count; this sweep measures what a *serving* deployment
//! cares about — latency percentiles and goodput as the offered arrival
//! rate approaches and passes capacity (DESIGN.md §13). Each sweep
//! point runs a Poisson arrival schedule over a Zipf-skewed SSB query
//! mix through [`ServingRunner`], with admission control plus a finite
//! admission-queue cap so overload sheds instead of queueing without
//! bound. Results land in `BENCH_serving.json`; `bench-diff --serving`
//! then gates the robustness claim (Data-Driven Chopping's p99 must not
//! exceed GPU Only's at the highest tested rate).
//!
//! ```text
//! cargo run -p robustq-bench --release --bin loadgen
//! cargo run -p robustq-bench --release --bin loadgen -- --rates 200,800,3200 --ks 1,2
//! cargo run -p robustq-bench --release --bin loadgen -- --trace serving-trace.json
//! ```
//!
//! Shared flags (`--out`, `--trace`, `--ks`, `--rows`, `--users`) parse
//! as everywhere else in the bench suite; `--users` is the admission
//! limit (concurrently executing queries). `--seeds` is accepted for
//! uniformity but the sweep is single-seeded (`--seed` picks it).
//!
//! `--trace PATH` traces the highest-rate max-K Data-Driven Chopping
//! run and writes its Chrome export to PATH (CI feeds it to
//! `trace-lint` — the open-loop exporter degrades overlapping session
//! spans to complete events, which must stay lint-clean).

use robustq_bench::args::{ArgStream, CommonArgs};
use robustq_bench::table::{tables_json, FigTable};
use robustq_engine::EngineError;
use robustq::prelude::*;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_workloads::ssb;

struct Args {
    common: CommonArgs,
    rates: Vec<f64>,
    horizon_ms: u64,
    sessions: usize,
    seed: u64,
    queue_cap: usize,
    theta: f64,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args {
        common: CommonArgs::new("BENCH_serving.json").with_ks(&[1, 2]),
        rates: vec![25_000.0, 100_000.0, 400_000.0],
        horizon_ms: 50,
        sessions: 100_000,
        seed: 42,
        queue_cap: 32,
        theta: 0.8,
    };
    let mut it = ArgStream::from_env();
    while let Some(flag) = it.next_flag() {
        if args.common.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--rates" => {
                args.rates = it.parsed_list("--rates")?;
                if args.rates.iter().any(|&r| r <= 0.0) {
                    return Err(EngineError::config(
                        "--rates needs a comma list of rates > 0",
                    ));
                }
            }
            "--horizon-ms" => args.horizon_ms = it.parsed("--horizon-ms")?,
            "--sessions" => args.sessions = it.parsed("--sessions")?,
            "--seed" => args.seed = it.parsed("--seed")?,
            "--queue-cap" => args.queue_cap = it.parsed("--queue-cap")?,
            "--theta" => args.theta = it.parsed("--theta")?,
            other => return Err(ArgStream::unknown_flag(other)),
        }
    }
    Ok(args)
}

fn ms(t: VirtualTime) -> String {
    format!("{:.3}", t.as_secs_f64() * 1e3)
}

fn push_row(table: &mut FigTable, k: usize, rate: f64, report: &ServingReport) {
    table.push_row([
        k.to_string(),
        report.strategy.to_string(),
        format!("{rate:.0}"),
        report.offered.to_string(),
        report.completed().to_string(),
        report.shed.to_string(),
        ms(report.p50()),
        ms(report.p95()),
        ms(report.p99()),
        ms(report.p999()),
        format!("{:.1}", report.qps()),
    ]);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let max_k = *args.common.ks.iter().max().expect("ks non-empty");
    let max_rate = args.rates.iter().cloned().fold(0.0f64, f64::max);

    let db: Database =
        SsbGenerator::new(1).with_rows_per_sf(args.common.rows).generate();
    let mix = QueryMix::zipf(ssb::workload(&db).expect("SSB plans"), args.theta);
    // Same tight-cache regime as the multigpu sweep: the fact table
    // stresses a single co-processor cache, so placement quality — not
    // raw device count — decides how the tail behaves under load.
    let base_sim =
        SimConfig::default().with_gpu_memory(2 * 1024 * 1024).with_gpu_cache(256 * 1024);
    let strategies = [Strategy::GpuPreferred, Strategy::Chopping, Strategy::DataDrivenChopping];

    let mut table = FigTable::new(
        "serving-ssb",
        "Open-loop SSB serving: latency percentiles vs Poisson arrival rate",
    )
    .with_columns([
        "K",
        "Strategy",
        "Rate [qps]",
        "Offered",
        "Completed",
        "Shed",
        "p50 [ms]",
        "p95 [ms]",
        "p99 [ms]",
        "p999 [ms]",
        "Goodput [qps]",
    ]);
    let mut failures = 0u64;

    for &k in &args.common.ks {
        let sim = base_sim.clone().with_coprocessors(k);
        let runner = ServingRunner::new(&db, sim);
        for &rate in &args.rates {
            for strategy in strategies {
                let trace_this = args.common.trace.is_some()
                    && k == max_k
                    && rate == max_rate
                    && strategy == Strategy::DataDrivenChopping;
                let mut cfg = ServeConfig::new(
                    ArrivalProcess::Poisson { rate_qps: rate },
                    VirtualTime::from_millis(args.horizon_ms),
                )
                .with_sessions(args.sessions)
                .with_seed(args.seed)
                .with_admission_limit(args.common.users)
                .with_queue_cap(args.queue_cap);
                if trace_this {
                    cfg = cfg.with_trace();
                }
                let report = runner.run(&mix, strategy, &cfg).expect("sweep run");
                if report.offered != report.completed() + report.shed as usize {
                    eprintln!(
                        "loadgen: FAIL: K={k} rate={rate} {}: offered {} != \
                         completed {} + shed {}",
                        report.strategy,
                        report.offered,
                        report.completed(),
                        report.shed,
                    );
                    failures += 1;
                }
                push_row(&mut table, k, rate, &report);
                if trace_this {
                    let path = args.common.trace.as_deref().expect("trace path");
                    let data = report.trace.as_ref().expect("traced run records");
                    if data.dropped > 0 {
                        eprintln!(
                            "loadgen: FAIL: trace ring overflowed ({} dropped)",
                            data.dropped
                        );
                        failures += 1;
                    }
                    let chrome = report.chrome_trace().expect("traced run exports");
                    if let Err(e) = std::fs::write(path, &chrome) {
                        eprintln!("loadgen: cannot write {path}: {e}");
                        failures += 1;
                    } else {
                        println!(
                            "trace: {path} (K={k}, rate={rate}, {} events)",
                            data.events.len()
                        );
                    }
                }
            }
        }
    }

    println!("{table}");
    if let Err(e) =
        std::fs::write(&args.common.out, tables_json(std::slice::from_ref(&table)))
    {
        eprintln!("loadgen: cannot write {}: {e}", args.common.out);
        failures += 1;
    } else {
        println!("wrote {}", args.common.out);
    }

    if failures > 0 {
        eprintln!("loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
}
