//! Gate the multi-GPU scaling claim on `BENCH_multigpu.json`.
//!
//! DESIGN.md §12's success criterion: on the SSB sweep, at least one
//! sharding-enabled strategy must bring the K = 4 (more generally,
//! max-K) makespan *below* its own K = 1 baseline — adding
//! co-processors has to pay. This check parses the JSON the `multigpu`
//! bin writes and fails (exit 1) if no sharded strategy scales within
//! the tolerance; every ratio is printed either way so regressions show
//! up in CI logs before they cross the line.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin bench-diff -- BENCH_multigpu.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --max-ratio 0.9 BENCH_multigpu.json
//! ```
//!
//! `--max-ratio R` (default 0.95): a strategy scales when
//! `makespan(max K) <= R × makespan(K = 1)`. The sim is deterministic,
//! so the margin guards against cost-model tweaks eroding the win, not
//! against noise.

use std::collections::BTreeMap;

use robustq_trace::json::{parse, Json};

struct Args {
    path: String,
    max_ratio: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { path: "BENCH_multigpu.json".to_string(), max_ratio: 0.95 };
    let mut it = std::env::args().skip(1);
    let mut saw_path = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--max-ratio" => {
                let v = it.next().ok_or("--max-ratio needs a value")?;
                args.max_ratio =
                    v.parse().map_err(|e| format!("--max-ratio: {e}"))?;
                if !(0.0..=1.0).contains(&args.max_ratio) {
                    return Err("--max-ratio must be in (0, 1]".into());
                }
            }
            other if !other.starts_with('-') && !saw_path => {
                args.path = other.to_string();
                saw_path = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One table row we care about: `(strategy label, K) -> makespan ms`.
type Makespans = BTreeMap<(String, u64), f64>;

/// Extract strategy/K/makespan from the FigTable named `id`.
fn makespans(doc: &Json, id: &str) -> Result<Makespans, String> {
    let tables = doc
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("document has no 'tables' array")?;
    let table = tables
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some(id))
        .ok_or_else(|| format!("no table with id {id:?}"))?;
    let columns = table
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'columns'"))?;
    let col = |name: &str| {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("table {id:?} has no column {name:?}"))
    };
    let (k_col, strat_col, ms_col) =
        (col("K")?, col("Strategy")?, col("Makespan [ms]")?);
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'rows'"))?;
    let mut out = Makespans::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("table {id:?} row {i} is not an array"))?;
        let cell = |c: usize| {
            row.get(c)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("table {id:?} row {i} col {c} missing"))
        };
        let k: u64 = cell(k_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad K: {e}"))?;
        let ms: f64 = cell(ms_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad makespan: {e}"))?;
        out.insert((cell(strat_col)?.to_string(), k), ms);
    }
    Ok(out)
}

/// Check one workload table; returns whether any sharded strategy
/// scales to max K within `max_ratio`, printing every ratio.
fn check_table(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, String> {
    let spans = makespans(doc, id)?;
    let min_k = spans.keys().map(|(_, k)| *k).min().ok_or("empty table")?;
    let max_k = spans.keys().map(|(_, k)| *k).max().unwrap_or(min_k);
    if max_k <= min_k {
        return Err(format!(
            "table {id:?} has a single K={min_k} — nothing to diff (run the \
             sweep with --ks 1,2,4)"
        ));
    }
    let mut any_scales = false;
    let mut saw_sharded = false;
    for ((label, _), base) in spans.iter().filter(|((_, k), _)| *k == min_k) {
        let Some(at_max) = spans.get(&(label.clone(), max_k)) else {
            continue;
        };
        let ratio = at_max / base;
        let sharded = label.ends_with("+ Shard");
        let scales = sharded && ratio <= max_ratio;
        saw_sharded |= sharded;
        any_scales |= scales;
        println!(
            "{id}: {label:<30} K={min_k} {base:.3}ms -> K={max_k} {at_max:.3}ms \
             (ratio {ratio:.3}){}",
            if scales { "  SCALES" } else { "" },
        );
    }
    if !saw_sharded {
        return Err(format!(
            "table {id:?} has no sharded rows — run the sweep with --shard"
        ));
    }
    Ok(any_scales)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    };
    let src = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(2);
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {}: malformed JSON: {e}", args.path);
            std::process::exit(1);
        }
    };
    // SSB carries the success criterion; TPC-H is reported for context.
    match check_table(&doc, "multigpu-ssb", args.max_ratio) {
        Ok(true) => {}
        Ok(false) => {
            eprintln!(
                "bench-diff: FAIL: no sharded strategy reaches max-K makespan \
                 <= {} x its K=1 baseline on SSB",
                args.max_ratio
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(1);
        }
    }
    if let Err(e) = check_table(&doc, "multigpu-tpch", args.max_ratio) {
        eprintln!("bench-diff: note: tpch table skipped: {e}");
    }
    println!("bench-diff: ok — sharded scaling criterion holds");
}
