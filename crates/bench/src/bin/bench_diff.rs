//! Gate benchmark claims on the JSON the sweep bins write.
//!
//! Two modes, both deterministic (the sim has no noise, so the margins
//! guard against cost-model tweaks eroding a win, not against jitter):
//!
//! * **Default** — the multi-GPU scaling claim on `BENCH_multigpu.json`
//!   (DESIGN.md §12): on the SSB sweep, at least one sharding-enabled
//!   strategy must bring the max-K makespan *below* its own K = 1
//!   baseline within `--max-ratio` (default 0.95) — adding
//!   co-processors has to pay.
//! * **`--serving`** — the open-loop robustness claim on
//!   `BENCH_serving.json` (DESIGN.md §13): at the *highest tested
//!   arrival rate*, Data-Driven Chopping's p99 latency must not exceed
//!   GPU Only's at any K (`--max-ratio` defaults to 1.0 here) — the
//!   learned strategy has to hold the tail precisely when the system
//!   is saturated.
//! * **`--kernels`** — the CPU kernel claim on `BENCH_kernels.json`
//!   (DESIGN.md §14): at 8 workers on the 10M-row inputs, `select` and
//!   `aggregate` must hold a ≥ 3× speedup over their scalar references
//!   (margin below the ≥ 4× the committed JSON records, so a slow CI
//!   host doesn't flake), and **no** kernel may dip below 0.95× at any
//!   sweep point — optimizations must never regress a sibling kernel.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin bench-diff -- BENCH_multigpu.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --max-ratio 0.9 BENCH_multigpu.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --serving BENCH_serving.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --kernels BENCH_kernels.json
//! ```

use std::collections::BTreeMap;

use robustq_trace::json::{parse, Json};

struct Args {
    path: String,
    max_ratio: f64,
    serving: bool,
    kernels: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        max_ratio: f64::NAN,
        serving: false,
        kernels: false,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_path = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--serving" => args.serving = true,
            "--kernels" => args.kernels = true,
            "--max-ratio" => {
                let v = it.next().ok_or("--max-ratio needs a value")?;
                args.max_ratio =
                    v.parse().map_err(|e| format!("--max-ratio: {e}"))?;
                if !(0.0..=1.0).contains(&args.max_ratio) {
                    return Err("--max-ratio must be in (0, 1]".into());
                }
            }
            other if !other.starts_with('-') && !saw_path => {
                args.path = other.to_string();
                saw_path = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.serving && args.kernels {
        return Err("--serving and --kernels are mutually exclusive".into());
    }
    if args.path.is_empty() {
        args.path = if args.serving {
            "BENCH_serving.json"
        } else if args.kernels {
            "BENCH_kernels.json"
        } else {
            "BENCH_multigpu.json"
        }
        .to_string();
    }
    if args.max_ratio.is_nan() {
        args.max_ratio = if args.serving { 1.0 } else { 0.95 };
    }
    Ok(args)
}

/// One table row we care about: `(strategy label, K) -> makespan ms`.
type Makespans = BTreeMap<(String, u64), f64>;

/// Extract strategy/K/makespan from the FigTable named `id`.
fn makespans(doc: &Json, id: &str) -> Result<Makespans, String> {
    let tables = doc
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("document has no 'tables' array")?;
    let table = tables
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some(id))
        .ok_or_else(|| format!("no table with id {id:?}"))?;
    let columns = table
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'columns'"))?;
    let col = |name: &str| {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("table {id:?} has no column {name:?}"))
    };
    let (k_col, strat_col, ms_col) =
        (col("K")?, col("Strategy")?, col("Makespan [ms]")?);
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'rows'"))?;
    let mut out = Makespans::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("table {id:?} row {i} is not an array"))?;
        let cell = |c: usize| {
            row.get(c)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("table {id:?} row {i} col {c} missing"))
        };
        let k: u64 = cell(k_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad K: {e}"))?;
        let ms: f64 = cell(ms_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad makespan: {e}"))?;
        out.insert((cell(strat_col)?.to_string(), k), ms);
    }
    Ok(out)
}

/// Check one workload table; returns whether any sharded strategy
/// scales to max K within `max_ratio`, printing every ratio.
fn check_table(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, String> {
    let spans = makespans(doc, id)?;
    let min_k = spans.keys().map(|(_, k)| *k).min().ok_or("empty table")?;
    let max_k = spans.keys().map(|(_, k)| *k).max().unwrap_or(min_k);
    if max_k <= min_k {
        return Err(format!(
            "table {id:?} has a single K={min_k} — nothing to diff (run the \
             sweep with --ks 1,2,4)"
        ));
    }
    let mut any_scales = false;
    let mut saw_sharded = false;
    for ((label, _), base) in spans.iter().filter(|((_, k), _)| *k == min_k) {
        let Some(at_max) = spans.get(&(label.clone(), max_k)) else {
            continue;
        };
        let ratio = at_max / base;
        let sharded = label.ends_with("+ Shard");
        let scales = sharded && ratio <= max_ratio;
        saw_sharded |= sharded;
        any_scales |= scales;
        println!(
            "{id}: {label:<30} K={min_k} {base:.3}ms -> K={max_k} {at_max:.3}ms \
             (ratio {ratio:.3}){}",
            if scales { "  SCALES" } else { "" },
        );
    }
    if !saw_sharded {
        return Err(format!(
            "table {id:?} has no sharded rows — run the sweep with --shard"
        ));
    }
    Ok(any_scales)
}

/// `(K, strategy, rate qps) -> p99 ms` from the serving FigTable.
type ServingP99s = BTreeMap<(u64, String), BTreeMap<u64, f64>>;

/// Extract K/strategy/rate/p99 from the FigTable named `id`.
fn serving_p99s(doc: &Json, id: &str) -> Result<ServingP99s, String> {
    let tables = doc
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("document has no 'tables' array")?;
    let table = tables
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some(id))
        .ok_or_else(|| format!("no table with id {id:?}"))?;
    let columns = table
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'columns'"))?;
    let col = |name: &str| {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("table {id:?} has no column {name:?}"))
    };
    let (k_col, strat_col, rate_col, p99_col) =
        (col("K")?, col("Strategy")?, col("Rate [qps]")?, col("p99 [ms]")?);
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("table {id:?} has no 'rows'"))?;
    let mut out = ServingP99s::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("table {id:?} row {i} is not an array"))?;
        let cell = |c: usize| {
            row.get(c)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("table {id:?} row {i} col {c} missing"))
        };
        let k: u64 = cell(k_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad K: {e}"))?;
        let rate: f64 = cell(rate_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad rate: {e}"))?;
        let p99: f64 = cell(p99_col)?
            .parse()
            .map_err(|e| format!("table {id:?} row {i}: bad p99: {e}"))?;
        out.entry((k, cell(strat_col)?.to_string()))
            .or_default()
            .insert(rate as u64, p99);
    }
    Ok(out)
}

/// The serving gate: at the highest tested rate, for every K,
/// `p99(Data-Driven Chopping) <= max_ratio × p99(GPU Only)`.
fn check_serving(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, String> {
    let p99s = serving_p99s(doc, id)?;
    let max_rate = p99s
        .values()
        .flat_map(|by_rate| by_rate.keys().copied())
        .max()
        .ok_or("empty table")?;
    let ks: std::collections::BTreeSet<u64> =
        p99s.keys().map(|(k, _)| *k).collect();
    let mut ok = true;
    for k in ks {
        let at = |strategy: &str| {
            p99s.get(&(k, strategy.to_string()))
                .and_then(|by_rate| by_rate.get(&max_rate))
                .copied()
                .ok_or_else(|| {
                    format!("no {strategy:?} row at K={k} rate={max_rate}")
                })
        };
        let dd = at("Data-Driven Chopping")?;
        let gpu = at("GPU Only")?;
        let holds = dd <= max_ratio * gpu;
        ok &= holds;
        println!(
            "{id}: K={k} rate={max_rate}: Data-Driven Chopping p99 {dd:.3}ms vs \
             GPU Only p99 {gpu:.3}ms (ratio {:.3}){}",
            dd / gpu,
            if holds { "  HOLDS" } else { "  FAIL" },
        );
    }
    Ok(ok)
}

/// Speedup floors for the kernel gate (`--kernels`).
const KERNEL_HEADLINE_MIN: f64 = 3.0;
const KERNEL_FLOOR: f64 = 0.95;
const KERNEL_HEADLINE_ROWS: f64 = 10_000_000.0;
const KERNEL_HEADLINE_WORKERS: f64 = 8.0;

/// The kernel gate: every `(kernel, rows, workers)` speedup must stay
/// above `KERNEL_FLOOR`, and `select` / `aggregate` at 8 workers on the
/// 10M-row input must stay above `KERNEL_HEADLINE_MIN`.
fn check_kernels(doc: &Json) -> Result<bool, String> {
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("document has no 'entries' array")?;
    let mut ok = true;
    let mut headline_seen = 0usize;
    for (i, entry) in entries.iter().enumerate() {
        let workers = entry
            .get("workers")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("entry {i} has no 'workers'"))?;
        let results = entry
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("entry {i} has no 'results'"))?;
        for (j, r) in results.iter().enumerate() {
            let field = |name: &str| {
                r.get(name).and_then(Json::as_num).ok_or_else(|| {
                    format!("entry {i} result {j} has no numeric {name:?}")
                })
            };
            let kernel = r
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i} result {j} has no 'kernel'"))?;
            let rows = field("rows")?;
            let speedup = field("speedup")?;
            let headline = (kernel == "select" || kernel == "aggregate")
                && rows == KERNEL_HEADLINE_ROWS
                && workers == KERNEL_HEADLINE_WORKERS;
            headline_seen += headline as usize;
            let min = if headline { KERNEL_HEADLINE_MIN } else { KERNEL_FLOOR };
            let holds = speedup >= min;
            ok &= holds;
            println!(
                "kernels: {kernel:<26} rows={rows:>10.0} workers={workers:.0} \
                 speedup {speedup:.3} (floor {min}){}",
                if holds { "" } else { "  FAIL" },
            );
        }
    }
    if headline_seen < 2 {
        return Err(format!(
            "no 8-worker 10M-row select/aggregate entries found (saw \
             {headline_seen}) — regenerate BENCH_kernels.json with the full sweep"
        ));
    }
    Ok(ok)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    };
    let src = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(2);
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {}: malformed JSON: {e}", args.path);
            std::process::exit(1);
        }
    };
    if args.kernels {
        match check_kernels(&doc) {
            Ok(true) => {
                println!(
                    "bench-diff: ok — kernel speedups hold ({KERNEL_HEADLINE_MIN}x \
                     headline, {KERNEL_FLOOR}x floor)"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: a kernel speedup fell below its floor \
                     (headline {KERNEL_HEADLINE_MIN}x, global {KERNEL_FLOOR}x)"
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    if args.serving {
        match check_serving(&doc, "serving-ssb", args.max_ratio) {
            Ok(true) => {
                println!(
                    "bench-diff: ok — serving robustness criterion holds at the \
                     highest tested rate"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: Data-Driven Chopping p99 exceeds {} x GPU \
                     Only p99 at the highest tested arrival rate",
                    args.max_ratio
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    // SSB carries the success criterion; TPC-H is reported for context.
    match check_table(&doc, "multigpu-ssb", args.max_ratio) {
        Ok(true) => {}
        Ok(false) => {
            eprintln!(
                "bench-diff: FAIL: no sharded strategy reaches max-K makespan \
                 <= {} x its K=1 baseline on SSB",
                args.max_ratio
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(1);
        }
    }
    if let Err(e) = check_table(&doc, "multigpu-tpch", args.max_ratio) {
        eprintln!("bench-diff: note: tpch table skipped: {e}");
    }
    println!("bench-diff: ok — sharded scaling criterion holds");
}
