//! Gate benchmark claims on the JSON the sweep bins write.
//!
//! Four modes, all deterministic (the sim has no noise, so the margins
//! guard against cost-model tweaks eroding a win, not against jitter):
//!
//! * **Default** — the multi-GPU scaling claim on `BENCH_multigpu.json`
//!   (DESIGN.md §12): on the SSB sweep, at least one sharding-enabled
//!   strategy must bring the max-K makespan *below* its own K = 1
//!   baseline within `--max-ratio` (default 0.95) — adding
//!   co-processors has to pay.
//! * **`--serving`** — the open-loop robustness claim on
//!   `BENCH_serving.json` (DESIGN.md §13): at the *highest tested
//!   arrival rate*, Data-Driven Chopping's p99 latency must not exceed
//!   GPU Only's at any K (`--max-ratio` defaults to 1.0 here) — the
//!   learned strategy has to hold the tail precisely when the system
//!   is saturated.
//! * **`--kernels`** — the CPU kernel claim on `BENCH_kernels.json`
//!   (DESIGN.md §14): at 8 workers on the 10M-row inputs, `select` and
//!   `aggregate` must hold a ≥ 3× speedup over their scalar references
//!   (margin below the ≥ 4× the committed JSON records, so a slow CI
//!   host doesn't flake), and **no** kernel may dip below 0.95× at any
//!   sweep point — optimizations must never regress a sibling kernel.
//! * **`--streaming`** — the standing-query robustness claim on
//!   `BENCH_streaming.json` (DESIGN.md §16): at the *tightest tested
//!   window period*, Data-Driven Chopping must complete every scheduled
//!   window tick and its tick p99 must not exceed GPU Only's
//!   (`--max-ratio` defaults to 1.0) at any K — the learned strategy
//!   has to keep standing results fresh precisely when the window
//!   cadence is most demanding.
//! * **`--adaptive`** — the adaptive-placement claim on the
//!   `multigpu-adaptive` table (DESIGN.md §15, written by
//!   `multigpu --adaptive`): every staged (adaptive) row must record
//!   *zero* oversize fallbacks — chunked staging has to absorb the
//!   over-heap operators the regime manufactures — and no more aborts
//!   than its static sibling; and wherever both models record
//!   est-vs-actual samples, the adaptive median relative error must be
//!   *strictly below* the static one. Both comparisons must be
//!   non-vacuous (some static row must abort, some pair must be
//!   numeric).
//!
//! ```text
//! cargo run -p robustq-bench --release --bin bench-diff -- BENCH_multigpu.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --max-ratio 0.9 BENCH_multigpu.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --serving BENCH_serving.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --streaming BENCH_streaming.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --kernels BENCH_kernels.json
//! cargo run -p robustq-bench --release --bin bench-diff -- --adaptive BENCH_multigpu.json
//! ```

use std::collections::BTreeMap;

use robustq_bench::args::ArgStream;
use robustq_engine::EngineError;
use robustq_trace::json::{parse, Json};

struct Args {
    path: String,
    max_ratio: f64,
    serving: bool,
    kernels: bool,
    adaptive: bool,
    streaming: bool,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args {
        path: String::new(),
        max_ratio: f64::NAN,
        serving: false,
        kernels: false,
        adaptive: false,
        streaming: false,
    };
    let mut it = ArgStream::from_env();
    let mut saw_path = false;
    while let Some(flag) = it.next_flag() {
        match flag.as_str() {
            "--serving" => args.serving = true,
            "--kernels" => args.kernels = true,
            "--adaptive" => args.adaptive = true,
            "--streaming" => args.streaming = true,
            "--max-ratio" => {
                args.max_ratio = it.parsed("--max-ratio")?;
                if !(0.0..=1.0).contains(&args.max_ratio) {
                    return Err(EngineError::config("--max-ratio must be in (0, 1]"));
                }
            }
            other if !other.starts_with('-') && !saw_path => {
                args.path = other.to_string();
                saw_path = true;
            }
            other => return Err(ArgStream::unknown_flag(other)),
        }
    }
    if args.serving as u8 + args.kernels as u8 + args.adaptive as u8 + args.streaming as u8
        > 1
    {
        return Err(EngineError::config(
            "--serving, --kernels, --adaptive and --streaming are mutually exclusive",
        ));
    }
    if args.path.is_empty() {
        args.path = if args.serving {
            "BENCH_serving.json"
        } else if args.kernels {
            "BENCH_kernels.json"
        } else if args.streaming {
            "BENCH_streaming.json"
        } else {
            "BENCH_multigpu.json"
        }
        .to_string();
    }
    if args.max_ratio.is_nan() {
        args.max_ratio = if args.serving || args.streaming { 1.0 } else { 0.95 };
    }
    Ok(args)
}

/// The FigTable named `id` inside the `{"tables": [...]}` document.
fn find_table<'a>(doc: &'a Json, id: &str) -> Result<&'a Json, EngineError> {
    doc.get("tables")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config("document has no 'tables' array"))?
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some(id))
        .ok_or_else(|| EngineError::config(format!("no table with id {id:?}")))
}

/// Column name → index resolver for the FigTable `id`.
fn columns(table: &Json, id: &str) -> Result<Vec<Json>, EngineError> {
    table
        .get("columns")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .ok_or_else(|| EngineError::config(format!("table {id:?} has no 'columns'")))
}

/// One table row we care about: `(strategy label, K) -> makespan ms`.
type Makespans = BTreeMap<(String, u64), f64>;

/// Extract strategy/K/makespan from the FigTable named `id`.
fn makespans(doc: &Json, id: &str) -> Result<Makespans, EngineError> {
    let table = find_table(doc, id)?;
    let columns = columns(table, id)?;
    let col = |name: &str| {
        columns.iter().position(|c| c.as_str() == Some(name)).ok_or_else(|| {
            EngineError::config(format!("table {id:?} has no column {name:?}"))
        })
    };
    let (k_col, strat_col, ms_col) =
        (col("K")?, col("Strategy")?, col("Makespan [ms]")?);
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config(format!("table {id:?} has no 'rows'")))?;
    let mut out = Makespans::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| {
            EngineError::config(format!("table {id:?} row {i} is not an array"))
        })?;
        let cell = |c: usize| {
            row.get(c).and_then(Json::as_str).ok_or_else(|| {
                EngineError::config(format!("table {id:?} row {i} col {c} missing"))
            })
        };
        let k: u64 = cell(k_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad K: {e}"))
        })?;
        let ms: f64 = cell(ms_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad makespan: {e}"))
        })?;
        out.insert((cell(strat_col)?.to_string(), k), ms);
    }
    Ok(out)
}

/// Check one workload table; returns whether any sharded strategy
/// scales to max K within `max_ratio`, printing every ratio.
fn check_table(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, EngineError> {
    let spans = makespans(doc, id)?;
    let min_k = spans
        .keys()
        .map(|(_, k)| *k)
        .min()
        .ok_or_else(|| EngineError::config("empty table"))?;
    let max_k = spans.keys().map(|(_, k)| *k).max().unwrap_or(min_k);
    if max_k <= min_k {
        return Err(EngineError::config(format!(
            "table {id:?} has a single K={min_k} — nothing to diff (run the \
             sweep with --ks 1,2,4)"
        )));
    }
    let mut any_scales = false;
    let mut saw_sharded = false;
    for ((label, _), base) in spans.iter().filter(|((_, k), _)| *k == min_k) {
        let Some(at_max) = spans.get(&(label.clone(), max_k)) else {
            continue;
        };
        let ratio = at_max / base;
        let sharded = label.ends_with("+ Shard");
        let scales = sharded && ratio <= max_ratio;
        saw_sharded |= sharded;
        any_scales |= scales;
        println!(
            "{id}: {label:<30} K={min_k} {base:.3}ms -> K={max_k} {at_max:.3}ms \
             (ratio {ratio:.3}){}",
            if scales { "  SCALES" } else { "" },
        );
    }
    if !saw_sharded {
        return Err(EngineError::config(format!(
            "table {id:?} has no sharded rows — run the sweep with --shard"
        )));
    }
    Ok(any_scales)
}

/// `(K, strategy, rate qps) -> p99 ms` from the serving FigTable.
type ServingP99s = BTreeMap<(u64, String), BTreeMap<u64, f64>>;

/// Extract K/strategy/rate/p99 from the FigTable named `id`.
fn serving_p99s(doc: &Json, id: &str) -> Result<ServingP99s, EngineError> {
    let table = find_table(doc, id)?;
    let columns = columns(table, id)?;
    let col = |name: &str| {
        columns.iter().position(|c| c.as_str() == Some(name)).ok_or_else(|| {
            EngineError::config(format!("table {id:?} has no column {name:?}"))
        })
    };
    let (k_col, strat_col, rate_col, p99_col) =
        (col("K")?, col("Strategy")?, col("Rate [qps]")?, col("p99 [ms]")?);
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config(format!("table {id:?} has no 'rows'")))?;
    let mut out = ServingP99s::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| {
            EngineError::config(format!("table {id:?} row {i} is not an array"))
        })?;
        let cell = |c: usize| {
            row.get(c).and_then(Json::as_str).ok_or_else(|| {
                EngineError::config(format!("table {id:?} row {i} col {c} missing"))
            })
        };
        let k: u64 = cell(k_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad K: {e}"))
        })?;
        let rate: f64 = cell(rate_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad rate: {e}"))
        })?;
        let p99: f64 = cell(p99_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad p99: {e}"))
        })?;
        out.entry((k, cell(strat_col)?.to_string()))
            .or_default()
            .insert(rate as u64, p99);
    }
    Ok(out)
}

/// The serving gate: at the highest tested rate, for every K,
/// `p99(Data-Driven Chopping) <= max_ratio × p99(GPU Only)`.
fn check_serving(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, EngineError> {
    let p99s = serving_p99s(doc, id)?;
    let max_rate = p99s
        .values()
        .flat_map(|by_rate| by_rate.keys().copied())
        .max()
        .ok_or_else(|| EngineError::config("empty table"))?;
    let ks: std::collections::BTreeSet<u64> =
        p99s.keys().map(|(k, _)| *k).collect();
    let mut ok = true;
    for k in ks {
        let at = |strategy: &str| {
            p99s.get(&(k, strategy.to_string()))
                .and_then(|by_rate| by_rate.get(&max_rate))
                .copied()
                .ok_or_else(|| {
                    EngineError::config(format!(
                        "no {strategy:?} row at K={k} rate={max_rate}"
                    ))
                })
        };
        let dd = at("Data-Driven Chopping")?;
        let gpu = at("GPU Only")?;
        let holds = dd <= max_ratio * gpu;
        ok &= holds;
        println!(
            "{id}: K={k} rate={max_rate}: Data-Driven Chopping p99 {dd:.3}ms vs \
             GPU Only p99 {gpu:.3}ms (ratio {:.3}){}",
            dd / gpu,
            if holds { "  HOLDS" } else { "  FAIL" },
        );
    }
    Ok(ok)
}

/// One `streaming-ssb` row: scheduled/completed ticks and tick p99.
#[derive(Debug, Clone, Copy)]
struct StreamingRow {
    ticks: u64,
    done: u64,
    tick_p99: f64,
}

/// `(K, strategy) -> window period ms -> row` from the streaming table.
type StreamingRows = BTreeMap<(u64, String), BTreeMap<u64, StreamingRow>>;

/// Extract K/strategy/window/ticks/p99 from the FigTable named `id`.
/// Window periods are keyed in microseconds so they stay integral.
fn streaming_rows(doc: &Json, id: &str) -> Result<StreamingRows, EngineError> {
    let table = find_table(doc, id)?;
    let columns = columns(table, id)?;
    let col = |name: &str| {
        columns.iter().position(|c| c.as_str() == Some(name)).ok_or_else(|| {
            EngineError::config(format!("table {id:?} has no column {name:?}"))
        })
    };
    let (k_col, strat_col, win_col, ticks_col, done_col, p99_col) = (
        col("K")?,
        col("Strategy")?,
        col("Window [ms]")?,
        col("Ticks")?,
        col("Ticks done")?,
        col("Tick p99 [ms]")?,
    );
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config(format!("table {id:?} has no 'rows'")))?;
    let mut out = StreamingRows::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| {
            EngineError::config(format!("table {id:?} row {i} is not an array"))
        })?;
        let cell = |c: usize| {
            row.get(c).and_then(Json::as_str).ok_or_else(|| {
                EngineError::config(format!("table {id:?} row {i} col {c} missing"))
            })
        };
        let num = |c: usize, what: &str| -> Result<f64, EngineError> {
            cell(c)?.parse().map_err(|e| {
                EngineError::config(format!("table {id:?} row {i}: bad {what}: {e}"))
            })
        };
        let k = num(k_col, "K")? as u64;
        let window_us = (num(win_col, "window")? * 1e3).round() as u64;
        let row = StreamingRow {
            ticks: num(ticks_col, "ticks")? as u64,
            done: num(done_col, "ticks done")? as u64,
            tick_p99: num(p99_col, "tick p99")?,
        };
        out.entry((k, cell(strat_col)?.to_string())).or_default().insert(window_us, row);
    }
    Ok(out)
}

/// The streaming gate: at the tightest window period, for every K,
/// Data-Driven Chopping completes every scheduled tick and
/// `tick-p99(Data-Driven Chopping) <= max_ratio × tick-p99(GPU Only)`.
fn check_streaming(doc: &Json, id: &str, max_ratio: f64) -> Result<bool, EngineError> {
    let rows = streaming_rows(doc, id)?;
    let min_window = rows
        .values()
        .flat_map(|by_win| by_win.keys().copied())
        .min()
        .ok_or_else(|| EngineError::config("empty table"))?;
    let ks: std::collections::BTreeSet<u64> = rows.keys().map(|(k, _)| *k).collect();
    let mut ok = true;
    for k in ks {
        let at = |strategy: &str| {
            rows.get(&(k, strategy.to_string()))
                .and_then(|by_win| by_win.get(&min_window))
                .copied()
                .ok_or_else(|| {
                    EngineError::config(format!(
                        "no {strategy:?} row at K={k} window={min_window}us"
                    ))
                })
        };
        let dd = at("Data-Driven Chopping")?;
        let gpu = at("GPU Only")?;
        let complete = dd.done == dd.ticks;
        let tail = dd.tick_p99 <= max_ratio * gpu.tick_p99;
        ok &= complete && tail;
        println!(
            "{id}: K={k} window={:.3}ms: Data-Driven Chopping ticks {}/{} p99 \
             {:.3}ms vs GPU Only p99 {:.3}ms (ratio {:.3}){}",
            min_window as f64 / 1e3,
            dd.done,
            dd.ticks,
            dd.tick_p99,
            gpu.tick_p99,
            dd.tick_p99 / gpu.tick_p99,
            if complete && tail { "  HOLDS" } else { "  FAIL" },
        );
    }
    Ok(ok)
}

/// One `multigpu-adaptive` row per cost model at a sweep point.
#[derive(Debug, Default, Clone)]
struct AdaptiveRow {
    aborts: u64,
    oversize: u64,
    median_err: Option<f64>,
}

/// The adaptive gate (DESIGN.md §15) on the `multigpu-adaptive` table:
/// staged rows absorb every over-heap operator (zero oversize
/// fallbacks), never abort more than their static siblings, and beat
/// the static model's median est-vs-actual error wherever both report.
fn check_adaptive(doc: &Json, id: &str) -> Result<bool, EngineError> {
    let table = find_table(doc, id)?;
    let columns = columns(table, id)?;
    let col = |name: &str| {
        columns.iter().position(|c| c.as_str() == Some(name)).ok_or_else(|| {
            EngineError::config(format!("table {id:?} has no column {name:?}"))
        })
    };
    let (k_col, strat_col, model_col, abort_col, over_col, err_col) = (
        col("K")?,
        col("Strategy")?,
        col("Model")?,
        col("Aborts")?,
        col("Oversize")?,
        col("MedianErr %")?,
    );
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config(format!("table {id:?} has no 'rows'")))?;
    // (K, strategy) -> per-model rows.
    let mut points: BTreeMap<(u64, String), BTreeMap<String, AdaptiveRow>> =
        BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| {
            EngineError::config(format!("table {id:?} row {i} is not an array"))
        })?;
        let cell = |c: usize| {
            row.get(c).and_then(Json::as_str).ok_or_else(|| {
                EngineError::config(format!("table {id:?} row {i} col {c} missing"))
            })
        };
        let k: u64 = cell(k_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad K: {e}"))
        })?;
        let aborts: u64 = cell(abort_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad aborts: {e}"))
        })?;
        let oversize: u64 = cell(over_col)?.parse().map_err(|e| {
            EngineError::config(format!("table {id:?} row {i}: bad oversize: {e}"))
        })?;
        let median_err = cell(err_col)?.parse().ok(); // "-" when no samples
        points
            .entry((k, cell(strat_col)?.to_string()))
            .or_default()
            .insert(
                cell(model_col)?.to_string(),
                AdaptiveRow { aborts, oversize, median_err },
            );
    }
    if points.is_empty() {
        return Err(EngineError::config(format!("table {id:?} has no rows")));
    }
    let mut ok = true;
    let mut static_aborted = false;
    let mut err_pairs = 0usize;
    for ((k, strategy), models) in &points {
        let get = |m: &str| {
            models.get(m).cloned().ok_or_else(|| {
                EngineError::config(format!(
                    "table {id:?}: no {m:?} row at K={k} {strategy}"
                ))
            })
        };
        let st = get("static")?;
        let ad = get("adaptive")?;
        static_aborted |= st.aborts > 0;
        let staged_ok = ad.oversize == 0 && ad.aborts <= st.aborts;
        ok &= staged_ok;
        let err_ok = match (st.median_err, ad.median_err) {
            (Some(se), Some(ae)) => {
                err_pairs += 1;
                ae < se
            }
            _ => true, // plan-time strategies record no samples
        };
        ok &= err_ok;
        println!(
            "{id}: K={k} {strategy:<10} aborts {} -> {} oversize {} \
             median-err {} -> {}{}",
            st.aborts,
            ad.aborts,
            ad.oversize,
            st.median_err.map_or("-".into(), |e| format!("{e:.2}%")),
            ad.median_err.map_or("-".into(), |e| format!("{e:.2}%")),
            if staged_ok && err_ok { "  HOLDS" } else { "  FAIL" },
        );
    }
    if !static_aborted {
        return Err(EngineError::config(format!(
            "table {id:?}: no static row aborts — the regime is vacuous \
             (heap too large for the workload?)"
        )));
    }
    if err_pairs == 0 {
        return Err(EngineError::config(format!(
            "table {id:?}: no sweep point reports est-vs-actual error for \
             both models — nothing to compare"
        )));
    }
    Ok(ok)
}

/// Speedup floors for the kernel gate (`--kernels`).
const KERNEL_HEADLINE_MIN: f64 = 3.0;
const KERNEL_FLOOR: f64 = 0.95;
const KERNEL_HEADLINE_ROWS: f64 = 10_000_000.0;
const KERNEL_HEADLINE_WORKERS: f64 = 8.0;

/// The kernel gate: every `(kernel, rows, workers)` speedup must stay
/// above `KERNEL_FLOOR`, and `select` / `aggregate` at 8 workers on the
/// 10M-row input must stay above `KERNEL_HEADLINE_MIN`.
fn check_kernels(doc: &Json) -> Result<bool, EngineError> {
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| EngineError::config("document has no 'entries' array"))?;
    let mut ok = true;
    let mut headline_seen = 0usize;
    for (i, entry) in entries.iter().enumerate() {
        let workers = entry
            .get("workers")
            .and_then(Json::as_num)
            .ok_or_else(|| EngineError::config(format!("entry {i} has no 'workers'")))?;
        let results = entry
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| EngineError::config(format!("entry {i} has no 'results'")))?;
        for (j, r) in results.iter().enumerate() {
            let field = |name: &str| {
                r.get(name).and_then(Json::as_num).ok_or_else(|| {
                    EngineError::config(format!(
                        "entry {i} result {j} has no numeric {name:?}"
                    ))
                })
            };
            let kernel = r.get("kernel").and_then(Json::as_str).ok_or_else(|| {
                EngineError::config(format!("entry {i} result {j} has no 'kernel'"))
            })?;
            let rows = field("rows")?;
            let speedup = field("speedup")?;
            let headline = (kernel == "select" || kernel == "aggregate")
                && rows == KERNEL_HEADLINE_ROWS
                && workers == KERNEL_HEADLINE_WORKERS;
            headline_seen += headline as usize;
            let min = if headline { KERNEL_HEADLINE_MIN } else { KERNEL_FLOOR };
            let holds = speedup >= min;
            ok &= holds;
            println!(
                "kernels: {kernel:<26} rows={rows:>10.0} workers={workers:.0} \
                 speedup {speedup:.3} (floor {min}){}",
                if holds { "" } else { "  FAIL" },
            );
        }
    }
    if headline_seen < 2 {
        return Err(EngineError::config(format!(
            "no 8-worker 10M-row select/aggregate entries found (saw \
             {headline_seen}) — regenerate BENCH_kernels.json with the full sweep"
        )));
    }
    Ok(ok)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    };
    let src = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(2);
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {}: malformed JSON: {e}", args.path);
            std::process::exit(1);
        }
    };
    if args.kernels {
        match check_kernels(&doc) {
            Ok(true) => {
                println!(
                    "bench-diff: ok — kernel speedups hold ({KERNEL_HEADLINE_MIN}x \
                     headline, {KERNEL_FLOOR}x floor)"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: a kernel speedup fell below its floor \
                     (headline {KERNEL_HEADLINE_MIN}x, global {KERNEL_FLOOR}x)"
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    if args.serving {
        match check_serving(&doc, "serving-ssb", args.max_ratio) {
            Ok(true) => {
                println!(
                    "bench-diff: ok — serving robustness criterion holds at the \
                     highest tested rate"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: Data-Driven Chopping p99 exceeds {} x GPU \
                     Only p99 at the highest tested arrival rate",
                    args.max_ratio
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    if args.streaming {
        match check_streaming(&doc, "streaming-ssb", args.max_ratio) {
            Ok(true) => {
                println!(
                    "bench-diff: ok — streaming robustness criterion holds at the \
                     tightest tested window period"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: Data-Driven Chopping missed window ticks or \
                     its tick p99 exceeds {} x GPU Only's at the tightest tested \
                     window period",
                    args.max_ratio
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    if args.adaptive {
        match check_adaptive(&doc, "multigpu-adaptive") {
            Ok(true) => {
                println!(
                    "bench-diff: ok — adaptive placement criterion holds \
                     (staging absorbs over-heap operators, adaptive error \
                     undercuts static)"
                );
                return;
            }
            Ok(false) => {
                eprintln!(
                    "bench-diff: FAIL: a staged row recorded an oversize \
                     fallback, aborted more than its static sibling, or did \
                     not beat the static median est-vs-actual error"
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench-diff: {}: {e}", args.path);
                std::process::exit(1);
            }
        }
    }
    // SSB carries the success criterion; TPC-H is reported for context.
    match check_table(&doc, "multigpu-ssb", args.max_ratio) {
        Ok(true) => {}
        Ok(false) => {
            eprintln!(
                "bench-diff: FAIL: no sharded strategy reaches max-K makespan \
                 <= {} x its K=1 baseline on SSB",
                args.max_ratio
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-diff: {}: {e}", args.path);
            std::process::exit(1);
        }
    }
    if let Err(e) = check_table(&doc, "multigpu-tpch", args.max_ratio) {
        eprintln!("bench-diff: note: tpch table skipped: {e}");
    }
    println!("bench-diff: ok — sharded scaling criterion holds");
}
