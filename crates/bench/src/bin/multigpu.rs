//! Multi-GPU sweep: the same workload at K ∈ {1, 2, 4} co-processors.
//!
//! The paper evaluates one CPU and one GPU; its conclusion names
//! multiple co-processors as the natural extension. With the N-device
//! topology the co-processor count is a configuration axis
//! ([`SimConfig::with_coprocessors`]): this sweep runs an SSB and a
//! TPC-H workload at each K under a static and a learned placement
//! strategy, prints the per-device utilisation, and writes
//! `BENCH_multigpu.json` at the repository root so the scaling
//! trajectory is tracked across commits.
//!
//! Every run's query results are checked against the K = 1 baseline —
//! adding co-processors must never change *what* a query returns, only
//! where its operators run.
//!
//! ```text
//! cargo run -p robustq-bench --release --bin multigpu
//! cargo run -p robustq-bench --release --bin multigpu -- --users 8 --ks 1,2,4
//! cargo run -p robustq-bench --release --bin multigpu -- --ks 2 --trace multigpu-trace.json
//! cargo run -p robustq-bench --release --bin multigpu -- --shard --replicate-max-bytes 65536
//! ```
//!
//! `--trace PATH` traces the largest-K SSB run under the learned
//! strategy, asserts the Chrome export carries one kernel lane per
//! device, and writes the JSON to PATH (CI feeds it to `trace-lint`).
//!
//! `--shard` adds intra-operator sharding rows (DESIGN.md §12): each K
//! is additionally swept with `K`-way sharded leaf scans under the two
//! shard-aware strategies, and `--replicate-max-bytes` bounds how large
//! a table the data placement manager replicates into every cache
//! instead of partitioning. Sharded rows must reproduce the unsharded
//! K = 1 result fingerprints bit for bit.
//!
//! `--adaptive` adds the DESIGN.md §15 comparison table
//! (`multigpu-adaptive`): the SSB workload on a deliberately small
//! co-processor heap, once under the static cost model with chunked
//! staging off (over-heap operators abort to the CPU) and once under the
//! adaptive model with chunked staging on (they complete on-device in
//! chunks). `bench-diff --adaptive` gates that the staged rows record
//! zero oversize fallbacks, no more aborts than their static siblings,
//! and a strictly lower median est-vs-actual error.

use std::collections::BTreeMap;

use robustq_bench::args::{ArgStream, CommonArgs};
use robustq_bench::table::{tables_json, FigTable};
use robustq_engine::EngineError;
use robustq::prelude::*;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_storage::gen::tpch::TpchGenerator;
use robustq_storage::Database;
use robustq_workloads::{ssb, tpch, RunReport, WorkloadRunner};

struct Args {
    common: CommonArgs,
    shard: bool,
    adaptive: bool,
    replicate_max_bytes: u64,
}

fn parse_args() -> Result<Args, EngineError> {
    let mut args = Args {
        common: CommonArgs::new("BENCH_multigpu.json"),
        shard: false,
        adaptive: false,
        replicate_max_bytes: 64 * 1024,
    };
    let mut it = ArgStream::from_env();
    while let Some(flag) = it.next_flag() {
        if args.common.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shard" => args.shard = true,
            "--adaptive" => args.adaptive = true,
            "--replicate-max-bytes" => {
                args.replicate_max_bytes = it.parsed("--replicate-max-bytes")?
            }
            other => return Err(ArgStream::unknown_flag(other)),
        }
    }
    Ok(args)
}

fn ms(t: VirtualTime) -> String {
    format!("{:.3}", t.as_secs_f64() * 1e3)
}

/// Per-device busy times as one readable cell: `CPU 1.2 | GPU 3.4 | …`.
fn busy_cell(m: &RunMetrics) -> String {
    m.device_busy
        .iter()
        .map(|(d, t)| format!("{d} {}", ms(*t)))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// `(session, seq) -> (rows, checksum)` — the result fingerprint a sweep
/// point must reproduce regardless of K.
fn result_map(report: &RunReport) -> BTreeMap<(usize, usize), (usize, u64)> {
    report
        .outcomes
        .iter()
        .map(|o| ((o.session, o.seq), (o.rows, o.checksum)))
        .collect()
}

/// One workload's sweep state: the result table, the K = 1 baseline
/// fingerprints every later point must reproduce, and failure count.
struct Sweep {
    name: &'static str,
    base_k: usize,
    table: FigTable,
    baseline: Option<BTreeMap<(usize, usize), (usize, u64)>>,
    failures: u64,
}

impl Sweep {
    /// Check the result fingerprints and append one table row.
    fn record(&mut self, k: usize, label: &str, report: &RunReport) {
        let results = result_map(report);
        match &self.baseline {
            None => self.baseline = Some(results),
            Some(want) => {
                if *want != results {
                    eprintln!(
                        "multigpu: FAIL: {} K={k} {label} drifted from the \
                         K={} baseline results",
                        self.name, self.base_k,
                    );
                    self.failures += 1;
                }
            }
        }
        let m = &report.metrics;
        let probes = m.cache_hits + m.cache_misses;
        self.table.push_row([
            k.to_string(),
            label.to_string(),
            ms(m.makespan),
            ms(RunMetrics::mean_latency(&report.outcomes)),
            m.aborts.to_string(),
            if probes == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * m.cache_hits as f64 / probes as f64)
            },
            busy_cell(m),
        ]);
    }

    /// Write the traced run's Chrome export, asserting one kernel lane
    /// per device first.
    fn export_trace(&mut self, path: &str, report: &RunReport, k: usize) {
        let m = &report.metrics;
        let data = report.trace.as_ref().expect("traced run records events");
        // A truncated ring means the export (and anything re-derived from
        // it) silently under-reports — fail loudly instead.
        if data.dropped > 0 {
            eprintln!(
                "multigpu: FAIL: trace ring overflowed ({} events dropped)",
                data.dropped
            );
            self.failures += 1;
        }
        let chrome = report.chrome_trace().expect("traced run exports");
        for (d, _) in m.device_busy.iter() {
            let lane = format!("{d} kernels");
            if !chrome.contains(&lane) {
                eprintln!("multigpu: FAIL: trace has no lane {lane:?}");
                self.failures += 1;
            }
        }
        if let Err(e) = std::fs::write(path, &chrome) {
            eprintln!("multigpu: cannot write {path}: {e}");
            self.failures += 1;
        } else {
            println!("trace: {path} (K={k}, {} lanes expected)", m.device_busy.len());
        }
    }
}

/// Median est-vs-actual relative error over a run's model samples, in
/// percent; `None` when the policy records no samples (e.g. plan-time
/// pinning strategies that never consult a cost model).
fn median_err_pct(report: &RunReport) -> Option<f64> {
    let mut errs: Vec<f64> =
        report.model_samples.iter().map(ModelUpdate::relative_error).collect();
    if errs.is_empty() {
        return None;
    }
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    Some(100.0 * errs[errs.len() / 2])
}

/// The DESIGN.md §15 comparison: static model + abort-to-CPU versus
/// adaptive model + chunked staging, on a heap small enough that the SSB
/// join footprints exceed it. Returns the `multigpu-adaptive` table and
/// the number of failures (result fingerprints must stay identical to
/// the static baseline — staging may move work, never change answers).
fn adaptive_sweep(
    db: &Database,
    queries: &[PlanNode],
    ks: &[usize],
    users: usize,
) -> (FigTable, u64) {
    let mut table = FigTable::new(
        "multigpu-adaptive",
        "SSB on a 128 KiB-heap fleet: static model + CPU fallback vs \
         adaptive model + chunked staging",
    )
    .with_columns([
        "K",
        "Strategy",
        "Model",
        "Makespan [ms]",
        "Aborts",
        "Oversize",
        "MedianErr %",
    ]);
    // A heap a fraction of the scaling sweep's (memory minus cache =
    // 128 KiB): the fact-table joins' working footprints no longer fit,
    // so placement either aborts them mid-flight (static rows) or stages
    // them in chunks (adaptive rows).
    let sim_base =
        SimConfig::default().with_gpu_memory(384 * 1024).with_gpu_cache(256 * 1024);
    let mut failures = 0u64;
    let mut baseline: Option<BTreeMap<(usize, usize), (usize, u64)>> = None;
    for &k in ks {
        let runner = WorkloadRunner::new(db, sim_base.clone().with_coprocessors(k));
        for strategy in [Strategy::GpuPreferred, Strategy::Chopping] {
            for (model, kind, staged) in [
                ("static", CostModelKind::Static, false),
                ("adaptive", CostModelKind::Adaptive { seed: 42 }, true),
            ] {
                let mut cfg =
                    RunnerConfig::default().with_users(users).with_cost_model(kind);
                if staged {
                    cfg = cfg.with_chunked_staging();
                }
                let report =
                    runner.run(queries, strategy, &cfg).expect("adaptive sweep run");
                let results = result_map(&report);
                match &baseline {
                    None => baseline = Some(results),
                    Some(want) => {
                        if *want != results {
                            eprintln!(
                                "multigpu: FAIL: adaptive K={k} {} {model} drifted \
                                 from the baseline results",
                                strategy.name(),
                            );
                            failures += 1;
                        }
                    }
                }
                table.push_row([
                    k.to_string(),
                    strategy.name().to_string(),
                    model.to_string(),
                    ms(report.metrics.makespan),
                    report.metrics.aborts.to_string(),
                    report.staging.oversize_fallbacks.to_string(),
                    match median_err_pct(&report) {
                        Some(pct) => format!("{pct:.2}"),
                        None => "-".to_string(),
                    },
                ]);
            }
        }
    }
    (table, failures)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("multigpu: {e}");
            std::process::exit(2);
        }
    };
    let max_k = *args.common.ks.iter().max().expect("ks non-empty");

    let ssb_db: Database = SsbGenerator::new(1).with_rows_per_sf(args.common.rows).generate();
    let tpch_db: Database = TpchGenerator::new(1).with_rows_per_sf(args.common.rows).generate();
    let workloads: [(&str, &Database, Vec<PlanNode>); 2] = [
        ("ssb", &ssb_db, ssb::workload(&ssb_db).expect("SSB plans")),
        ("tpch", &tpch_db, tpch::workload()),
    ];
    // Tight caches, roomy heaps: at the default row count one fact table
    // overflows a single 256 KiB cache (so K = 1 degrades to the CPU or
    // thrashes) while its K-way partitions fit across the fleet — the
    // regime where intra-operator sharding pays. The 2 MiB heap keeps
    // downstream joins from aborting once they follow the data out.
    let base_sim =
        SimConfig::default().with_gpu_memory(2 * 1024 * 1024).with_gpu_cache(256 * 1024);
    let strategies = [Strategy::GpuPreferred, Strategy::Chopping, Strategy::DataDrivenChopping];

    let mut tables = Vec::new();
    let mut failures = 0u64;
    for (name, db, queries) in &workloads {
        let table = FigTable::new(
            format!("multigpu-{name}"),
            format!("{name} workload swept over K co-processors (shared-queue executor)"),
        )
        .with_columns([
            "K",
            "Strategy",
            "Makespan [ms]",
            "Mean latency [ms]",
            "Aborts",
            "Cache hit %",
            "Busy per device [ms]",
        ]);
        let mut sweep =
            Sweep { name, base_k: args.common.ks[0], table, baseline: None, failures: 0 };
        for &k in &args.common.ks {
            let sim = base_sim.clone().with_coprocessors(k);
            let runner = WorkloadRunner::new(db, sim);
            for strategy in strategies {
                // With --shard the traced run is the sharded one below,
                // so the shard lanes reach trace-lint.
                let trace_this = args.common.trace.is_some()
                    && !args.shard
                    && *name == "ssb"
                    && k == max_k
                    && strategy == Strategy::DataDrivenChopping;
                let mut cfg = RunnerConfig::default().with_users(args.common.users);
                if trace_this {
                    cfg = cfg.with_trace();
                }
                let report = runner.run(queries, strategy, &cfg).expect("sweep run");
                sweep.record(k, strategy.name(), &report);
                if trace_this {
                    let path = args.common.trace.as_deref().expect("trace path");
                    sweep.export_trace(path, &report, k);
                }
            }
            if args.shard {
                // K-way sharded leaf scans under the shard-aware
                // strategies. The data-placement manager partitions large
                // tables with the same `ways` so shards find their slice.
                let sharded: [(&'static str, Box<dyn PlacementPolicy>); 2] = [
                    ("Chopping + Shard", Box::new(Chopping::new())),
                    (
                        "Data-Driven Chopping + Shard",
                        Box::new(DataDrivenChopping::with_manager(
                            DataPlacementManager::lfu()
                                .with_sharding(k, args.replicate_max_bytes),
                        )),
                    ),
                ];
                for (label, mut policy) in sharded {
                    let trace_this = args.common.trace.is_some()
                        && *name == "ssb"
                        && k == max_k
                        && label == "Data-Driven Chopping + Shard";
                    let mut cfg = RunnerConfig::default()
                        .with_users(args.common.users)
                        .with_sharding(k, 0.0);
                    if trace_this {
                        cfg = cfg.with_trace();
                    }
                    let report = runner
                        .run_with_policy(queries, policy.as_mut(), label, &cfg)
                        .expect("sharded sweep run");
                    sweep.record(k, label, &report);
                    if trace_this {
                        let path = args.common.trace.as_deref().expect("trace path");
                        sweep.export_trace(path, &report, k);
                    }
                }
            }
        }
        println!("{}", sweep.table);
        failures += sweep.failures;
        tables.push(sweep.table);
    }

    if args.adaptive {
        let ssb_queries = &workloads[0].2;
        let (table, fails) =
            adaptive_sweep(&ssb_db, ssb_queries, &args.common.ks, args.common.users);
        println!("{table}");
        failures += fails;
        tables.push(table);
    }

    if let Err(e) = std::fs::write(&args.common.out, tables_json(&tables)) {
        eprintln!("multigpu: cannot write {}: {e}", args.common.out);
        failures += 1;
    } else {
        println!("wrote {}", args.common.out);
    }

    if failures > 0 {
        eprintln!("multigpu: {failures} failure(s)");
        std::process::exit(1);
    }
}
