//! Figure/table regeneration harness.
//!
//! One module per figure of the paper (see DESIGN.md §3 for the index).
//! Each figure function returns a [`FigTable`] — the same rows/series the
//! paper plots — which the `figures` binary and the `figures` bench
//! target print.
//!
//! ## Scaling
//!
//! All experiments run on linearly downscaled data (see DESIGN.md §1):
//! `Effort::Quick` (default under `cargo bench`) uses small row counts so
//! the full suite finishes in minutes; `Effort::Full` uses 4× more rows
//! for smoother curves. Device parameters are downscaled with the data,
//! preserving every working-set/cache and footprint/heap *ratio* the
//! paper's effects depend on. Times are virtual milliseconds — shapes and
//! factors are comparable to the paper, absolute values are not.

pub mod args;
pub mod figures;
pub mod machine;
pub mod table;

pub use machine::{Effort, MicroSetup, WorkloadKind, WorkloadSetup};
pub use table::FigTable;

/// One traced reference run: the SSB workload at SF 10 on the
/// full-workload machine under Data-Driven Chopping, with structured
/// tracing enabled. This is the run the `figures` binary exports with
/// `--trace` and CI pipes through `trace-lint`.
pub fn traced_reference_run(effort: Effort) -> robustq_workloads::RunReport {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(10);
    let queries = setup.queries(&db);
    let runner = robustq_workloads::WorkloadRunner::new(&db, setup.sim());
    let cfg = robustq_workloads::RunnerConfig::default()
        .with_users(2)
        .with_parallel(machine::parallel_ctx())
        .with_trace();
    runner
        .run(&queries, robustq_core::Strategy::DataDrivenChopping, &cfg)
        .expect("traced reference run")
}

/// Run every figure at the given effort, in paper order.
pub fn all_figures(effort: Effort) -> Vec<FigTable> {
    vec![
        figures::fig01::run(effort),
        figures::fig02::run(effort),
        figures::fig03::run(effort),
        figures::fig05::run(effort),
        figures::fig06::run(effort),
        figures::fig07::run(effort),
        figures::fig08::run(effort),
        figures::fig09::run(effort),
        figures::fig12::run(effort),
        figures::fig13::run(effort),
        figures::fig14::run(effort),
        figures::fig15::run(effort),
        figures::fig16::run(effort),
        figures::fig17::run(effort),
        figures::fig18::run(effort),
        figures::fig19::run(effort),
        figures::fig20::run(effort),
        figures::fig21::run(effort),
        figures::fig22::run(effort),
        figures::fig23::run(effort),
        figures::fig24::run(effort),
        figures::fig25::run(effort),
    ]
}

/// Look up one figure by id (e.g. `"fig14"`).
pub fn figure_by_id(id: &str, effort: Effort) -> Option<FigTable> {
    let run = match id {
        "fig01" | "fig1" => figures::fig01::run,
        "fig02" | "fig2" => figures::fig02::run,
        "fig03" | "fig3" => figures::fig03::run,
        "fig05" | "fig5" => figures::fig05::run,
        "fig06" | "fig6" => figures::fig06::run,
        "fig07" | "fig7" => figures::fig07::run,
        "fig08" | "fig8" => figures::fig08::run,
        "fig09" | "fig9" => figures::fig09::run,
        "fig12" => figures::fig12::run,
        "fig13" => figures::fig13::run,
        "fig14" => figures::fig14::run,
        "fig15" => figures::fig15::run,
        "fig16" => figures::fig16::run,
        "fig17" => figures::fig17::run,
        "fig18" => figures::fig18::run,
        "fig19" => figures::fig19::run,
        "fig20" => figures::fig20::run,
        "fig21" => figures::fig21::run,
        "fig22" => figures::fig22::run,
        "fig23" => figures::fig23::run,
        "fig24" => figures::fig24::run,
        "fig25" => figures::fig25::run,
        _ => return None,
    };
    Some(run(effort))
}

/// Ids of all figures, in paper order.
pub const FIGURE_IDS: [&str; 22] = [
    "fig01", "fig02", "fig03", "fig05", "fig06", "fig07", "fig08", "fig09", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
    "fig23", "fig24", "fig25",
];
