//! Result tables.

use std::fmt;

/// One regenerated figure/table: a header plus aligned rows, in the same
/// shape (series/columns) the paper plots.
#[derive(Debug, Clone)]
pub struct FigTable {
    /// Figure id, e.g. `"fig14a"`.
    pub id: String,
    /// What the paper's figure shows.
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl FigTable {
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        FigTable {
            id: id.into(),
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn with_columns<S: Into<String>>(
        mut self,
        cols: impl IntoIterator<Item = S>,
    ) -> Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Cell value parsed as f64 (for assertions in tests).
    pub fn value(&self, row: usize, col: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == col)?;
        self.rows.get(row)?.get(c)?.parse().ok()
    }

    /// Serialize the table as pretty-printed JSON (for plotting scripts).
    ///
    /// Hand-rolled (the build has no registry access for serde): two-space
    /// indent, fields in declaration order, full string escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str("  \"columns\": ");
        out.push_str(&json_string_array(&self.columns));
        out.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str(&json_string_array(row));
        }
        out.push_str(if self.rows.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out
    }

    /// All values of one column parsed as f64.
    pub fn column_values(&self, col: &str) -> Vec<f64> {
        let Some(c) = self.columns.iter().position(|x| x == col) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r.get(c)?.parse().ok()).collect()
    }
}

impl fmt::Display for FigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Format virtual milliseconds with three decimals.
pub fn ms(t: robustq_sim::VirtualTime) -> String {
    format!("{:.3}", t.as_millis_f64())
}

/// Escape `s` as a JSON string literal (with surrounding quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Wrap tables in the `{"tables": [...]}` document every sweep bin
/// writes and `bench-diff` reads.
pub fn tables_json(tables: &[FigTable]) -> String {
    let mut json = String::from("{\n  \"tables\": [");
    for (i, t) in tables.iter().enumerate() {
        json.push_str(if i == 0 { "\n" } else { ",\n" });
        for line in t.to_json().lines() {
            json.push_str("    ");
            json.push_str(line);
            json.push('\n');
        }
        json.pop(); // keep the closing brace on its own indented line
    }
    json.push_str("\n  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::VirtualTime;

    #[test]
    fn build_and_query() {
        let mut t = FigTable::new("figX", "demo").with_columns(["a", "b"]);
        t.push_row(["1.5", "x"]);
        t.push_row(["2.5", "y"]);
        assert_eq!(t.value(0, "a"), Some(1.5));
        assert_eq!(t.value(1, "b"), None, "non-numeric cell");
        assert_eq!(t.column_values("a"), vec![1.5, 2.5]);
        assert!(t.column_values("zz").is_empty());
    }

    #[test]
    fn display_aligns() {
        let mut t = FigTable::new("f", "t").with_columns(["col", "x"]);
        t.push_row(["1", "22"]);
        let s = t.to_string();
        assert!(s.contains("== f — t =="));
        assert!(s.contains("col"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(VirtualTime::from_micros(1500)), "1.500");
    }

    #[test]
    fn json_has_expected_structure() {
        let mut t = FigTable::new("figX", "demo").with_columns(["a", "b"]);
        t.push_row(["1", "x"]);
        let json = t.to_json();
        assert!(json.contains("\"id\": \"figX\""), "{json}");
        assert!(json.contains("\"columns\": [\"a\", \"b\"]"), "{json}");
        assert!(json.contains("[\"1\", \"x\"]"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn tables_json_wraps_documents() {
        let mut t = FigTable::new("figX", "demo").with_columns(["a"]);
        t.push_row(["1"]);
        let doc = tables_json(std::slice::from_ref(&t));
        assert!(doc.starts_with("{\n  \"tables\": ["), "{doc}");
        assert!(doc.contains("\"id\": \"figX\""), "{doc}");
        assert!(doc.ends_with("]\n}\n"), "{doc}");
    }

    #[test]
    fn json_empty_table_is_wellformed() {
        let t = FigTable::new("f", "t");
        let json = t.to_json();
        assert!(json.contains("\"columns\": []"), "{json}");
        assert!(json.contains("\"rows\": []"), "{json}");
    }
}
