//! Experiment machine configurations and database caching.
//!
//! The simulated machine is shaped per experiment family so the paper's
//! resource *ratios* hold at our data downscale (DESIGN.md §1):
//!
//! * **serial micro** (Figs 2/5/6): co-processor cache swept around the
//!   8-column working set, heap large enough that no contention occurs;
//! * **parallel micro** (Figs 3/7/9/12/13): cache fits the two filter
//!   columns, heap sized so ~7 concurrent selections exhaust it — the
//!   paper's `n = M / (3.25·|C|) ≈ 7` break-even (Section 3.4);
//! * **full workloads** (Figs 14–21, 24, 25): cache sized to the SSB
//!   working set at scale factor 15, where the paper's cache-thrashing
//!   crossover sits (Figure 16).

use robustq_engine::plan::PlanNode;
use robustq_engine::ParallelCtx;
use robustq_sim::SimConfig;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_storage::gen::tpch::TpchGenerator;
use robustq_storage::Database;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How much work to spend regenerating figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effort {
    /// Small row counts; the full suite runs in a few minutes.
    Quick,
    /// ~3× more rows and repetitions for smoother curves.
    Full,
}

impl Effort {
    /// Read from `ROBUSTQ_EFFORT` (`full` selects [`Effort::Full`]).
    pub fn from_env() -> Effort {
        match std::env::var("ROBUSTQ_EFFORT").as_deref() {
            Ok("full") | Ok("FULL") => Effort::Full,
            _ => Effort::Quick,
        }
    }
}

/// Real-CPU parallelism for the benches' kernel execution: worker count
/// from `ROBUSTQ_WORKERS`, defaulting to all available hardware threads.
/// Results and virtual-time figures are bit-identical across settings —
/// this only changes how long the benches take on the wall clock.
pub fn parallel_ctx() -> ParallelCtx {
    match std::env::var("ROBUSTQ_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(w) => ParallelCtx::serial().with_workers(w),
        None => ParallelCtx::auto(),
    }
}

/// Which benchmark a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    Ssb,
    Tpch,
}

impl WorkloadKind {
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Ssb => "SSBM",
            WorkloadKind::Tpch => "TPC-H",
        }
    }
}

type DbCache = Mutex<HashMap<(WorkloadKind, u32, usize), Arc<Database>>>;

fn db_cache() -> &'static DbCache {
    static CACHE: OnceLock<DbCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized SSB database.
pub fn ssb_db(sf: u32, rows_per_sf: usize) -> Arc<Database> {
    let mut cache = db_cache().lock().expect("db cache lock");
    Arc::clone(
        cache
            .entry((WorkloadKind::Ssb, sf, rows_per_sf))
            .or_insert_with(|| {
                Arc::new(SsbGenerator::new(sf).with_rows_per_sf(rows_per_sf).generate())
            }),
    )
}

/// Memoized TPC-H database.
pub fn tpch_db(sf: u32, rows_per_sf: usize) -> Arc<Database> {
    let mut cache = db_cache().lock().expect("db cache lock");
    Arc::clone(
        cache
            .entry((WorkloadKind::Tpch, sf, rows_per_sf))
            .or_insert_with(|| {
                Arc::new(TpchGenerator::new(sf).with_rows_per_sf(rows_per_sf).generate())
            }),
    )
}

/// Sum of distinct base-column bytes the workload's plans read — the
/// working-set / memory-footprint measure of Figure 16.
pub fn workload_footprint(db: &Database, queries: &[PlanNode]) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    for q in queries {
        collect_footprint(q, db, &mut seen, &mut total);
    }
    total
}

fn collect_footprint(
    node: &PlanNode,
    db: &Database,
    seen: &mut std::collections::HashSet<robustq_storage::ColumnId>,
    total: &mut u64,
) {
    if let Some((table, cols)) = node.scan_access() {
        for c in &cols {
            if let Some(id) = db.column_id(table, c) {
                if seen.insert(id) {
                    *total += db.column_size(id);
                }
            }
        }
    }
    for c in node.children() {
        collect_footprint(c, db, seen, total);
    }
}

/// Setup for the serial selection micro-benchmark (B.1).
pub struct MicroSetup {
    pub db: Arc<Database>,
    /// Bytes of the eight filter columns (the working set).
    pub working_set: u64,
    /// Measured repetitions of the 8-query round.
    pub reps: usize,
}

impl MicroSetup {
    pub fn new(effort: Effort) -> Self {
        let rows_per_sf = match effort {
            Effort::Quick => 4_000,
            Effort::Full => 12_000,
        };
        let db = ssb_db(10, rows_per_sf);
        let queries = robustq_workloads::micro::serial_selection_workload(1);
        let working_set = workload_footprint(&db, &queries);
        let reps = match effort {
            Effort::Quick => 6,
            Effort::Full => 12,
        };
        MicroSetup { db, working_set, reps }
    }

    /// Machine with the given co-processor cache size and a heap generous
    /// enough that no heap contention interferes.
    pub fn sim(&self, cache_bytes: u64) -> SimConfig {
        let heap = 6 * self.working_set;
        SimConfig::default()
            .with_gpu_memory(cache_bytes + heap)
            .with_gpu_cache(cache_bytes)
    }

    /// The cache-size sweep as fractions of the working set (Figure 2's
    /// x-axis around the 1.9 GB working set).
    pub fn cache_fractions() -> &'static [f64] {
        &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0, 1.15]
    }
}

/// Setup for the parallel selection micro-benchmark (B.2).
pub struct ParallelSetup {
    pub db: Arc<Database>,
    /// Bytes of the two filter columns (`|C|`).
    pub column_bytes: u64,
    /// Total queries in the fixed workload.
    pub total_queries: usize,
    /// The user counts swept.
    pub users: Vec<usize>,
}

impl ParallelSetup {
    pub fn new(effort: Effort) -> Self {
        let rows_per_sf = match effort {
            Effort::Quick => 4_000,
            Effort::Full => 12_000,
        };
        let db = ssb_db(10, rows_per_sf);
        let query = robustq_workloads::micro::parallel_selection_query();
        let column_bytes = workload_footprint(&db, std::slice::from_ref(&query));
        let total_queries = match effort {
            Effort::Quick => 40,
            Effort::Full => 100,
        };
        let users = match effort {
            Effort::Quick => vec![1, 2, 4, 6, 8, 12, 16, 20],
            Effort::Full => vec![1, 2, 4, 6, 7, 8, 10, 12, 14, 16, 18, 20],
        };
        ParallelSetup { db, column_bytes, total_queries, users }
    }

    /// Machine whose heap fits ~7 concurrent selection footprints —
    /// the paper's break-even point (Section 3.4).
    pub fn sim(&self) -> SimConfig {
        let footprint = (3.45 * self.column_bytes as f64) as u64;
        let heap = 7 * footprint;
        let cache = self.column_bytes * 2;
        SimConfig::default()
            .with_gpu_memory(cache + heap)
            .with_gpu_cache(cache)
    }
}

/// Setup for the full SSB / TPC-H workload experiments.
pub struct WorkloadSetup {
    pub kind: WorkloadKind,
    pub rows_per_sf: usize,
    /// Scale factors swept in the Figure 14–16 experiments.
    pub scale_factors: Vec<u32>,
    /// User counts swept in the Figure 18–21/25 experiments (at SF 10).
    pub users: Vec<usize>,
    /// Workload repetitions per run in multi-user experiments.
    pub multiuser_reps: usize,
}

impl WorkloadSetup {
    pub fn new(kind: WorkloadKind, effort: Effort) -> Self {
        let rows_per_sf = match effort {
            Effort::Quick => 1_500,
            Effort::Full => 4_000,
        };
        let scale_factors = match kind {
            WorkloadKind::Ssb => vec![1, 5, 10, 15, 20, 25, 30],
            WorkloadKind::Tpch => vec![1, 5, 10, 15, 20],
        };
        let users = match effort {
            Effort::Quick => vec![1, 5, 10, 20],
            Effort::Full => vec![1, 5, 10, 15, 20],
        };
        let multiuser_reps = match effort {
            Effort::Quick => 3,
            Effort::Full => 6,
        };
        WorkloadSetup { kind, rows_per_sf, scale_factors, users, multiuser_reps }
    }

    /// Database at scale factor `sf`.
    pub fn db(&self, sf: u32) -> Arc<Database> {
        match self.kind {
            WorkloadKind::Ssb => ssb_db(sf, self.rows_per_sf),
            WorkloadKind::Tpch => tpch_db(sf, self.rows_per_sf),
        }
    }

    /// The workload's query plans against `db`.
    pub fn queries(&self, db: &Database) -> Vec<PlanNode> {
        match self.kind {
            WorkloadKind::Ssb => {
                robustq_workloads::ssb::workload(db).expect("SSB queries plan")
            }
            WorkloadKind::Tpch => robustq_workloads::tpch::workload(),
        }
    }

    /// Machine whose cache crosses the workload's working set at the
    /// paper's SF≈15 crossover point (Figure 16).
    pub fn sim(&self) -> SimConfig {
        let db15 = self.db(15);
        let cache = workload_footprint(&db15, &self.queries(&db15));
        let heap = cache * 4;
        SimConfig::default()
            .with_gpu_memory(cache + heap)
            .with_gpu_cache(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_memoization_returns_same_instance() {
        let a = ssb_db(1, 500);
        let b = ssb_db(1, 500);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ssb_db(2, 500);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn footprint_counts_distinct_columns_once() {
        let db = ssb_db(1, 500);
        let q = robustq_workloads::micro::serial_selection_workload(3);
        let once = robustq_workloads::micro::serial_selection_workload(1);
        assert_eq!(workload_footprint(&db, &q), workload_footprint(&db, &once));
        // Eight columns: 4×i32 + 4×f64 per row.
        assert_eq!(workload_footprint(&db, &once), 500 * (4 * 4 + 4 * 8));
    }

    #[test]
    fn micro_setup_ratios() {
        let s = MicroSetup::new(Effort::Quick);
        let sim = s.sim(s.working_set / 2);
        assert_eq!(sim.gpu().cache_bytes, s.working_set / 2);
        assert!(sim.gpu().heap_bytes() >= 6 * s.working_set);
    }

    #[test]
    fn parallel_setup_heap_fits_about_seven() {
        let s = ParallelSetup::new(Effort::Quick);
        let sim = s.sim();
        let per_op = (3.45 * s.column_bytes as f64) as u64;
        let fit = sim.gpu().heap_bytes() / per_op;
        assert!((6..=8).contains(&fit), "heap fits {fit} ops, want ~7");
    }

    #[test]
    fn workload_setup_cache_crosses_at_sf15() {
        let s = WorkloadSetup::new(WorkloadKind::Ssb, Effort::Quick);
        let sim = s.sim();
        let db10 = s.db(10);
        let db20 = s.db(20);
        let ws10 = workload_footprint(&db10, &s.queries(&db10));
        let ws20 = workload_footprint(&db20, &s.queries(&db20));
        assert!(ws10 <= sim.gpu().cache_bytes, "SF10 fits the cache");
        assert!(ws20 > sim.gpu().cache_bytes, "SF20 exceeds the cache");
    }

    #[test]
    fn effort_from_env_defaults_quick() {
        // Unless the variable is set in the environment, Quick.
        if std::env::var("ROBUSTQ_EFFORT").is_err() {
            assert_eq!(Effort::from_env(), Effort::Quick);
        }
    }
}
