//! One module per regenerated figure (DESIGN.md §3 maps each to the
//! paper). Shared parameter sweeps live in [`sweeps`] and are memoized, so
//! figures that plot different metrics of the same experiment (e.g.
//! Figures 14 and 15) run it once.

pub mod sweeps;

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
