//! Figure 14: average workload execution time of the SSBM (a) and the
//! TPC-H subset (b) while scaling the database. GPU-only falls off once
//! the working set exceeds the co-processor cache (paper: SF≈15);
//! Data-Driven Chopping improves performance and is never slower than the
//! other heuristics.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;

pub fn run(effort: Effort) -> FigTable {
    let mut t = FigTable::new(
        "fig14",
        "Workload execution time vs scale factor (a: SSBM, b: TPC-H)",
    )
    .with_columns([
        "benchmark",
        "SF",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for kind in [WorkloadKind::Ssb, WorkloadKind::Tpch] {
        let sweep = sweeps::workload_sweep(kind, effort);
        for p in sweep.iter() {
            let mut row = vec![kind.name().to_string(), format!("{}", p.sf)];
            for s in Strategy::PAPER_SIX {
                row.push(ms(entry(&p.entries, s.name()).report.metrics.makespan));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_properties_hold() {
        let t = run(Effort::Quick);
        // At the largest SSB scale factor, GPU-only must fall behind the
        // CPU, while Data-Driven Chopping stays at-or-better than CPU.
        let ssb_last = t
            .rows
            .iter()
            .rposition(|r| r[0] == "SSBM")
            .expect("SSBM rows present");
        let cpu = t.value(ssb_last, "CPU Only [ms]").unwrap();
        let gpu = t.value(ssb_last, "GPU Only [ms]").unwrap();
        let ddc = t.value(ssb_last, "Data-Driven Chopping [ms]").unwrap();
        assert!(gpu > cpu, "cache thrashing must hurt GPU-only at SF30");
        assert!(ddc <= cpu * 1.1, "DD-Chopping must never lose to CPU-only");
        // At SF1 everything fits: GPU-only should win against CPU-only.
        let cpu0 = t.value(0, "CPU Only [ms]").unwrap();
        let gpu0 = t.value(0, "GPU Only [ms]").unwrap();
        assert!(gpu0 < cpu0, "small scale: GPU should accelerate");
    }
}
