//! Figure 8: the flexibility of run-time placement, demonstrated.
//!
//! The paper's Figure 8 is an illustration: a plan placed entirely on the
//! GPU at compile time has its second operator abort; the third operator
//! is *still* annotated GPU, so the CPU-computed fallback result must be
//! copied to the device — overhead a run-time heuristic avoids by placing
//! the successor on the CPU after observing the abort.
//!
//! We reproduce it with data: a selection→join→aggregate chain on a
//! machine whose heap fits the selection but not the join. Under
//! compile-time GPU placement the post-abort operators drag data back to
//! the device; under run-time placement they follow the fallback to the
//! CPU.

use crate::machine::{ssb_db, Effort};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;
use robustq_sim::SimConfig;
use robustq_workloads::{RunnerConfig, SsbQuery, WorkloadRunner};

pub fn run(effort: Effort) -> FigTable {
    let rows_per_sf = match effort {
        Effort::Quick => 3_000,
        Effort::Full => 9_000,
    };
    let db = ssb_db(10, rows_per_sf);
    // Q4.1 has a deep join chain over the biggest inputs. Size the heap so
    // the early selections fit but the fact-side joins cannot.
    let fact_cols = 4u64 * 30 * rows_per_sf as u64; // rough working bytes
    let sim = SimConfig::default()
        .with_gpu_memory(fact_cols * 4)
        .with_gpu_cache(fact_cols * 2);
    let query = SsbQuery::Q4_1.plan(&db).expect("Q4.1 plans");
    let runner = WorkloadRunner::new(&db, sim);
    let cfg = RunnerConfig::default().with_preload();

    let mut t = FigTable::new(
        "fig08",
        "Post-abort flexibility: compile-time vs run-time placement (SSB Q4.1)",
    )
    .with_columns([
        "placement",
        "aborts",
        "CPU→GPU [ms]",
        "GPU→CPU [ms]",
        "exec time [ms]",
    ]);
    for (label, strategy) in [
        ("compile-time (GPU preferred)", Strategy::GpuPreferred),
        ("run-time", Strategy::RuntimePlacement),
    ] {
        let report = runner.run(
            std::slice::from_ref(&query),
            strategy,
            &cfg,
        )
        .expect("fig08 run");
        t.push_row([
            label.to_string(),
            format!("{}", report.metrics.aborts),
            ms(report.metrics.h2d_time),
            ms(report.metrics.d2h_time),
            ms(report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_placement_avoids_post_abort_transfers() {
        let t = run(Effort::Quick);
        let ct_aborts = t.value(0, "aborts").unwrap();
        assert!(ct_aborts > 0.0, "the machine must force an abort");
        let ct_io = t.value(0, "CPU→GPU [ms]").unwrap() + t.value(0, "GPU→CPU [ms]").unwrap();
        let rt_io = t.value(1, "CPU→GPU [ms]").unwrap() + t.value(1, "GPU→CPU [ms]").unwrap();
        assert!(
            rt_io < ct_io,
            "run-time placement must move less data after aborts ({rt_io} vs {ct_io})"
        );
        let ct_time = t.value(0, "exec time [ms]").unwrap();
        let rt_time = t.value(1, "exec time [ms]").unwrap();
        assert!(rt_time <= ct_time * 1.05);
    }
}
