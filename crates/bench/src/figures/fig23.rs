//! Figure 23: per-query SSB times (SF 10, single user) for two engines'
//! CPU and GPU backends — the SSB counterpart of Figure 22, with the same
//! vectorized-comparator substitution for MonetDB/Ocelot (DESIGN.md §2).

use crate::machine::{Effort, WorkloadKind, WorkloadSetup};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;
use robustq_engine::vectorized::VectorizedEngine;
use robustq_sim::DeviceId;
use robustq_workloads::{RunnerConfig, SsbQuery, WorkloadRunner};

pub fn run(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(10);
    let sim = setup.sim();
    let runner = WorkloadRunner::new(&db, sim.clone());
    let vectorized = VectorizedEngine::new(&db, sim);

    let mut t = FigTable::new(
        "fig23",
        "SSBM per-query times, SF 10: bulk engine vs vectorized comparator",
    )
    .with_columns([
        "query",
        "bulk CPU [ms]",
        "bulk GPU [ms]",
        "vectorized CPU [ms]",
        "vectorized GPU [ms]",
    ]);
    for q in SsbQuery::ALL {
        let plan = q.plan(&db).expect("SSB query plans");
        let queries = std::slice::from_ref(&plan);
        let cpu = runner
            .run(queries, Strategy::CpuOnly, &RunnerConfig::default())
            .expect("bulk cpu");
        let gpu = runner
            .run(queries, Strategy::GpuPreferred, &RunnerConfig::default())
            .expect("bulk gpu");
        let vec_cpu = vectorized.run_query(&plan, DeviceId::Cpu).expect("vec cpu");
        let vec_gpu = vectorized.run_query_cached(&plan, DeviceId::Gpu).expect("vec gpu");
        t.push_row([
            q.name().to_string(),
            ms(cpu.metrics.makespan),
            ms(gpu.metrics.makespan),
            ms(vec_cpu.time),
            ms(vec_gpu.time),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_queries_and_competitive_backends() {
        let t = run(Effort::Quick);
        assert_eq!(t.rows.len(), 13);
        // The two CPU backends stay within an order of magnitude — the
        // appendix's point is that the host engine is competitive.
        for i in 0..t.rows.len() {
            let bulk = t.value(i, "bulk CPU [ms]").unwrap();
            let vec = t.value(i, "vectorized CPU [ms]").unwrap();
            let ratio = if bulk > vec { bulk / vec } else { vec / bulk };
            assert!(ratio < 10.0, "row {i}: CPU backends diverge {ratio}x");
        }
    }
}
