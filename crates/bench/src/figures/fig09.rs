//! Figure 9: run-time operator placement reduces the contention penalty
//! (aborted operators no longer strand their successors on the GPU) but
//! stays well above the optimum — aborted operators still lose their
//! co-processor acceleration.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::parallel_sweep(effort);
    let mut t = FigTable::new(
        "fig09",
        "Parallel selection workload: run-time placement helps but is not optimal",
    )
    .with_columns([
        "users",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Run-Time Placement [ms]",
    ]);
    for p in sweep.iter() {
        t.push_row([
            format!("{}", p.users),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "Run-Time Placement").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_placement_beats_gpu_only_under_contention() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU Only [ms]");
        let rt = t.column_values("Run-Time Placement [ms]");
        // At the highest user count the run-time strategy wins.
        assert!(rt.last().unwrap() < gpu.last().unwrap());
    }
}
