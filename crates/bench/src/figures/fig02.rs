//! Figure 2: execution time of the serial selection workload vs.
//! co-processor buffer size, operator-driven placement. Performance
//! degrades by a large factor (paper: 24×) while the working set exceeds
//! the cache, because LRU evicts exactly the column the next query needs.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::serial_sweep(effort);
    let mut t = FigTable::new(
        "fig02",
        "Serial selection workload: exec time vs GPU buffer size (operator-driven)",
    )
    .with_columns(["cache/WS", "cache [KiB]", "CPU Only [ms]", "GPU op-driven [ms]"]);
    for p in sweep.iter() {
        t.push_row([
            format!("{:.2}", p.frac),
            format!("{}", p.cache_bytes / 1024),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrashing_cliff_exists() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU op-driven [ms]");
        let worst = gpu.first().copied().unwrap();
        let best = gpu.last().copied().unwrap();
        assert!(
            worst / best > 5.0,
            "cache thrashing must degrade heavily: worst {worst} best {best}"
        );
        // Once the working set fits, the GPU beats the CPU.
        let cpu = t.column_values("CPU Only [ms]");
        assert!(best < *cpu.last().unwrap());
    }
}
