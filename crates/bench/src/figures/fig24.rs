//! Figure 24 (Appendix E): LFU vs LRU data placement under data-driven
//! chopping on an interleaved SSB workload, with the fraction of GPU
//! memory used as column cache swept from 0 to 100%. Both policies
//! perform nearly identically — the gain comes from the data-driven
//! strategy, not the ranking.

use crate::machine::{Effort, WorkloadKind, WorkloadSetup};
use crate::table::{ms, FigTable};
use robustq_core::strategies::DataDrivenChopping;
use robustq_core::{DataPlacementManager, PlacementPolicyKind};
use robustq_workloads::{RunnerConfig, WorkloadRunner};

pub fn run(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(10);
    let sim = setup.sim();
    let queries = setup.queries(&db);
    let runner = WorkloadRunner::new(&db, sim.clone());

    let mut t = FigTable::new(
        "fig24",
        "Interleaved SSBM workload: LFU vs LRU data placement vs cache budget",
    )
    .with_columns(["cache budget [%]", "LFU [ms]", "LRU [ms]"]);
    for pct in [0u64, 25, 50, 75, 100] {
        let budget = sim.gpu().cache_bytes * pct / 100;
        let mut lfu = DataDrivenChopping::with_manager(
            DataPlacementManager::new(PlacementPolicyKind::Lfu).with_budget(budget),
        );
        let mut lru = DataDrivenChopping::with_manager(
            DataPlacementManager::new(PlacementPolicyKind::Lru).with_budget(budget),
        );
        let cfg = RunnerConfig::default().with_placement_period(queries.len());
        let lfu_report = runner
            .run_with_policy(&queries, &mut lfu, "DD-Chopping/LFU", &cfg)
            .expect("lfu run");
        let lru_report = runner
            .run_with_policy(&queries, &mut lru, "DD-Chopping/LRU", &cfg)
            .expect("lru run");
        t.push_row([
            format!("{pct}"),
            ms(lfu_report.metrics.makespan),
            ms(lru_report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_cache_helps_and_policies_are_close() {
        let t = run(Effort::Quick);
        let lfu = t.column_values("LFU [ms]");
        let lru = t.column_values("LRU [ms]");
        // Execution improves (or stays flat) as the budget grows.
        assert!(*lfu.last().unwrap() <= lfu[0] * 1.05);
        assert!(lfu.last().unwrap() < lfu.first().unwrap());
        // LFU and LRU land close together; mid-budget corner cases may
        // diverge because different columns are cached first — exactly
        // the corner-case divergence Appendix E describes.
        for (a, b) in lfu.iter().zip(&lru) {
            let ratio = if a > b { a / b } else { b / a };
            assert!(ratio < 2.0, "policies diverge: {a} vs {b}");
        }
        // At the extremes the pinned sets are identical.
        assert_eq!(lfu[0], lru[0]);
        assert_eq!(lfu.last().unwrap(), lru.last().unwrap());
    }
}
