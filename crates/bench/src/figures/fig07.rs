//! Figure 7: the Figure 3 user sweep under data-driven placement —
//! Data-Driven alone does *not* fix heap contention: its compile-time
//! placements still flood the co-processor heap under parallelism.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::parallel_sweep(effort);
    let mut t = FigTable::new(
        "fig07",
        "Parallel selection workload: Data-Driven still hits heap contention",
    )
    .with_columns(["users", "CPU Only [ms]", "GPU Only [ms]", "Data-Driven [ms]"]);
    for p in sweep.iter() {
        t.push_row([
            format!("{}", p.users),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "Data-Driven").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_driven_alone_degrades_like_gpu_only() {
        let t = run(Effort::Quick);
        let dd = t.column_values("Data-Driven [ms]");
        let best = dd.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *dd.last().unwrap();
        assert!(
            last / best > 1.4,
            "Data-Driven must still degrade under parallelism: {best} -> {last}"
        );
    }
}
