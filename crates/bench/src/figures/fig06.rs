//! Figure 6: time spent on CPU→GPU data transfers in the serial selection
//! workload — the transfer volume, not the kernels, explains Figure 2's
//! degradation; Data-Driven eliminates it.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::serial_sweep(effort);
    let mut t = FigTable::new(
        "fig06",
        "Serial selection workload: CPU→GPU transfer time",
    )
    .with_columns([
        "cache/WS",
        "GPU op-driven [ms]",
        "Data-Driven [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for p in sweep.iter() {
        t.push_row([
            format!("{:.2}", p.frac),
            ms(entry(&p.entries, "GPU Only").report.metrics.h2d_time),
            ms(entry(&p.entries, "Data-Driven").report.metrics.h2d_time),
            ms(entry(&p.entries, "Data-Driven Chopping").report.metrics.h2d_time),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_explain_the_degradation() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU op-driven [ms]");
        let dd = t.column_values("Data-Driven [ms]");
        // Thrashing regime: operator-driven transfers dwarf data-driven.
        assert!(gpu[0] > 10.0 * (dd[0] + 0.001));
        // Fitting regime: transfers vanish for both.
        assert!(*gpu.last().unwrap() < gpu[0] / 5.0);
    }
}
