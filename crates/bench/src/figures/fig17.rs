//! Figure 17: per-query execution times for selected SSB queries, single
//! user, scale factor 30 (resources scarce). High-selectivity queries
//! (Q3.4, Q4.3) gain the most from Data-Driven Chopping; Critical Path
//! tracks the CPU.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;
use robustq_workloads::SsbQuery;

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::workload_sweep(WorkloadKind::Ssb, effort);
    let point = sweep.last().expect("SF sweep non-empty"); // largest SF (30)
    let mut t = FigTable::new(
        "fig17",
        format!("Per-query times, SSBM SF {}, single user", point.sf),
    )
    .with_columns([
        "query",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for q in SsbQuery::SELECTED {
        let slot = SsbQuery::ALL.iter().position(|&x| x == q).expect("known query");
        let mut row = vec![q.name().to_string()];
        for s in Strategy::PAPER_SIX {
            let report = &entry(&point.entries, s.name()).report;
            row.push(ms(report.mean_latency_of_slot(slot, SsbQuery::ALL.len())));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_query_rows_cover_selection() {
        let t = run(Effort::Quick);
        assert_eq!(t.rows.len(), SsbQuery::SELECTED.len());
        // Every latency is positive.
        for col in &t.columns[1..] {
            for v in t.column_values(col) {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn gpu_only_slows_queries_down_at_sf30() {
        let t = run(Effort::Quick);
        let mut gpu_worse = 0;
        for i in 0..t.rows.len() {
            let cpu = t.value(i, "CPU Only [ms]").unwrap();
            let gpu = t.value(i, "GPU Only [ms]").unwrap();
            if gpu > cpu {
                gpu_worse += 1;
            }
        }
        assert!(
            gpu_worse >= t.rows.len() / 2,
            "GPU-only should slow down most queries at SF30 ({gpu_worse} did)"
        );
    }
}
