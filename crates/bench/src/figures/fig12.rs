//! Figure 12: query chopping — run-time placement plus the per-device
//! thread pool — achieves near-optimal performance on the parallel
//! selection workload by bounding concurrent heap use.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::parallel_sweep(effort);
    let mut t = FigTable::new(
        "fig12",
        "Parallel selection workload: chopping is near-optimal",
    )
    .with_columns([
        "users",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Run-Time Placement [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for p in sweep.iter() {
        t.push_row([
            format!("{}", p.users),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "Run-Time Placement").report.metrics.makespan),
            ms(entry(&p.entries, "Chopping").report.metrics.makespan),
            ms(entry(&p.entries, "Data-Driven Chopping").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chopping_is_flat_and_beats_gpu_only() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU Only [ms]");
        let chop = t.column_values("Data-Driven Chopping [ms]");
        assert!(chop.last().unwrap() < gpu.last().unwrap());
        // Near-flat: the worst point stays within a modest factor of the
        // best (the ideal system is perfectly flat).
        let best = chop.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = chop.iter().cloned().fold(0.0, f64::max);
        assert!(worst / best < 2.5, "chopping curve too steep: {best}..{worst}");
    }
}
