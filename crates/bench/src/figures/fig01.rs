//! Figure 1: SSB Q3.3 at scale factor 20 — CPU only vs. GPU with cold and
//! hot caches. The paper's headline: a hot-cache GPU is ~2.5× faster than
//! the CPU, but data transfer turns a cold-cache GPU into a >3× slowdown.

use crate::machine::{Effort, WorkloadKind, WorkloadSetup};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;
use robustq_workloads::{RunnerConfig, SsbQuery, WorkloadRunner};

pub fn run(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Ssb, effort);
    let db = setup.db(20);
    let query = SsbQuery::Q3_3.plan(&db).expect("Q3.3 plans");
    let runner = WorkloadRunner::new(&db, setup.sim());

    let cpu = runner
        .run(std::slice::from_ref(&query), Strategy::CpuOnly, &RunnerConfig::default())
        .expect("cpu run");
    let cold = runner
        .run(
            std::slice::from_ref(&query),
            Strategy::GpuPreferred,
            &RunnerConfig::default().cold_cache(),
        )
        .expect("cold run");
    let hot = runner
        .run(std::slice::from_ref(&query), Strategy::GpuPreferred, &RunnerConfig::default())
        .expect("hot run");

    let mut t = FigTable::new(
        "fig01",
        "SSB Q3.3, SF 20: impact of execution strategy (times in virtual ms)",
    )
    .with_columns(["configuration", "exec time [ms]", "CPU→GPU transfer [ms]"]);
    t.push_row(["CPU".into(), ms(cpu.metrics.makespan), ms(cpu.metrics.h2d_time)]);
    t.push_row([
        "GPU (cold cache)".into(),
        ms(cold.metrics.makespan),
        ms(cold.metrics.h2d_time),
    ]);
    t.push_row([
        "GPU (hot cache)".into(),
        ms(hot.metrics.makespan),
        ms(hot.metrics.h2d_time),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(Effort::Quick);
        let cpu = t.value(0, "exec time [ms]").unwrap();
        let cold = t.value(1, "exec time [ms]").unwrap();
        let hot = t.value(2, "exec time [ms]").unwrap();
        assert!(hot < cpu, "hot GPU must beat the CPU (got {hot} vs {cpu})");
        assert!(cold > cpu, "cold GPU must lose to the CPU (got {cold} vs {cpu})");
        assert!(cold / cpu > 1.5, "cold slowdown should be substantial");
        assert!(cpu / hot > 1.3, "hot speedup should be substantial");
        // The cold run's problem is the transfer time.
        let cold_tr = t.value(1, "CPU→GPU transfer [ms]").unwrap();
        assert!(cold_tr > 0.5 * (cold - hot));
    }
}
