//! Figure 5: the Figure 2 sweep with data-driven operator placement.
//! Data-Driven eliminates the thrashing degradation: the co-processor is
//! only used for columns the placement manager pinned, so execution time
//! falls smoothly as more of the working set fits.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::serial_sweep(effort);
    let mut t = FigTable::new(
        "fig05",
        "Serial selection workload: data-driven placement avoids thrashing",
    )
    .with_columns([
        "cache/WS",
        "CPU Only [ms]",
        "GPU op-driven [ms]",
        "Data-Driven [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for p in sweep.iter() {
        t.push_row([
            format!("{:.2}", p.frac),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "Data-Driven").report.metrics.makespan),
            ms(entry(&p.entries, "Data-Driven Chopping").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_driven_never_worse_than_cpu() {
        let t = run(Effort::Quick);
        let cpu = t.column_values("CPU Only [ms]");
        let dd = t.column_values("Data-Driven [ms]");
        for (c, d) in cpu.iter().zip(&dd) {
            assert!(d <= &(c * 1.15), "Data-Driven {d} must track CPU {c} or better");
        }
        // And it reaches the (fast) optimum once everything is cached.
        let gpu = t.column_values("GPU op-driven [ms]");
        assert!((dd.last().unwrap() - gpu.last().unwrap()).abs() < gpu.last().unwrap() * 0.5);
    }

    #[test]
    fn data_driven_beats_thrashing_gpu_below_capacity() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU op-driven [ms]");
        let dd = t.column_values("Data-Driven [ms]");
        assert!(dd[0] < gpu[0] / 3.0, "thrashing avoided: {} vs {}", dd[0], gpu[0]);
    }
}
