//! Figure 3: execution time of the parallel selection workload vs. number
//! of users, naive GPU execution. Past ~7 users the accumulated operator
//! footprints exceed the co-processor heap and performance degrades
//! (paper: up to 6×) — heap contention.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::{ms, FigTable};

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::parallel_sweep(effort);
    let mut t = FigTable::new(
        "fig03",
        "Parallel selection workload: exec time vs users (GPU preferred)",
    )
    .with_columns(["users", "CPU Only [ms]", "GPU Only [ms]"]);
    for p in sweep.iter() {
        t.push_row([
            format!("{}", p.users),
            ms(entry(&p.entries, "CPU Only").report.metrics.makespan),
            ms(entry(&p.entries, "GPU Only").report.metrics.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_degrades_gpu_at_high_parallelism() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU Only [ms]");
        let best = gpu.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *gpu.last().unwrap();
        assert!(
            last / best > 1.5,
            "heap contention must slow the GPU down: best {best}, 20 users {last}"
        );
    }
}
