//! Figure 22: per-query TPC-H times (SF 10, single user) for two engines'
//! CPU and GPU backends. The paper compares CoGaDB against
//! MonetDB/Ocelot; we substitute our vector-at-a-time comparator engine
//! for the closed-source Ocelot (DESIGN.md §2, item 23) — the comparison
//! still shows two independent engines whose GPU backends accelerate the
//! same queries.

use crate::machine::{Effort, WorkloadKind, WorkloadSetup};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;
use robustq_engine::vectorized::VectorizedEngine;
use robustq_sim::DeviceId;
use robustq_workloads::{RunnerConfig, TpchQuery, WorkloadRunner};

pub fn run(effort: Effort) -> FigTable {
    let setup = WorkloadSetup::new(WorkloadKind::Tpch, effort);
    let db = setup.db(10);
    let sim = setup.sim();
    let runner = WorkloadRunner::new(&db, sim.clone());
    let vectorized = VectorizedEngine::new(&db, sim);

    let mut t = FigTable::new(
        "fig22",
        "TPC-H per-query times, SF 10: bulk engine vs vectorized comparator",
    )
    .with_columns([
        "query",
        "bulk CPU [ms]",
        "bulk GPU [ms]",
        "vectorized CPU [ms]",
        "vectorized GPU [ms]",
    ]);
    for q in TpchQuery::ALL {
        let plan = q.plan();
        let queries = std::slice::from_ref(&plan);
        let cpu = runner
            .run(queries, Strategy::CpuOnly, &RunnerConfig::default())
            .expect("bulk cpu");
        let gpu = runner
            .run(queries, Strategy::GpuPreferred, &RunnerConfig::default())
            .expect("bulk gpu");
        let vec_cpu = vectorized.run_query(&plan, DeviceId::Cpu).expect("vec cpu");
        let vec_gpu = vectorized.run_query_cached(&plan, DeviceId::Gpu).expect("vec gpu");
        t.push_row([
            q.name().to_string(),
            ms(cpu.metrics.makespan),
            ms(gpu.metrics.makespan),
            ms(vec_cpu.time),
            ms(vec_gpu.time),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_produce_sane_per_query_times() {
        let t = run(Effort::Quick);
        assert_eq!(t.rows.len(), 6);
        let mut gpu_accelerates = 0;
        for i in 0..t.rows.len() {
            for c in &t.columns[1..] {
                assert!(t.value(i, c).unwrap() > 0.0);
            }
            if t.value(i, "bulk GPU [ms]").unwrap() < t.value(i, "bulk CPU [ms]").unwrap()
            {
                gpu_accelerates += 1;
            }
        }
        assert!(gpu_accelerates >= 3, "warm GPU should accelerate most queries");
    }
}
