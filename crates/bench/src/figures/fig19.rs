//! Figure 19: CPU→GPU transfer times for the Figure 18 sweep. Chopping
//! reduces IO dramatically with increasing parallelism (paper: up to 48×
//! for the SSBM).

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;

pub fn run(effort: Effort) -> FigTable {
    let mut t = FigTable::new(
        "fig19",
        "CPU→GPU transfer time vs parallel users, SF 10 (a: SSBM, b: TPC-H)",
    )
    .with_columns([
        "benchmark",
        "users",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for kind in [WorkloadKind::Ssb, WorkloadKind::Tpch] {
        let sweep = sweeps::users_sweep(kind, effort);
        for p in sweep.iter() {
            let mut row = vec![kind.name().to_string(), format!("{}", p.users)];
            for s in Strategy::PAPER_SIX {
                row.push(ms(entry(&p.entries, s.name()).report.metrics.h2d_time));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_driven_chopping_saves_io() {
        let t = run(Effort::Quick);
        let last = t.rows.iter().rposition(|r| r[0] == "SSBM").unwrap();
        let gpu = t.value(last, "GPU Only [ms]").unwrap();
        let ddc = t.value(last, "Data-Driven Chopping [ms]").unwrap();
        assert!(
            ddc * 3.0 < gpu,
            "DD-Chopping IO ({ddc}) must be far below GPU-only ({gpu})"
        );
    }
}
