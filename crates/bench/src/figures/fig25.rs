//! Figure 25 (appendix): latencies of all 13 SSB queries for a varying
//! number of parallel users (SF 10), per strategy. Long-running queries
//! benefit from chopping; short ones may slow down slightly under the
//! concurrency bound.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_workloads::SsbQuery;

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::users_sweep(WorkloadKind::Ssb, effort);
    let mut t = FigTable::new(
        "fig25",
        "Latencies of all SSBM queries vs parallel users (SF 10)",
    );
    let mut cols = vec!["query".to_string(), "strategy".to_string()];
    for p in sweep.iter() {
        cols.push(format!("{} users [ms]", p.users));
    }
    t.columns = cols;
    for q in SsbQuery::ALL {
        let slot = SsbQuery::ALL.iter().position(|&x| x == q).expect("known query");
        for label in ["GPU Only", "Chopping", "Data-Driven Chopping"] {
            let mut row = vec![q.name().to_string(), label.to_string()];
            for p in sweep.iter() {
                let report = &entry(&p.entries, label).report;
                row.push(ms(report.mean_latency_of_slot(slot, p.workload_len)));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_queries_and_strategies() {
        let t = run(Effort::Quick);
        assert_eq!(t.rows.len(), 13 * 3);
        // Latencies grow (or stay similar) with more users for GPU Only.
        let first_cols = &t.columns[2..];
        for row in t.rows.iter().filter(|r| r[1] == "GPU Only") {
            let lo: f64 = row[2].parse().unwrap();
            let hi: f64 = row[t.columns.len() - 1].parse().unwrap();
            assert!(lo > 0.0 && hi > 0.0);
        }
        assert!(!first_cols.is_empty());
    }
}
