//! Figure 20: wasted time of aborted co-processor operators vs parallel
//! users (SSBM, SF 10). Without chopping, heap contention wastes large
//! amounts of partially executed operator time (paper: chopping reduces
//! it by up to 74×).

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::users_sweep(WorkloadKind::Ssb, effort);
    let mut t = FigTable::new(
        "fig20",
        "Wasted time of aborted GPU operators vs users (SSBM, SF 10)",
    )
    .with_columns([
        "users",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for p in sweep.iter() {
        let mut row = vec![format!("{}", p.users)];
        for s in [
            Strategy::GpuPreferred,
            Strategy::CriticalPath,
            Strategy::DataDriven,
            Strategy::Chopping,
            Strategy::DataDrivenChopping,
        ] {
            row.push(ms(entry(&p.entries, s.name()).report.metrics.wasted_time));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasted_time_grows_without_chopping() {
        let t = run(Effort::Quick);
        let gpu = t.column_values("GPU Only [ms]");
        let chop = t.column_values("Chopping [ms]");
        let gpu_last = *gpu.last().unwrap();
        let chop_last = *chop.last().unwrap();
        assert!(
            chop_last <= gpu_last,
            "chopping must not waste more than GPU-only ({chop_last} vs {gpu_last})"
        );
    }
}
