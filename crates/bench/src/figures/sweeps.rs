//! Shared, memoized parameter sweeps.
//!
//! Several figures plot different metrics of the same experiment; each
//! sweep runs once per effort level and its reports are reused.

use crate::machine::{Effort, MicroSetup, ParallelSetup, WorkloadKind, WorkloadSetup};
use robustq_core::Strategy;
use robustq_workloads::{micro, RunReport, RunnerConfig, WorkloadRunner};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One labelled run.
#[derive(Debug, Clone)]
pub struct Entry {
    pub label: &'static str,
    pub report: RunReport,
}

/// One point of the serial-selection cache sweep (Figures 2/5/6).
#[derive(Debug, Clone)]
pub struct SerialPoint {
    pub frac: f64,
    pub cache_bytes: u64,
    pub entries: Vec<Entry>,
}

/// One point of the parallel-selection user sweep (Figures 3/7/9/12/13).
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    pub users: usize,
    pub entries: Vec<Entry>,
}

/// One point of the scale-factor sweep (Figures 14/15/16/17).
#[derive(Debug, Clone)]
pub struct SfPoint {
    pub sf: u32,
    pub footprint: u64,
    pub cache_bytes: u64,
    pub entries: Vec<Entry>,
}

/// One point of the multi-user full-workload sweep (Figures 18–21/25).
#[derive(Debug, Clone)]
pub struct UsersPoint {
    pub users: usize,
    /// Length of one repetition of the workload (for latency slots).
    pub workload_len: usize,
    pub entries: Vec<Entry>,
}

/// One static memo map per sweep family.
macro_rules! memo_map {
    ($name:ident, $key:ty, $value:ty) => {
        fn $name() -> &'static Mutex<HashMap<$key, Arc<$value>>> {
            static CELL: OnceLock<Mutex<HashMap<$key, Arc<$value>>>> = OnceLock::new();
            CELL.get_or_init(|| Mutex::new(HashMap::new()))
        }
    };
}

memo_map!(serial_memo, Effort, Vec<SerialPoint>);
memo_map!(parallel_memo, Effort, Vec<ParallelPoint>);
memo_map!(sf_memo, (WorkloadKind, Effort), Vec<SfPoint>);
memo_map!(users_memo, (WorkloadKind, Effort), Vec<UsersPoint>);

fn memoized<K, V>(
    map: &'static Mutex<HashMap<K, Arc<V>>>,
    key: K,
    compute: impl FnOnce() -> V,
) -> Arc<V>
where
    K: std::hash::Hash + Eq + Clone,
{
    if let Some(v) = map.lock().expect("memo lock").get(&key) {
        return Arc::clone(v);
    }
    let v = Arc::new(compute());
    map.lock().expect("memo lock").insert(key, Arc::clone(&v));
    v
}

/// The serial-selection cache-size sweep (operator-driven thrashing vs
/// data-driven placement).
pub fn serial_sweep(effort: Effort) -> Arc<Vec<SerialPoint>> {
    memoized(serial_memo(), effort, || {
        let setup = MicroSetup::new(effort);
        let queries = micro::serial_selection_workload(setup.reps);
        let strategies = [
            Strategy::CpuOnly,
            Strategy::GpuPreferred,
            Strategy::DataDriven,
            Strategy::DataDrivenChopping,
        ];
        MicroSetup::cache_fractions()
            .iter()
            .map(|&frac| {
                let cache_bytes = (setup.working_set as f64 * frac) as u64;
                let sim = setup.sim(cache_bytes);
                let runner = WorkloadRunner::new(&setup.db, sim);
                // The placement background job runs once per workload
                // round, not after every query ("periodically", §3.2).
                let cfg = RunnerConfig::default()
                    .with_placement_period(queries.len())
                    .with_parallel(crate::machine::parallel_ctx());
                let entries = strategies
                    .iter()
                    .map(|&s| Entry {
                        label: s.name(),
                        report: runner.run(&queries, s, &cfg).expect("serial sweep run"),
                    })
                    .collect();
                SerialPoint { frac, cache_bytes, entries }
            })
            .collect()
    })
}

/// The parallel-selection user sweep (heap contention).
pub fn parallel_sweep(effort: Effort) -> Arc<Vec<ParallelPoint>> {
    memoized(parallel_memo(), effort, || {
        let setup = ParallelSetup::new(effort);
        let queries = micro::parallel_selection_workload(setup.total_queries);
        let sim = setup.sim();
        let runner = WorkloadRunner::new(&setup.db, sim);
        let strategies = [
            Strategy::CpuOnly,
            Strategy::GpuPreferred,
            Strategy::DataDriven,
            Strategy::RuntimePlacement,
            Strategy::Chopping,
            Strategy::DataDrivenChopping,
        ];
        setup
            .users
            .iter()
            .map(|&users| {
                // Section 6.1: access structures are pre-loaded into the
                // co-processor memory before the measured run.
                let cfg = RunnerConfig::default()
                    .with_users(users)
                    .with_placement_period(queries.len())
                    .with_preload()
                    .with_parallel(crate::machine::parallel_ctx());
                let entries = strategies
                    .iter()
                    .map(|&s| Entry {
                        label: s.name(),
                        report: runner.run(&queries, s, &cfg).expect("parallel sweep run"),
                    })
                    .collect();
                ParallelPoint { users, entries }
            })
            .collect()
    })
}

/// The scale-factor sweep over a full workload, six strategies.
pub fn workload_sweep(kind: WorkloadKind, effort: Effort) -> Arc<Vec<SfPoint>> {
    memoized(sf_memo(), (kind, effort), || {
        let setup = WorkloadSetup::new(kind, effort);
        let sim = setup.sim();
        setup
            .scale_factors
            .iter()
            .map(|&sf| {
                let db = setup.db(sf);
                let queries = setup.queries(&db);
                let footprint = crate::machine::workload_footprint(&db, &queries);
                let runner = WorkloadRunner::new(&db, sim.clone());
                let cfg = RunnerConfig::default()
                    .with_placement_period(queries.len())
                    .with_preload()
                    .with_parallel(crate::machine::parallel_ctx());
                let entries = Strategy::PAPER_SIX
                    .iter()
                    .map(|&s| Entry {
                        label: s.name(),
                        report: runner.run(&queries, s, &cfg).expect("sf sweep run"),
                    })
                    .collect();
                SfPoint { sf, footprint, cache_bytes: sim.gpu().cache_bytes, entries }
            })
            .collect()
    })
}

/// The multi-user sweep over a full workload at scale factor 10; includes
/// the GPU-only + admission-control reference of Section 6.2.2.
pub fn users_sweep(kind: WorkloadKind, effort: Effort) -> Arc<Vec<UsersPoint>> {
    memoized(users_memo(), (kind, effort), || {
        let setup = WorkloadSetup::new(kind, effort);
        let sim = setup.sim();
        let db = setup.db(10);
        let base = setup.queries(&db);
        let workload_len = base.len();
        let mut queries = Vec::with_capacity(workload_len * setup.multiuser_reps);
        for _ in 0..setup.multiuser_reps {
            queries.extend(base.iter().cloned());
        }
        let runner = WorkloadRunner::new(&db, sim);
        setup
            .users
            .iter()
            .map(|&users| {
                let cfg = RunnerConfig::default()
                    .with_users(users)
                    .with_placement_period(queries.len())
                    .with_preload()
                    .with_parallel(crate::machine::parallel_ctx());
                let mut entries: Vec<Entry> = Strategy::PAPER_SIX
                    .iter()
                    .map(|&s| Entry {
                        label: s.name(),
                        report: runner.run(&queries, s, &cfg).expect("users sweep run"),
                    })
                    .collect();
                let admission_cfg = cfg.clone().with_admission_limit(1);
                entries.push(Entry {
                    label: "GPU Only + Admission",
                    report: runner
                        .run(&queries, Strategy::GpuPreferred, &admission_cfg)
                        .expect("admission run"),
                });
                UsersPoint { users, workload_len, entries }
            })
            .collect()
    })
}

/// Find one labelled entry at a sweep point.
pub fn entry<'a>(entries: &'a [Entry], label: &str) -> &'a Entry {
    entries
        .iter()
        .find(|e| e.label == label)
        .unwrap_or_else(|| panic!("no entry labelled {label}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_arc() {
        fn test_map() -> &'static Mutex<HashMap<u32, Arc<Vec<i32>>>> {
            static CELL: OnceLock<Mutex<HashMap<u32, Arc<Vec<i32>>>>> = OnceLock::new();
            CELL.get_or_init(|| Mutex::new(HashMap::new()))
        }
        let a = memoized(test_map(), 1u32, || vec![1, 2, 3]);
        let b = memoized(test_map(), 1u32, || vec![9, 9, 9]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, vec![1, 2, 3]);
        let c = memoized(test_map(), 2u32, || vec![4]);
        assert_eq!(*c, vec![4]);
    }

    #[test]
    #[should_panic(expected = "no entry labelled")]
    fn entry_panics_on_unknown_label() {
        entry(&[], "nope");
    }
}
