//! Figure 13: number of aborted co-processor operators per strategy on
//! the parallel selection workload. Compile-time operator-driven
//! placement aborts most; run-time placement reduces aborts; chopping's
//! concurrency bound nearly eliminates them.

use crate::figures::sweeps::{self, entry};
use crate::machine::Effort;
use crate::table::FigTable;

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::parallel_sweep(effort);
    let mut t = FigTable::new(
        "fig13",
        "Parallel selection workload: aborted co-processor operators",
    )
    .with_columns([
        "users",
        "GPU Only",
        "Data-Driven",
        "Run-Time Placement",
        "Chopping",
        "Data-Driven Chopping",
    ]);
    for p in sweep.iter() {
        let aborts =
            |label: &str| format!("{}", entry(&p.entries, label).report.metrics.aborts);
        t.push_row([
            format!("{}", p.users),
            aborts("GPU Only"),
            aborts("Data-Driven"),
            aborts("Run-Time Placement"),
            aborts("Chopping"),
            aborts("Data-Driven Chopping"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chopping_minimizes_aborts() {
        let t = run(Effort::Quick);
        let last = t.rows.len() - 1;
        let gpu: f64 = t.value(last, "GPU Only").unwrap();
        let chop: f64 = t.value(last, "Chopping").unwrap();
        assert!(gpu > 0.0, "contention must cause aborts for GPU Only");
        assert!(chop < gpu, "chopping must abort less than GPU Only");
        let ddc: f64 = t.value(last, "Data-Driven Chopping").unwrap();
        assert!(ddc <= chop + 1.0);
    }
}
