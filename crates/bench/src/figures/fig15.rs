//! Figure 15: CPU→GPU data transfer time for the Figure 14 sweep.
//! Data-Driven combined with Chopping saves the most IO.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;

pub fn run(effort: Effort) -> FigTable {
    let mut t = FigTable::new(
        "fig15",
        "CPU→GPU transfer time vs scale factor (a: SSBM, b: TPC-H)",
    )
    .with_columns([
        "benchmark",
        "SF",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for kind in [WorkloadKind::Ssb, WorkloadKind::Tpch] {
        let sweep = sweeps::workload_sweep(kind, effort);
        for p in sweep.iter() {
            let mut row = vec![kind.name().to_string(), format!("{}", p.sf)];
            for s in Strategy::PAPER_SIX {
                row.push(ms(entry(&p.entries, s.name()).report.metrics.h2d_time));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_only_transfers_dominate_at_scale() {
        let t = run(Effort::Quick);
        let last = t.rows.iter().rposition(|r| r[0] == "SSBM").unwrap();
        let gpu = t.value(last, "GPU Only [ms]").unwrap();
        let ddc = t.value(last, "Data-Driven Chopping [ms]").unwrap();
        assert!(gpu > ddc, "DD-Chopping must save IO vs GPU-only");
        let cpu = t.value(last, "CPU Only [ms]").unwrap();
        assert_eq!(cpu, 0.0, "CPU-only never touches the bus");
    }
}
