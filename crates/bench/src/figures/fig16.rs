//! Figure 16: memory footprint of the SSBM and TPC-H workloads vs scale
//! factor, against the co-processor's column-cache capacity. The
//! footprint crosses the cache around SF 15 — where the Figure 14 curves
//! bend.

use crate::figures::sweeps;
use crate::machine::{Effort, WorkloadKind};
use crate::table::FigTable;

pub fn run(effort: Effort) -> FigTable {
    let mut t = FigTable::new(
        "fig16",
        "Workload memory footprint vs scale factor",
    )
    .with_columns(["benchmark", "SF", "footprint [KiB]", "GPU cache [KiB]"]);
    for kind in [WorkloadKind::Ssb, WorkloadKind::Tpch] {
        let sweep = sweeps::workload_sweep(kind, effort);
        for p in sweep.iter() {
            t.push_row([
                kind.name().to_string(),
                format!("{}", p.sf),
                format!("{}", p.footprint / 1024),
                format!("{}", p.cache_bytes / 1024),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_crosses_cache_midway() {
        let t = run(Effort::Quick);
        let ssb: Vec<&Vec<String>> =
            t.rows.iter().filter(|r| r[0] == "SSBM").collect();
        let first_fp: f64 = ssb.first().unwrap()[2].parse().unwrap();
        let last_fp: f64 = ssb.last().unwrap()[2].parse().unwrap();
        let cache: f64 = ssb[0][3].parse().unwrap();
        assert!(first_fp < cache, "SF1 fits the cache");
        assert!(last_fp > cache, "SF30 exceeds the cache");
        assert!(last_fp > first_fp * 10.0, "footprint scales with SF");
    }
}
