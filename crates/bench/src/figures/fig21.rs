//! Figure 21: latencies for selected SSB queries at 20 parallel users,
//! scale factor 10 — including the GPU-only + admission-control reference
//! (one query at a time). Chopping matches or beats admission control
//! without serializing the workload.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_workloads::SsbQuery;

pub fn run(effort: Effort) -> FigTable {
    let sweep = sweeps::users_sweep(WorkloadKind::Ssb, effort);
    let point = sweep.last().expect("users sweep non-empty"); // most users
    let mut t = FigTable::new(
        "fig21",
        format!("Per-query latencies, SSBM SF 10, {} users", point.users),
    )
    .with_columns([
        "query",
        "GPU Only [ms]",
        "GPU Only + Admission [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for q in SsbQuery::SELECTED {
        let slot = SsbQuery::ALL.iter().position(|&x| x == q).expect("known query");
        let lat = |label: &str| {
            ms(entry(&point.entries, label)
                .report
                .mean_latency_of_slot(slot, point.workload_len))
        };
        t.push_row([
            q.name().to_string(),
            lat("GPU Only"),
            lat("GPU Only + Admission"),
            lat("Chopping"),
            lat("Data-Driven Chopping"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_latencies_positive_and_admission_reduces_gpu_only_latency() {
        let t = run(Effort::Quick);
        let mut admission_wins = 0;
        for i in 0..t.rows.len() {
            let gpu = t.value(i, "GPU Only [ms]").unwrap();
            let adm = t.value(i, "GPU Only + Admission [ms]").unwrap();
            assert!(gpu > 0.0 && adm > 0.0);
            if adm < gpu {
                admission_wins += 1;
            }
        }
        // Admission control avoids contention for at least some queries.
        assert!(admission_wins > 0);
    }
}
