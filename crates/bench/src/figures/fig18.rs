//! Figure 18: average workload execution time of the SSBM and TPC-H
//! workloads for varying numbers of parallel users at scale factor 10.
//! Chopping's dynamic fault reaction and concurrency bound improve
//! performance over naive GPU use.

use crate::figures::sweeps::{self, entry};
use crate::machine::{Effort, WorkloadKind};
use crate::table::{ms, FigTable};
use robustq_core::Strategy;

pub fn run(effort: Effort) -> FigTable {
    let mut t = FigTable::new(
        "fig18",
        "Workload execution time vs parallel users, SF 10 (a: SSBM, b: TPC-H)",
    )
    .with_columns([
        "benchmark",
        "users",
        "CPU Only [ms]",
        "GPU Only [ms]",
        "Critical Path [ms]",
        "Data-Driven [ms]",
        "Chopping [ms]",
        "Data-Driven Chopping [ms]",
    ]);
    for kind in [WorkloadKind::Ssb, WorkloadKind::Tpch] {
        let sweep = sweeps::users_sweep(kind, effort);
        for p in sweep.iter() {
            let mut row = vec![kind.name().to_string(), format!("{}", p.users)];
            for s in Strategy::PAPER_SIX {
                row.push(ms(entry(&p.entries, s.name()).report.metrics.makespan));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chopping_beats_gpu_only_at_high_parallelism() {
        let t = run(Effort::Quick);
        for bench in ["SSBM", "TPC-H"] {
            let last = t.rows.iter().rposition(|r| r[0] == bench).unwrap();
            let gpu = t.value(last, "GPU Only [ms]").unwrap();
            let ddc = t.value(last, "Data-Driven Chopping [ms]").unwrap();
            assert!(
                ddc < gpu,
                "{bench}: DD-Chopping ({ddc}) must beat GPU-only ({gpu}) at max users"
            );
        }
    }
}
