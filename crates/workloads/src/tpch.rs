//! The evaluated TPC-H subset Q2–Q7 (Appendix C.2).
//!
//! The paper runs a modified TPC-H: queries needing case expressions,
//! arbitrary join conditions or substring functions are out of scope.
//! Q3, Q5, Q6 and Q7 are planned close to their SQL; Q2 is decorrelated
//! (the `min(ps_supplycost)` subquery becomes an aggregate joined back)
//! and Q4's `EXISTS` becomes a semi-join — the standard rewrites a
//! relational optimizer would produce.
//!
//! Dates are `yyyymmdd` integers, so date comparisons are plain integer
//! comparisons and `year(d)` is `d // 10000`.

use robustq_engine::expr::Expr;
use robustq_engine::plan::{AggFunc, AggSpec, JoinKind, PlanNode, SortKey};
use robustq_engine::predicate::{CmpOp, Predicate};

/// The evaluated TPC-H queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Minimum-cost supplier (decorrelated).
    Q2,
    /// Shipping priority (top-10 open orders).
    Q3,
    /// Order-priority checking (EXISTS → semi-join).
    Q4,
    /// Local supplier volume.
    Q5,
    /// Forecasting revenue change (pure selection).
    Q6,
    /// Volume shipping between two nations.
    Q7,
}

impl TpchQuery {
    /// The evaluated subset, in query-number order.
    pub const ALL: [TpchQuery; 6] = [
        TpchQuery::Q2,
        TpchQuery::Q3,
        TpchQuery::Q4,
        TpchQuery::Q5,
        TpchQuery::Q6,
        TpchQuery::Q7,
    ];

    /// The query's paper name, e.g. `Q6`.
    pub fn name(self) -> &'static str {
        match self {
            TpchQuery::Q2 => "Q2",
            TpchQuery::Q3 => "Q3",
            TpchQuery::Q4 => "Q4",
            TpchQuery::Q5 => "Q5",
            TpchQuery::Q6 => "Q6",
            TpchQuery::Q7 => "Q7",
        }
    }

    /// Build the physical plan.
    pub fn plan(self) -> PlanNode {
        match self {
            TpchQuery::Q2 => q2(),
            TpchQuery::Q3 => q3(),
            TpchQuery::Q4 => q4(),
            TpchQuery::Q5 => q5(),
            TpchQuery::Q6 => q6(),
            TpchQuery::Q7 => q7(),
        }
    }

    /// SQL text for the queries expressible in the SQL subset (`None` for
    /// Q2's decorrelated min-subquery, Q4's EXISTS semi-join and Q7's
    /// self-join of `nation`). Dates are `yyyymmdd` integers and the
    /// projections match the programmatic plans' aggregates.
    pub fn sql(self) -> Option<&'static str> {
        match self {
            TpchQuery::Q3 => Some(
                "select l_orderkey, o_orderdate, o_shippriority,                  sum(l_extendedprice * (1 - l_discount)) as revenue                  from customer, orders, lineitem                  where c_mktsegment = 'BUILDING' and c_custkey = o_custkey                  and l_orderkey = o_orderkey and o_orderdate < 19950315                  and l_shipdate > 19950315                  group by l_orderkey, o_orderdate, o_shippriority                  order by revenue desc, o_orderdate limit 10",
            ),
            TpchQuery::Q5 => Some(
                "select n_name,                  sum(l_extendedprice * (1 - l_discount)) as revenue                  from customer, orders, lineitem, supplier, nation, region                  where c_custkey = o_custkey and l_orderkey = o_orderkey                  and l_suppkey = s_suppkey and c_nationkey = s_nationkey                  and s_nationkey = n_nationkey and n_regionkey = r_regionkey                  and r_name = 'ASIA' and o_orderdate >= 19940101                  and o_orderdate < 19950101                  group by n_name order by revenue desc",
            ),
            TpchQuery::Q6 => Some(
                "select sum(l_extendedprice * l_discount) as revenue                  from lineitem                  where l_shipdate >= 19940101 and l_shipdate < 19950101                  and l_discount between 0.05 and 0.07 and l_quantity < 24",
            ),
            _ => None,
        }
    }
}

/// Plans for the whole evaluated subset.
pub fn workload() -> Vec<PlanNode> {
    TpchQuery::ALL.iter().map(|q| q.plan()).collect()
}

/// `partsupp ⋈ supplier ⋈ nation ⋈ region('EUROPE')` — the supplier-side
/// subtree Q2 uses twice (once for the min-cost aggregate, once for the
/// final result).
fn q2_supply_side() -> PlanNode {
    let nation_in_europe = PlanNode::scan("nation", ["n_nationkey", "n_name", "n_regionkey"]).join(
        PlanNode::scan("region", ["r_regionkey"]).filter(Predicate::eq("r_name", "EUROPE")),
        "n_regionkey",
        "r_regionkey",
    );
    PlanNode::scan("partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
        .join(
            PlanNode::scan("supplier", ["s_suppkey", "s_name", "s_nationkey", "s_acctbal"]),
            "ps_suppkey",
            "s_suppkey",
        )
        .join(nation_in_europe, "s_nationkey", "n_nationkey")
}

/// Q2 (minimum-cost supplier), decorrelated.
fn q2() -> PlanNode {
    let min_cost = q2_supply_side().aggregate(
        ["ps_partkey"],
        vec![AggSpec::new(AggFunc::Min, Expr::col("ps_supplycost"), "min_cost")],
    );
    let brass_parts = PlanNode::scan("part", ["p_partkey", "p_mfgr"]).filter(
        Predicate::and([
            Predicate::eq("p_size", 15),
            Predicate::StrSuffix { column: "p_type".into(), suffix: "BRASS".into() },
        ]),
    );
    q2_supply_side()
        .join(brass_parts, "ps_partkey", "p_partkey")
        .join(min_cost, "ps_partkey", "ps_partkey")
        .filter(Predicate::ColCmp {
            left: "ps_supplycost".into(),
            op: CmpOp::Eq,
            right: "min_cost".into(),
        })
        .project(vec![
            ("s_acctbal", Expr::col("s_acctbal")),
            ("s_name", Expr::col("s_name")),
            ("n_name", Expr::col("n_name")),
            ("p_partkey", Expr::col("p_partkey")),
            ("p_mfgr", Expr::col("p_mfgr")),
        ])
        .top_k(vec![SortKey::desc("s_acctbal"), SortKey::asc("p_partkey")], 100)
}

/// Q3 (shipping priority).
fn q3() -> PlanNode {
    let cutoff = 19_950_315;
    let building = PlanNode::scan("customer", ["c_custkey"])
        .filter(Predicate::eq("c_mktsegment", "BUILDING"));
    let open_orders =
        PlanNode::scan("orders", ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"])
            .filter(Predicate::cmp("o_orderdate", CmpOp::Lt, cutoff))
            .join(building, "o_custkey", "c_custkey");
    PlanNode::scan("lineitem", ["l_orderkey", "l_extendedprice", "l_discount"])
        .filter(Predicate::cmp("l_shipdate", CmpOp::Gt, cutoff))
        .join(open_orders, "l_orderkey", "o_orderkey")
        .aggregate(
            ["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![AggSpec::sum(
                Expr::col("l_extendedprice")
                    * (Expr::lit(1.0) - Expr::col("l_discount")),
                "revenue",
            )],
        )
        .top_k(vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")], 10)
}

/// Q4 (order priority checking): EXISTS → semi-join.
fn q4() -> PlanNode {
    let late_items = PlanNode::scan("lineitem", ["l_orderkey"]).filter(Predicate::ColCmp {
        left: "l_commitdate".into(),
        op: CmpOp::Lt,
        right: "l_receiptdate".into(),
    });
    PlanNode::scan("orders", ["o_orderkey", "o_orderpriority"])
        .filter(Predicate::and([
            Predicate::cmp("o_orderdate", CmpOp::Ge, 19_930_701),
            Predicate::cmp("o_orderdate", CmpOp::Lt, 19_931_001),
        ]))
        .join_kind(late_items, "o_orderkey", "l_orderkey", JoinKind::Semi)
        .aggregate(["o_orderpriority"], vec![AggSpec::count("order_count")])
        .sort(vec![SortKey::asc("o_orderpriority")])
}

/// Q5 (local supplier volume).
fn q5() -> PlanNode {
    let asia_nations = PlanNode::scan("nation", ["n_nationkey", "n_name", "n_regionkey"]).join(
        PlanNode::scan("region", ["r_regionkey"]).filter(Predicate::eq("r_name", "ASIA")),
        "n_regionkey",
        "r_regionkey",
    );
    let orders_94 = PlanNode::scan("orders", ["o_orderkey", "o_custkey"]).filter(
        Predicate::and([
            Predicate::cmp("o_orderdate", CmpOp::Ge, 19_940_101),
            Predicate::cmp("o_orderdate", CmpOp::Lt, 19_950_101),
        ]),
    );
    PlanNode::scan(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )
    .join(orders_94, "l_orderkey", "o_orderkey")
    .join(
        PlanNode::scan("customer", ["c_custkey", "c_nationkey"]),
        "o_custkey",
        "c_custkey",
    )
    .join(
        PlanNode::scan("supplier", ["s_suppkey", "s_nationkey"]),
        "l_suppkey",
        "s_suppkey",
    )
    // Local suppliers only: the customer and supplier share the nation.
    .filter(Predicate::ColCmp {
        left: "c_nationkey".into(),
        op: CmpOp::Eq,
        right: "s_nationkey".into(),
    })
    .join(asia_nations, "s_nationkey", "n_nationkey")
    .aggregate(
        ["n_name"],
        vec![AggSpec::sum(
            Expr::col("l_extendedprice") * (Expr::lit(1.0) - Expr::col("l_discount")),
            "revenue",
        )],
    )
    .sort(vec![SortKey::desc("revenue")])
}

/// Q6 (forecasting revenue change) — pure selection + aggregate.
fn q6() -> PlanNode {
    PlanNode::scan("lineitem", ["l_extendedprice", "l_discount"])
        .filter(Predicate::and([
            Predicate::cmp("l_shipdate", CmpOp::Ge, 19_940_101),
            Predicate::cmp("l_shipdate", CmpOp::Lt, 19_950_101),
            Predicate::between("l_discount", 0.05, 0.07),
            Predicate::cmp("l_quantity", CmpOp::Lt, 24),
        ]))
        .aggregate(
            [] as [&str; 0],
            vec![AggSpec::sum(
                Expr::col("l_extendedprice") * Expr::col("l_discount"),
                "revenue",
            )],
        )
}

/// Q7 (volume shipping between FRANCE and GERMANY).
fn q7() -> PlanNode {
    let two_nations = || {
        PlanNode::scan("nation", ["n_nationkey", "n_name"])
            .filter(Predicate::in_list("n_name", ["FRANCE", "GERMANY"]))
    };
    PlanNode::scan(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
    )
    .filter(Predicate::between("l_shipdate", 19_950_101, 19_961_231))
    // Supplier nation first: its name column keeps the bare `n_name`.
    .join(
        PlanNode::scan("supplier", ["s_suppkey", "s_nationkey"]),
        "l_suppkey",
        "s_suppkey",
    )
    .join(two_nations(), "s_nationkey", "n_nationkey")
    .join(
        PlanNode::scan("orders", ["o_orderkey", "o_custkey"]),
        "l_orderkey",
        "o_orderkey",
    )
    .join(
        PlanNode::scan("customer", ["c_custkey", "c_nationkey"]),
        "o_custkey",
        "c_custkey",
    )
    // Customer nation joins second; duplicate names gain the `_r` suffix.
    .join(two_nations(), "c_nationkey", "n_nationkey")
    .filter(Predicate::or([
        Predicate::and([
            Predicate::eq("n_name", "FRANCE"),
            Predicate::eq("n_name_r", "GERMANY"),
        ]),
        Predicate::and([
            Predicate::eq("n_name", "GERMANY"),
            Predicate::eq("n_name_r", "FRANCE"),
        ]),
    ]))
    .project(vec![
        ("supp_nation", Expr::col("n_name")),
        ("cust_nation", Expr::col("n_name_r")),
        ("l_year", Expr::year_of("l_shipdate")),
        (
            "volume",
            Expr::col("l_extendedprice") * (Expr::lit(1.0) - Expr::col("l_discount")),
        ),
    ])
    .aggregate(
        ["supp_nation", "cust_nation", "l_year"],
        vec![AggSpec::sum(Expr::col("volume"), "revenue")],
    )
    .sort(vec![
        SortKey::asc("supp_nation"),
        SortKey::asc("cust_nation"),
        SortKey::asc("l_year"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_engine::ops::execute_plan;
    use robustq_storage::gen::tpch::TpchGenerator;
    use robustq_storage::{Database, Value};

    fn db() -> Database {
        TpchGenerator::new(1).with_rows_per_sf(4_000).generate()
    }

    #[test]
    fn all_queries_execute() {
        let db = db();
        for q in TpchQuery::ALL {
            let out = execute_plan(&q.plan(), &db)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            assert!(out.num_columns() > 0, "{}", q.name());
        }
    }

    #[test]
    fn q2_returns_minimum_cost_suppliers() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q2.plan(), &db).unwrap();
        // Every returned part's cost equals the part's minimum — verified
        // by rejoining: row count must be >= distinct parts returned.
        assert!(out.num_rows() <= 100, "top-100");
        // Sorted by s_acctbal descending.
        let bals: Vec<f64> =
            (0..out.num_rows()).map(|i| out.row(i)[0].as_f64().unwrap()).collect();
        assert!(bals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q4_counts_match_manual_semi_join() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q4.plan(), &db).unwrap();
        let total: i64 = (0..out.num_rows())
            .map(|i| out.row(i)[1].as_i64().unwrap())
            .sum();
        // Manual: count orders in the window with a late lineitem.
        use robustq_storage::ColumnData;
        use std::collections::HashSet;
        let li = db.table("lineitem").unwrap();
        let late: HashSet<i32> = {
            let (ok, cd, rd) = (
                li.column("l_orderkey").unwrap(),
                li.column("l_commitdate").unwrap(),
                li.column("l_receiptdate").unwrap(),
            );
            (0..li.num_rows())
                .filter(|&i| cd.get_f64(i) < rd.get_f64(i))
                .map(|i| match ok {
                    ColumnData::Int32(v) => v[i],
                    _ => unreachable!(),
                })
                .collect()
        };
        let orders = db.table("orders").unwrap();
        let (okey, odate) = (
            orders.column("o_orderkey").unwrap(),
            orders.column("o_orderdate").unwrap(),
        );
        let expected = (0..orders.num_rows())
            .filter(|&i| {
                let d = odate.get_f64(i) as i32;
                (19_930_701..19_931_001).contains(&d)
            })
            .filter(|&i| match okey {
                ColumnData::Int32(v) => late.contains(&v[i]),
                _ => unreachable!(),
            })
            .count() as i64;
        assert_eq!(total, expected);
    }

    #[test]
    fn q6_matches_manual_scan() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q6.plan(), &db).unwrap();
        let got = out.row(0)[0].as_f64().unwrap();
        let li = db.table("lineitem").unwrap();
        let (sd, disc, qty, price) = (
            li.column("l_shipdate").unwrap(),
            li.column("l_discount").unwrap(),
            li.column("l_quantity").unwrap(),
            li.column("l_extendedprice").unwrap(),
        );
        let mut expected = 0.0;
        for i in 0..li.num_rows() {
            let d = disc.get_f64(i);
            if (19_940_101.0..19_950_101.0).contains(&sd.get_f64(i))
                && (0.05..=0.07).contains(&d)
                && qty.get_f64(i) < 24.0
            {
                expected += price.get_f64(i) * d;
            }
        }
        assert!((got - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn q7_returns_both_directions_only() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q7.plan(), &db).unwrap();
        assert!(out.num_rows() > 0, "France↔Germany trade must exist");
        for i in 0..out.num_rows() {
            let supp = out.row(i)[0].to_string();
            let cust = out.row(i)[1].to_string();
            assert!(
                (supp == "FRANCE" && cust == "GERMANY")
                    || (supp == "GERMANY" && cust == "FRANCE"),
                "unexpected pair {supp}/{cust}"
            );
            let year = out.row(i)[2].as_i64().unwrap();
            assert!((1995..=1996).contains(&year));
        }
    }

    #[test]
    fn q3_top10_sorted_by_revenue() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q3.plan(), &db).unwrap();
        assert!(out.num_rows() <= 10);
        let idx = out.index_of("revenue").unwrap();
        let revs: Vec<f64> = (0..out.num_rows())
            .map(|i| out.row(i)[idx].as_f64().unwrap())
            .collect();
        assert!(revs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q5_nations_are_asian() {
        let db = db();
        let out = execute_plan(&TpchQuery::Q5.plan(), &db).unwrap();
        let asian = ["INDIA", "INDONESIA", "JAPAN", "VIETNAM", "CHINA"];
        for i in 0..out.num_rows() {
            match &out.row(i)[0] {
                Value::Str(n) => assert!(asian.contains(&n.as_str()), "{n}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod sql_equivalence_tests {
    use super::*;
    use robustq_engine::ops::execute_plan;
    use robustq_sql::plan_sql;
    use robustq_storage::gen::tpch::TpchGenerator;

    /// The SQL forms must return the same rows as the programmatic plans.
    #[test]
    fn sql_variants_match_programmatic_plans() {
        let db = TpchGenerator::new(1).with_rows_per_sf(4_000).generate();
        for q in TpchQuery::ALL {
            let Some(sql) = q.sql() else { continue };
            let via_sql = execute_plan(&plan_sql(sql, &db).unwrap(), &db)
                .unwrap_or_else(|e| panic!("{} sql: {e}", q.name()));
            let direct = execute_plan(&q.plan(), &db)
                .unwrap_or_else(|e| panic!("{} plan: {e}", q.name()));
            assert_eq!(
                via_sql.num_rows(),
                direct.num_rows(),
                "{}: row counts differ",
                q.name()
            );
            assert_eq!(
                via_sql.sorted_rows(),
                direct.sorted_rows(),
                "{}: results differ",
                q.name()
            );
        }
    }

    #[test]
    fn three_queries_have_sql_forms() {
        let with_sql = TpchQuery::ALL.iter().filter(|q| q.sql().is_some()).count();
        assert_eq!(with_sql, 3);
    }
}
