//! The appendix micro-benchmarks.
//!
//! * **Serial selection workload** (B.1, Listing 1): eight selections
//!   filtering on eight *different* lineorder columns, executed
//!   interleaved — the working set is the union of the eight filter
//!   columns, which is what thrashes the co-processor cache in Figure 2.
//! * **Parallel selection workload** (B.2, Listing 2): one selection
//!   query on two columns (derived from SSB Q1.1) compiled into a chain
//!   of four consecutive operators; many sessions run it concurrently and
//!   their accumulated heap footprints cause the contention of Figure 3.
//!
//! Note one deliberate deviation: the paper writes the queries as
//! `SELECT *`, but measures a working set of only the *filter* columns
//! (1.9 GB for B.1) — the GPU selection kernels touch just those. Our
//! plans therefore scan and output the filter columns, which reproduces
//! the intended working set exactly.

use robustq_engine::expr::Expr;
use robustq_engine::plan::{PlanNode, SortKey};
use robustq_engine::predicate::{CmpOp, Predicate};

/// The eight Listing-1 selections: `(column, predicate)`.
pub const SERIAL_SELECTIONS: [(&str, CmpOp, f64); 8] = [
    ("lo_quantity", CmpOp::Lt, 1.0),
    ("lo_discount", CmpOp::Gt, 10.0),
    ("lo_shippriority", CmpOp::Gt, 0.0),
    ("lo_extendedprice", CmpOp::Lt, 100.0),
    ("lo_ordtotalprice", CmpOp::Lt, 100.0),
    ("lo_revenue", CmpOp::Lt, 1000.0),
    ("lo_supplycost", CmpOp::Lt, 1000.0),
    ("lo_tax", CmpOp::Gt, 10.0),
];

/// One serial-selection query: filter one lineorder column.
pub fn serial_selection(column: &str, op: CmpOp, value: f64) -> PlanNode {
    PlanNode::scan("lineorder", [column])
        .filter(Predicate::cmp(column, op, value))
}

/// The Listing-1 workload: `repetitions` interleaved rounds of the eight
/// selections (the interleaving is what defeats LRU once the union of
/// columns exceeds the cache).
pub fn serial_selection_workload(repetitions: usize) -> Vec<PlanNode> {
    let mut out = Vec::with_capacity(repetitions * SERIAL_SELECTIONS.len());
    for _ in 0..repetitions {
        for (col, op, v) in SERIAL_SELECTIONS {
            out.push(serial_selection(col, op, v));
        }
    }
    out
}

/// The Listing-2 parallel selection query, compiled to four consecutive
/// operators (scan-filter → filter → projection → sort), as the paper
/// describes ("four different operators to be executed consecutively").
pub fn parallel_selection_query() -> PlanNode {
    PlanNode::scan("lineorder", ["lo_discount", "lo_quantity"])
        .filter(Predicate::between("lo_discount", 4, 6))
        .filter(Predicate::between("lo_quantity", 26, 35))
        .project(vec![
            ("lo_discount", Expr::col("lo_discount")),
            ("lo_quantity", Expr::col("lo_quantity")),
        ])
        .sort(vec![SortKey::asc("lo_quantity")])
}

/// The B.2 workload: `total_queries` copies of the parallel selection
/// query, to be distributed over user sessions by the runner.
pub fn parallel_selection_workload(total_queries: usize) -> Vec<PlanNode> {
    (0..total_queries).map(|_| parallel_selection_query()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_engine::ops::execute_plan;
    use robustq_storage::gen::ssb::SsbGenerator;

    #[test]
    fn serial_workload_interleaves_eight_columns() {
        let w = serial_selection_workload(2);
        assert_eq!(w.len(), 16);
        // Same column appears again exactly 8 queries later.
        assert_eq!(w[0], w[8]);
        assert_ne!(w[0], w[1]);
    }

    #[test]
    fn serial_selections_execute_with_tiny_results() {
        let db = SsbGenerator::new(1).with_rows_per_sf(2_000).generate();
        for (col, op, v) in SERIAL_SELECTIONS {
            let out = execute_plan(&serial_selection(col, op, v), &db).unwrap();
            // Listing 1 predicates are highly selective by construction.
            assert!(
                out.num_rows() < 200,
                "{col}: {} rows is not highly selective",
                out.num_rows()
            );
        }
    }

    #[test]
    fn parallel_query_has_four_operators() {
        assert_eq!(parallel_selection_query().num_operators(), 4);
    }

    #[test]
    fn parallel_query_filters_both_ranges() {
        let db = SsbGenerator::new(1).with_rows_per_sf(2_000).generate();
        let out = execute_plan(&parallel_selection_query(), &db).unwrap();
        assert!(out.num_rows() > 0);
        for i in 0..out.num_rows() {
            let d = out.row(i)[0].as_i64().unwrap();
            let q = out.row(i)[1].as_i64().unwrap();
            assert!((4..=6).contains(&d));
            assert!((26..=35).contains(&q));
        }
    }

    #[test]
    fn workload_size_is_exact() {
        assert_eq!(parallel_selection_workload(100).len(), 100);
    }
}
