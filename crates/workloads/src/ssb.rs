//! The 13 Star Schema Benchmark queries (O'Neil et al., revision 3),
//! expressed in SQL against the generated schema and planned through the
//! SQL front end.

use robustq_engine::plan::PlanNode;
use robustq_sql::{plan_sql, SqlError};
use robustq_storage::Database;

/// The SSB queries Q1.1–Q4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum SsbQuery {
    /// Flight 1, drill-down 1 (year filter).
    Q1_1,
    /// Flight 1, drill-down 2 (year-month filter).
    Q1_2,
    /// Flight 1, drill-down 3 (week filter).
    Q1_3,
    /// Flight 2, drill-down 1 (category filter).
    Q2_1,
    /// Flight 2, drill-down 2 (brand range).
    Q2_2,
    /// Flight 2, drill-down 3 (single brand).
    Q2_3,
    /// Flight 3, drill-down 1 (regions).
    Q3_1,
    /// Flight 3, drill-down 2 (nations).
    Q3_2,
    /// Flight 3, drill-down 3 (cities).
    Q3_3,
    /// Flight 3, drill-down 4 (cities, one month).
    Q3_4,
    /// Flight 4, drill-down 1 (profit by nation).
    Q4_1,
    /// Flight 4, drill-down 2 (profit by category).
    Q4_2,
    /// Flight 4, drill-down 3 (profit by brand).
    Q4_3,
}

impl SsbQuery {
    /// All queries in flight order (the full SSBM workload).
    pub const ALL: [SsbQuery; 13] = [
        SsbQuery::Q1_1,
        SsbQuery::Q1_2,
        SsbQuery::Q1_3,
        SsbQuery::Q2_1,
        SsbQuery::Q2_2,
        SsbQuery::Q2_3,
        SsbQuery::Q3_1,
        SsbQuery::Q3_2,
        SsbQuery::Q3_3,
        SsbQuery::Q3_4,
        SsbQuery::Q4_1,
        SsbQuery::Q4_2,
        SsbQuery::Q4_3,
    ];

    /// The paper's Figure 17/21 query selection.
    pub const SELECTED: [SsbQuery; 8] = [
        SsbQuery::Q1_1,
        SsbQuery::Q2_1,
        SsbQuery::Q2_3,
        SsbQuery::Q3_1,
        SsbQuery::Q3_4,
        SsbQuery::Q4_1,
        SsbQuery::Q4_2,
        SsbQuery::Q4_3,
    ];

    /// The query's paper name, e.g. `Q3.3`.
    pub fn name(self) -> &'static str {
        match self {
            SsbQuery::Q1_1 => "Q1.1",
            SsbQuery::Q1_2 => "Q1.2",
            SsbQuery::Q1_3 => "Q1.3",
            SsbQuery::Q2_1 => "Q2.1",
            SsbQuery::Q2_2 => "Q2.2",
            SsbQuery::Q2_3 => "Q2.3",
            SsbQuery::Q3_1 => "Q3.1",
            SsbQuery::Q3_2 => "Q3.2",
            SsbQuery::Q3_3 => "Q3.3",
            SsbQuery::Q3_4 => "Q3.4",
            SsbQuery::Q4_1 => "Q4.1",
            SsbQuery::Q4_2 => "Q4.2",
            SsbQuery::Q4_3 => "Q4.3",
        }
    }

    /// The SQL text of the query.
    pub fn sql(self) -> &'static str {
        match self {
            SsbQuery::Q1_1 => {
                "select sum(lo_extendedprice * lo_discount) as revenue \
                 from lineorder, date \
                 where lo_orderdate = d_datekey and d_year = 1993 \
                 and lo_discount between 1 and 3 and lo_quantity < 25"
            }
            SsbQuery::Q1_2 => {
                "select sum(lo_extendedprice * lo_discount) as revenue \
                 from lineorder, date \
                 where lo_orderdate = d_datekey and d_yearmonthnum = 199401 \
                 and lo_discount between 4 and 6 \
                 and lo_quantity between 26 and 35"
            }
            SsbQuery::Q1_3 => {
                "select sum(lo_extendedprice * lo_discount) as revenue \
                 from lineorder, date \
                 where lo_orderdate = d_datekey and d_weeknuminyear = 6 \
                 and d_year = 1994 and lo_discount between 5 and 7 \
                 and lo_quantity between 26 and 35"
            }
            SsbQuery::Q2_1 => {
                "select sum(lo_revenue) as revenue, d_year, p_brand1 \
                 from lineorder, date, part, supplier \
                 where lo_orderdate = d_datekey and lo_partkey = p_partkey \
                 and lo_suppkey = s_suppkey and p_category = 'MFGR#12' \
                 and s_region = 'AMERICA' \
                 group by d_year, p_brand1 order by d_year, p_brand1"
            }
            SsbQuery::Q2_2 => {
                "select sum(lo_revenue) as revenue, d_year, p_brand1 \
                 from lineorder, date, part, supplier \
                 where lo_orderdate = d_datekey and lo_partkey = p_partkey \
                 and lo_suppkey = s_suppkey \
                 and p_brand1 between 'MFGR#2221' and 'MFGR#2228' \
                 and s_region = 'ASIA' \
                 group by d_year, p_brand1 order by d_year, p_brand1"
            }
            SsbQuery::Q2_3 => {
                "select sum(lo_revenue) as revenue, d_year, p_brand1 \
                 from lineorder, date, part, supplier \
                 where lo_orderdate = d_datekey and lo_partkey = p_partkey \
                 and lo_suppkey = s_suppkey and p_brand1 = 'MFGR#2221' \
                 and s_region = 'EUROPE' \
                 group by d_year, p_brand1 order by d_year, p_brand1"
            }
            SsbQuery::Q3_1 => {
                "select c_nation, s_nation, d_year, sum(lo_revenue) as revenue \
                 from customer, lineorder, supplier, date \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_orderdate = d_datekey and c_region = 'ASIA' \
                 and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 \
                 group by c_nation, s_nation, d_year \
                 order by d_year asc, revenue desc"
            }
            SsbQuery::Q3_2 => {
                "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
                 from customer, lineorder, supplier, date \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_orderdate = d_datekey and c_nation = 'UNITED STATES' \
                 and s_nation = 'UNITED STATES' \
                 and d_year >= 1992 and d_year <= 1997 \
                 group by c_city, s_city, d_year \
                 order by d_year asc, revenue desc"
            }
            SsbQuery::Q3_3 => {
                "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
                 from customer, lineorder, supplier, date \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_orderdate = d_datekey \
                 and c_city in ('UNITED KI1', 'UNITED KI5') \
                 and s_city in ('UNITED KI1', 'UNITED KI5') \
                 and d_year >= 1992 and d_year <= 1997 \
                 group by c_city, s_city, d_year \
                 order by d_year asc, revenue desc"
            }
            SsbQuery::Q3_4 => {
                "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
                 from customer, lineorder, supplier, date \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_orderdate = d_datekey \
                 and c_city in ('UNITED KI1', 'UNITED KI5') \
                 and s_city in ('UNITED KI1', 'UNITED KI5') \
                 and d_yearmonth = 'Dec1997' \
                 group by c_city, s_city, d_year \
                 order by d_year asc, revenue desc"
            }
            SsbQuery::Q4_1 => {
                "select d_year, c_nation, \
                 sum(lo_revenue - lo_supplycost) as profit \
                 from date, customer, supplier, part, lineorder \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_partkey = p_partkey and lo_orderdate = d_datekey \
                 and c_region = 'AMERICA' and s_region = 'AMERICA' \
                 and p_mfgr in ('MFGR#1', 'MFGR#2') \
                 group by d_year, c_nation order by d_year, c_nation"
            }
            SsbQuery::Q4_2 => {
                "select d_year, s_nation, p_category, \
                 sum(lo_revenue - lo_supplycost) as profit \
                 from date, customer, supplier, part, lineorder \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_partkey = p_partkey and lo_orderdate = d_datekey \
                 and c_region = 'AMERICA' and s_region = 'AMERICA' \
                 and d_year in (1997, 1998) \
                 and p_mfgr in ('MFGR#1', 'MFGR#2') \
                 group by d_year, s_nation, p_category \
                 order by d_year, s_nation, p_category"
            }
            SsbQuery::Q4_3 => {
                "select d_year, s_city, p_brand1, \
                 sum(lo_revenue - lo_supplycost) as profit \
                 from date, customer, supplier, part, lineorder \
                 where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
                 and lo_partkey = p_partkey and lo_orderdate = d_datekey \
                 and c_region = 'AMERICA' and s_nation = 'UNITED STATES' \
                 and d_year in (1997, 1998) and p_category = 'MFGR#14' \
                 group by d_year, s_city, p_brand1 \
                 order by d_year, s_city, p_brand1"
            }
        }
    }

    /// Plan the query against `db`.
    pub fn plan(self, db: &Database) -> Result<PlanNode, SqlError> {
        plan_sql(self.sql(), db)
    }
}

/// Plans for the full 13-query SSBM workload.
pub fn workload(db: &Database) -> Result<Vec<PlanNode>, SqlError> {
    SsbQuery::ALL.iter().map(|q| q.plan(db)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_engine::ops::execute_plan;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(3_000).generate()
    }

    #[test]
    fn all_queries_plan_and_execute() {
        let db = db();
        for q in SsbQuery::ALL {
            let plan = q.plan(&db).unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            let out = execute_plan(&plan, &db)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            // Flight 1 aggregates to one row; the others group.
            if matches!(q, SsbQuery::Q1_1 | SsbQuery::Q1_2 | SsbQuery::Q1_3) {
                assert_eq!(out.num_rows(), 1, "{}", q.name());
            }
        }
    }

    #[test]
    fn q1_1_matches_manual_computation() {
        let db = db();
        use robustq_storage::ColumnData;
        let lo = db.table("lineorder").unwrap();
        let date = db.table("date").unwrap();
        let years: std::collections::HashMap<i32, i32> = {
            let (k, y) = (date.column("d_datekey").unwrap(), date.column("d_year").unwrap());
            (0..date.num_rows())
                .map(|i| match (k, y) {
                    (ColumnData::Int32(k), ColumnData::Int32(y)) => (k[i], y[i]),
                    _ => unreachable!(),
                })
                .collect()
        };
        let (od, disc, qty, price) = (
            lo.column("lo_orderdate").unwrap(),
            lo.column("lo_discount").unwrap(),
            lo.column("lo_quantity").unwrap(),
            lo.column("lo_extendedprice").unwrap(),
        );
        let mut expected = 0.0;
        for i in 0..lo.num_rows() {
            let (d, q, p) = (disc.get_f64(i), qty.get_f64(i), price.get_f64(i));
            if years[&(od.get_f64(i) as i32)] == 1993 && (1.0..=3.0).contains(&d) && q < 25.0
            {
                expected += p * d;
            }
        }
        let out = execute_plan(&SsbQuery::Q1_1.plan(&db).unwrap(), &db).unwrap();
        let got = out.row(0)[0].as_f64().unwrap();
        assert!((got - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn q3_3_filters_to_two_cities() {
        let db = db();
        let out = execute_plan(&SsbQuery::Q3_3.plan(&db).unwrap(), &db).unwrap();
        for i in 0..out.num_rows() {
            let c_city = out.row(i)[0].to_string();
            assert!(c_city == "UNITED KI1" || c_city == "UNITED KI5");
        }
    }

    #[test]
    fn selected_subset_is_subset_of_all() {
        for q in SsbQuery::SELECTED {
            assert!(SsbQuery::ALL.contains(&q));
        }
    }

    #[test]
    fn workload_has_13_queries() {
        let db = db();
        assert_eq!(workload(&db).unwrap().len(), 13);
    }
}
