#![warn(missing_docs)]

//! Benchmark workloads and the multi-user workload runner.
//!
//! * [`ssb`] — the 13 Star Schema Benchmark queries Q1.1–Q4.3 (as SQL,
//!   planned through `robustq-sql`),
//! * [`tpch`] — the evaluated TPC-H subset Q2–Q7 (built programmatically;
//!   Q2/Q4 need decorrelated / semi-join forms outside the SQL subset),
//! * [`micro`] — the appendix micro-benchmarks: the serial selection
//!   workload (B.1, cache thrashing) and the parallel selection query
//!   (B.2, heap contention),
//! * [`runner`] — closed-loop multi-user execution with warmup, pre-load
//!   and metric collection, mirroring the paper's experimental procedure
//!   (Section 6.1),
//! * [`partitioned`] — multi-co-processor scale-up via horizontal
//!   partitioning with exact partial-result merging (the Section 6.3
//!   discussion).

pub mod micro;
pub mod partitioned;
pub mod runner;
pub mod ssb;
pub mod ssb_stream;
pub mod tpch;

pub use runner::{RunPhase, RunReport, RunnerConfig, WorkloadRunner};
pub use ssb::SsbQuery;
pub use ssb_stream::{SsbStreamData, SsbStreamGen};
pub use tpch::TpchQuery;
