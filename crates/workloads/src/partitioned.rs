//! Multi-co-processor scale-up via horizontal partitioning (Section 6.3).
//!
//! The paper's discussion: a single co-processor's memory bounds the
//! workloads it can accelerate, and "it is common to use multiple GPUs in
//! a single machine … Our Data-Driven strategy can support multiple
//! co-processors by performing horizontal partitioning."
//!
//! This module implements that sketch: the fact table is split row-wise
//! into `n` partitions, dimensions are replicated, and each partition runs
//! on its own simulated machine (one co-processor each) *in parallel* —
//! makespan is the maximum over partitions, transfers and aborts are
//! summed. Per-partition partial results are merged exactly:
//!
//! * aggregate-rooted plans (all SSB queries) re-aggregate the
//!   concatenated partials — `SUM`/`COUNT` merge by summation, `MIN`/`MAX`
//!   by re-applying themselves; `AVG` roots are rejected (they are not
//!   decomposable without a rewrite);
//! * a `Sort`/top-k on top of an aggregate is re-applied after the merge;
//! * plans without a grouping root simply concatenate.

use crate::runner::{RunnerConfig, WorkloadRunner};
use robustq_core::Strategy;
use robustq_engine::expr::Expr;
use robustq_engine::ops;
use robustq_engine::plan::{AggFunc, AggSpec, PlanNode};
use robustq_engine::{Chunk, RunMetrics};
use robustq_sim::{SimConfig, VirtualTime};
use robustq_storage::{ColumnData, Database, Table};

/// Split `db`'s `fact_table` row-wise into `n` partitions, replicating
/// every other table.
pub fn partition(db: &Database, fact_table: &str, n: usize) -> Result<Vec<Database>, String> {
    let n = n.max(1);
    let fact = db
        .table(fact_table)
        .ok_or_else(|| format!("no table {fact_table}"))?;
    let rows = fact.num_rows();
    let mut parts = Vec::with_capacity(n);
    for p in 0..n {
        let lo = rows * p / n;
        let hi = rows * (p + 1) / n;
        let positions: Vec<u32> = (lo as u32..hi as u32).collect();
        let mut part_db = Database::new();
        for t in db.tables() {
            let table = if t.name() == fact_table {
                let columns: Vec<ColumnData> =
                    t.columns().iter().map(|c| c.gather(&positions)).collect();
                Table::new(t.name(), t.schema().clone(), columns)
                    .map_err(|e| e.to_string())?
            } else {
                t.clone()
            };
            part_db.add_table(table).map_err(|e| e.to_string())?;
        }
        parts.push(part_db);
    }
    Ok(parts)
}

/// Outcome of a partitioned run for one query.
#[derive(Debug, Clone)]
pub struct PartitionedQueryResult {
    /// The exact merged result.
    pub result: Chunk,
    /// Slowest partition's latency (partitions run in parallel).
    pub latency: VirtualTime,
}

/// Outcome of a partitioned workload run.
#[derive(Debug, Clone)]
pub struct PartitionedReport {
    /// Makespan = the slowest partition's makespan.
    pub makespan: VirtualTime,
    /// Summed metrics across partitions (transfers, aborts, …).
    pub total: RunMetrics,
    /// Per-query merged results, in workload order.
    pub queries: Vec<PartitionedQueryResult>,
}

/// Merge per-partition results of `plan` into the exact global result.
///
/// The merge looks *through* the root's `Sort` and reordering `Project`
/// wrappers for the grouping aggregate (the planner places both above it):
/// partials are concatenated and re-aggregated on the aggregate's output
/// names, restored to the partials' column order, and the outermost sort
/// is re-applied.
pub fn merge_partials(plan: &PlanNode, partials: &[Chunk]) -> Result<Chunk, String> {
    // Walk down through Sort/Project to the aggregate, remembering the
    // outermost sort.
    let mut sort: Option<(&[robustq_engine::plan::SortKey], Option<usize>)> = None;
    let mut node = plan;
    let agg = loop {
        match node {
            PlanNode::Sort { input, keys, limit } => {
                if sort.is_none() {
                    sort = Some((keys.as_slice(), *limit));
                }
                node = input;
            }
            PlanNode::Project { input, .. } => node = input,
            PlanNode::Aggregate { group_by, aggs, .. } => {
                break Some((group_by, aggs))
            }
            _ => break None,
        }
    };

    let merged = match agg {
        Some((group_by, aggs)) => {
            for a in aggs {
                if a.func == AggFunc::Avg {
                    return Err(
                        "AVG roots are not decomposable across partitions".into()
                    );
                }
            }
            let concat = Chunk::concat(partials)?;
            // Re-aggregate the partials: SUM/COUNT merge by summing the
            // partial column, MIN/MAX by re-applying themselves.
            let merge_aggs: Vec<AggSpec> = aggs
                .iter()
                .map(|a| {
                    let func = match a.func {
                        AggFunc::Sum | AggFunc::Count => AggFunc::Sum,
                        other => other,
                    };
                    AggSpec::new(func, Expr::col(&a.output_name), a.output_name.clone())
                })
                .collect();
            let merged = ops::agg::aggregate(&concat, group_by, &merge_aggs)?;
            let merged = restore_count_types(merged, aggs)?;
            // Back to the partials' (possibly projected) column order.
            let order: Vec<String> = partials[0]
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            ops::project::keep_columns(&merged, &order)?
        }
        None => Chunk::concat(partials)?,
    };
    match sort {
        Some((keys, limit)) => ops::sort::sort(&merged, keys, limit),
        None => Ok(merged),
    }
}

/// Cast merged COUNT outputs back to their original Int64 type.
fn restore_count_types(chunk: Chunk, aggs: &[AggSpec]) -> Result<Chunk, String> {
    let needs_cast: Vec<&str> = aggs
        .iter()
        .filter(|a| a.func == AggFunc::Count)
        .map(|a| a.output_name.as_str())
        .collect();
    if needs_cast.is_empty() {
        return Ok(chunk);
    }
    let mut fields = chunk.fields().to_vec();
    let mut columns = chunk.columns().to_vec();
    for (f, c) in fields.iter_mut().zip(columns.iter_mut()) {
        if needs_cast.contains(&f.name.as_str()) {
            if let ColumnData::Float64(v) = c {
                *c = ColumnData::Int64(v.iter().map(|&x| x as i64).collect());
                f.data_type = robustq_storage::DataType::Int64;
            }
        }
    }
    Ok(Chunk::new(fields, columns))
}

/// Run `queries` on `parts` partitions in parallel (each on its own
/// simulated machine shaped by `sim`), merging results exactly.
pub fn run_partitioned(
    parts: &[Database],
    sim: &SimConfig,
    queries: &[PlanNode],
    strategy: Strategy,
    cfg: &RunnerConfig,
) -> Result<PartitionedReport, String> {
    if parts.is_empty() {
        return Err("no partitions".into());
    }
    let mut reports = Vec::with_capacity(parts.len());
    for db in parts {
        let runner = WorkloadRunner::new(db, sim.clone());
        let capture = RunnerConfig { capture_results: true, ..cfg.clone() };
        reports.push(runner.run(queries, strategy, &capture)?);
    }

    let makespan = reports
        .iter()
        .map(|r| r.metrics.makespan)
        .max()
        .unwrap_or(VirtualTime::ZERO);
    let mut total = RunMetrics::default();
    for r in &reports {
        total.h2d_time += r.metrics.h2d_time;
        total.h2d_bytes += r.metrics.h2d_bytes;
        total.d2h_time += r.metrics.d2h_time;
        total.d2h_bytes += r.metrics.d2h_bytes;
        total.aborts += r.metrics.aborts;
        total.wasted_time += r.metrics.wasted_time;
        total.queries += r.metrics.queries;
        for (d, busy) in r.metrics.device_busy.iter() {
            *total.device_busy.get_mut_or_grow(d) += *busy;
        }
        for (d, ops) in r.metrics.ops_completed.iter() {
            *total.ops_completed.get_mut_or_grow(d) += *ops;
        }
    }
    total.makespan = makespan;

    let mut merged_queries = Vec::with_capacity(queries.len());
    for (k, plan) in queries.iter().enumerate() {
        let mut partials = Vec::with_capacity(parts.len());
        let mut latency = VirtualTime::ZERO;
        for r in &reports {
            let outcome = r
                .outcomes
                .iter()
                .find(|o| o.session == k % cfg.users.max(1) && o.seq == k / cfg.users.max(1))
                .ok_or("partition outcome missing")?;
            latency = latency.max(outcome.latency);
            partials.push(
                outcome.result.clone().ok_or("partition result not captured")?,
            );
        }
        let result = merge_partials(plan, &partials)?;
        merged_queries.push(PartitionedQueryResult { result, latency });
    }
    Ok(PartitionedReport { makespan, total, queries: merged_queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssb::SsbQuery;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(2).with_rows_per_sf(2_000).generate()
    }

    #[test]
    fn partitions_split_the_fact_and_replicate_dims() {
        let db = db();
        let parts = partition(&db, "lineorder", 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize =
            parts.iter().map(|p| p.table("lineorder").unwrap().num_rows()).sum();
        assert_eq!(total, db.table("lineorder").unwrap().num_rows());
        for p in &parts {
            assert_eq!(
                p.table("customer").unwrap().num_rows(),
                db.table("customer").unwrap().num_rows()
            );
        }
    }

    /// Rows must match exactly, except floats which may differ by
    /// summation order (relative 1e-9).
    fn assert_rows_close(got: &Chunk, expected: &Chunk, label: &str) {
        use robustq_storage::Value;
        let (g, e) = (got.sorted_rows(), expected.sorted_rows());
        assert_eq!(g.len(), e.len(), "{label}: row counts differ");
        for (gr, er) in g.iter().zip(&e) {
            for (gv, ev) in gr.iter().zip(er) {
                match (gv, ev) {
                    (Value::Float64(a), Value::Float64(b)) => {
                        let tol = 1e-9 * b.abs().max(1.0);
                        assert!((a - b).abs() <= tol, "{label}: {a} vs {b}");
                    }
                    _ => assert_eq!(gv, ev, "{label}"),
                }
            }
        }
    }

    #[test]
    fn merged_results_equal_single_machine_results() {
        let db = db();
        let parts = partition(&db, "lineorder", 2).unwrap();
        let sim = SimConfig::default();
        for q in [SsbQuery::Q1_1, SsbQuery::Q2_1, SsbQuery::Q3_1, SsbQuery::Q4_2] {
            let plan = q.plan(&db).unwrap();
            let expected = ops::execute_plan(&plan, &db).unwrap();
            let report = run_partitioned(
                &parts,
                &sim,
                std::slice::from_ref(&plan),
                Strategy::DataDrivenChopping,
                &RunnerConfig::default(),
            )
            .unwrap();
            assert_rows_close(&report.queries[0].result, &expected, q.name());
        }
    }

    #[test]
    fn count_merges_and_keeps_int_type() {
        use robustq_engine::predicate::Predicate;
        let db = db();
        let parts = partition(&db, "lineorder", 3).unwrap();
        let plan = PlanNode::scan("lineorder", ["lo_discount"])
            .filter(Predicate::between("lo_discount", 2, 5))
            .aggregate(["lo_discount"], vec![AggSpec::count("n")]);
        let expected = ops::execute_plan(&plan, &db).unwrap();
        let report = run_partitioned(
            &parts,
            &SimConfig::default(),
            std::slice::from_ref(&plan),
            Strategy::CpuOnly,
            &RunnerConfig::default(),
        )
        .unwrap();
        let got = &report.queries[0].result;
        assert_rows_close(got, &expected, "count merge");
        assert_eq!(
            got.column_type("n"),
            Some(robustq_storage::DataType::Int64),
            "COUNT stays integer after the merge"
        );
    }

    #[test]
    fn avg_roots_are_rejected() {
        let db = db();
        let parts = partition(&db, "lineorder", 2).unwrap();
        let plan = PlanNode::scan("lineorder", ["lo_quantity"]).aggregate(
            [] as [&str; 0],
            vec![AggSpec::new(AggFunc::Avg, Expr::col("lo_quantity"), "a")],
        );
        let err = run_partitioned(
            &parts,
            &SimConfig::default(),
            std::slice::from_ref(&plan),
            Strategy::CpuOnly,
            &RunnerConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("AVG"));
    }

    #[test]
    fn parallel_partitions_cut_makespan_under_scarcity() {
        // A machine whose cache holds half the working set: one machine
        // thrashes under GPU-only, two partitions fit.
        let db = db();
        let queries: Vec<PlanNode> =
            crate::micro::serial_selection_workload(4).to_vec();
        let ws: u64 = crate::micro::SERIAL_SELECTIONS
            .iter()
            .map(|(c, _, _)| db.column_size(db.column_id("lineorder", c).unwrap()))
            .sum();
        let sim = SimConfig::default()
            .with_gpu_memory(ws * 4)
            .with_gpu_cache(ws * 6 / 10);
        let single = WorkloadRunner::new(&db, sim.clone())
            .run(
                &queries,
                Strategy::GpuPreferred,
                &RunnerConfig::default().with_placement_period(queries.len()),
            )
            .unwrap();
        let parts = partition(&db, "lineorder", 2).unwrap();
        let two = run_partitioned(
            &parts,
            &sim,
            &queries,
            Strategy::GpuPreferred,
            &RunnerConfig::default().with_placement_period(queries.len()),
        )
        .unwrap();
        assert!(
            two.makespan.as_nanos() * 2 < single.metrics.makespan.as_nanos(),
            "two co-processors must break the thrashing: {} vs {}",
            two.makespan,
            single.metrics.makespan
        );
    }
}
