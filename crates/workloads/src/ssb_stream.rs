//! SSB-stream: the Star Schema Benchmark as an append feed
//! (DESIGN.md §16).
//!
//! The four dimension tables are static; the `lineorder` fact table
//! starts at a configurable base fraction and the remainder arrives as
//! append batches — the pre-built history a streaming run replays in
//! virtual time. Standing SSB queries then re-execute per window tick
//! over the rows visible at each tick.
//!
//! Everything is derived from one [`SsbGenerator`] invocation, so the
//! fully-fed stream database holds *exactly* the rows of the equivalent
//! batch-generated database: [`SsbStreamData::window_db`] can cut a
//! static database for any row window and the window's standing-query
//! results must match a one-shot run against it value-for-value (pinned
//! by `tests/streaming.rs`).

use crate::ssb::SsbQuery;
use robustq_engine::{FeedEvent, FeedSchedule, StandingQuery, WindowKind};
use robustq_sim::VirtualTime;
use robustq_sql::SqlError;
use robustq_storage::gen::ssb::SsbGenerator;
use robustq_storage::{Database, DbEpoch, StorageError, Table};

/// Generator for the SSB-stream database: full SSB dimensions plus a
/// `lineorder` fact table split into a static base and append batches.
#[derive(Debug, Clone)]
pub struct SsbStreamGen {
    gen: SsbGenerator,
    base_fraction: f64,
    batches: usize,
    seal_rows: Option<usize>,
}

impl SsbStreamGen {
    /// Stream generator at scale factor `sf` with half the fact table
    /// as base data and the rest in 8 append batches.
    pub fn new(sf: u32) -> Self {
        SsbStreamGen {
            gen: SsbGenerator::new(sf),
            base_fraction: 0.5,
            batches: 8,
            seal_rows: None,
        }
    }

    /// Override the number of lineorder rows per scale factor.
    pub fn with_rows_per_sf(mut self, rows: usize) -> Self {
        self.gen = self.gen.with_rows_per_sf(rows);
        self
    }

    /// Override the data-generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.gen = self.gen.with_seed(seed);
        self
    }

    /// Fraction of lineorder rows present before the feed starts
    /// (clamped to `[0, 1]`).
    pub fn with_base_fraction(mut self, fraction: f64) -> Self {
        self.base_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Number of append batches the remaining rows are split into.
    pub fn with_batches(mut self, batches: usize) -> Self {
        self.batches = batches.max(1);
        self
    }

    /// Open-segment seal threshold for the appends (rows).
    pub fn with_seal_rows(mut self, rows: usize) -> Self {
        self.seal_rows = Some(rows);
        self
    }

    /// Build the stream database: dimensions registered whole, the
    /// lineorder base registered, then every batch appended (epochs
    /// `1..=batches`). The feed is *pre-built* — a streaming run replays
    /// the recorded epochs in virtual time without touching the data.
    pub fn build(&self) -> Result<SsbStreamData, StorageError> {
        let full = self.gen.generate();
        let lo_full = full.table("lineorder").expect("generator emits lineorder");
        let total = lo_full.num_rows();
        let base = ((total as f64 * self.base_fraction) as usize).min(total);

        let mut db = Database::new();
        if let Some(rows) = self.seal_rows {
            db.set_seal_rows(rows);
        }
        for table in full.tables() {
            let columns = if table.name() == "lineorder" {
                (0..table.num_columns()).map(|i| table.column_slice(i, 0, base)).collect()
            } else {
                table.columns().to_vec()
            };
            db.add_table(Table::new(table.name(), table.schema().clone(), columns)?)?;
        }

        // Deal the remaining rows into `batches` contiguous slices; the
        // first `rem` batches carry one extra row so the slices tile
        // `[base, total)` exactly.
        let feed_rows = total - base;
        let per = feed_rows / self.batches;
        let rem = feed_rows % self.batches;
        let mut epochs = Vec::with_capacity(self.batches);
        let mut cursor = base;
        for b in 0..self.batches {
            let len = per + usize::from(b < rem);
            if len == 0 {
                continue;
            }
            let slice: Vec<_> = (0..lo_full.num_columns())
                .map(|i| lo_full.column_slice(i, cursor, cursor + len))
                .collect();
            epochs.push(db.append_batch("lineorder", slice)?);
            cursor += len;
        }
        debug_assert_eq!(cursor, total, "batches must tile the fact table");
        Ok(SsbStreamData { db, epochs, base_rows: base })
    }
}

/// A pre-built SSB-stream database plus its append history.
#[derive(Debug)]
pub struct SsbStreamData {
    /// The fully-fed database (base rows + every batch appended).
    pub db: Database,
    /// Commit epoch of each append batch, in feed order.
    pub epochs: Vec<DbEpoch>,
    /// Lineorder rows visible before the first batch.
    pub base_rows: usize,
}

impl SsbStreamData {
    /// A feed schedule committing batch `k` at `start + k·interval`.
    /// Paired with a tumbling window of period `interval` and the same
    /// `start`, each tick ingests exactly one batch.
    pub fn feed_schedule(&self, start: VirtualTime, interval: VirtualTime) -> FeedSchedule {
        let events = self
            .epochs
            .iter()
            .enumerate()
            .map(|(k, &epoch)| FeedEvent {
                at: VirtualTime::from_nanos(
                    start.as_nanos() + interval.as_nanos() * k as u64,
                ),
                epoch,
            })
            .collect();
        FeedSchedule { events }
    }

    /// A standing SSB query over `lineorder`, firing `ticks` windows of
    /// `period`. The session id is a placeholder; the serving runner
    /// re-numbers standing sessions above its arrival pool.
    pub fn standing_query(
        &self,
        q: SsbQuery,
        kind: WindowKind,
        period: VirtualTime,
        ticks: u32,
    ) -> Result<StandingQuery, SqlError> {
        Ok(StandingQuery {
            session: 0,
            plan: q.plan(&self.db)?,
            table: "lineorder".to_owned(),
            kind,
            period,
            ticks,
        })
    }

    /// A *static* database whose lineorder holds exactly rows
    /// `[lo, hi)` of the feed, dimensions copied whole — the oracle a
    /// window tick's live result is compared against. Row values (and
    /// dimension dictionaries) are identical to the stream database's,
    /// so a correct windowed execution matches value-for-value.
    pub fn window_db(&self, lo: usize, hi: usize) -> Database {
        let mut db = Database::new();
        for table in self.db.tables() {
            let columns = if table.name() == "lineorder" {
                (0..table.num_columns()).map(|i| table.column_slice(i, lo, hi)).collect()
            } else {
                table.columns().to_vec()
            };
            db.add_table(Table::new(table.name(), table.schema().clone(), columns).unwrap())
                .unwrap();
        }
        db
    }

    /// Lineorder rows visible once every batch up to `tick` (0-based)
    /// has committed under [`SsbStreamData::feed_schedule`]'s cadence.
    pub fn visible_after(&self, batches: usize) -> usize {
        let appended: usize = self
            .db
            .append_log()
            .iter()
            .take(batches)
            .map(|r| r.rows)
            .sum();
        self.base_rows + appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> SsbStreamData {
        SsbStreamGen::new(1)
            .with_rows_per_sf(2_000)
            .with_batches(4)
            .build()
            .unwrap()
    }

    #[test]
    fn batches_tile_the_fact_table() {
        let d = data();
        assert_eq!(d.base_rows, 1_000);
        assert_eq!(d.epochs.len(), 4);
        assert_eq!(d.db.table("lineorder").unwrap().num_rows(), 2_000);
        assert_eq!(d.visible_after(0), 1_000);
        assert_eq!(d.visible_after(4), 2_000);
    }

    #[test]
    fn stream_db_matches_batch_generated_data() {
        let d = data();
        let full = SsbGenerator::new(1).with_rows_per_sf(2_000).generate();
        let (a, b) = (d.db.table("lineorder").unwrap(), full.table("lineorder").unwrap());
        for i in 0..a.num_columns() {
            assert_eq!(a.column_slice(i, 0, 2_000), *b.column_at(i), "column {i}");
        }
        assert_eq!(
            d.db.table("customer").unwrap().columns(),
            full.table("customer").unwrap().columns()
        );
    }

    #[test]
    fn window_db_cuts_exact_row_ranges() {
        let d = data();
        let w = d.window_db(500, 1_500);
        assert_eq!(w.table("lineorder").unwrap().num_rows(), 1_000);
        assert_eq!(
            w.table("lineorder").unwrap().column_at(0),
            &d.db.table("lineorder").unwrap().column_slice(0, 500, 1_500)
        );
        assert_eq!(w.table("date").unwrap().num_rows(), 7 * 365);
    }

    #[test]
    fn feed_schedule_spaces_batches_uniformly() {
        let d = data();
        let fs = d.feed_schedule(VirtualTime::from_millis(1), VirtualTime::from_millis(2));
        assert_eq!(fs.events.len(), 4);
        assert_eq!(fs.events[0].at, VirtualTime::from_millis(1));
        assert_eq!(fs.events[3].at, VirtualTime::from_millis(7));
        assert_eq!(fs.events[0].epoch, d.epochs[0]);
    }

    #[test]
    fn standing_query_plans_against_the_stream_db() {
        let d = data();
        let sq = d
            .standing_query(
                SsbQuery::Q1_1,
                WindowKind::Tumbling,
                VirtualTime::from_millis(2),
                4,
            )
            .unwrap();
        assert_eq!(sq.table, "lineorder");
        assert_eq!(sq.ticks, 4);
    }
}
